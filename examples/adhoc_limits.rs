//! Where Precision Interfaces does *not* work: ad-hoc exploration logs.
//!
//! The paper is explicit that a purely syntactic approach only pays off when the log contains
//! recurring, predictable transformations; for open-ended exploration the generated interface
//! barely generalises (Figure 6c's flat recall curve).  This example reproduces that negative
//! result side by side with a structured log of the same size.
//!
//! ```sh
//! cargo run --example adhoc_limits
//! ```

use precision_interfaces::core::recall::recall_curve;
use precision_interfaces::core::PiOptions;
use precision_interfaces::workloads::{adhoc, sdss};

fn main() {
    let options = PiOptions::default();
    let sizes = [5usize, 10, 20, 50, 100];

    let structured = sdss::client_log(sdss::ClientArchetype::RedshiftRange, 4, 200);
    let exploratory = adhoc::exploration_log(4, 200);

    println!("hold-out recall (100 hold-out queries) vs number of training queries\n");
    println!("training   structured(SDSS)   ad-hoc(Tableau-style)");
    let structured_curve = recall_curve(&structured.queries, &sizes, 100, &options);
    let adhoc_curve = recall_curve(&exploratory.queries, &sizes, 100, &options);
    for (s, a) in structured_curve.iter().zip(adhoc_curve.iter()) {
        println!(
            "{:>8}   {:>16.2}   {:>20.2}",
            s.training, s.recall, a.recall
        );
    }

    println!(
        "\nTakeaway: the structured analysis reaches full recall with a few dozen examples, \
         while the ad-hoc log stays far from it — matching the paper's Figure 6c and its \
         'not suitable for ad-hoc, non-repetitive settings' conclusion."
    );
}
