//! Persistence quickstart: mine a 10k-line Zipf-repetitive trace, persist the session to a
//! versioned binary snapshot, restore it in a fresh scope, and verify the restored session
//! serves the *identical* interface spec — in milliseconds instead of a full re-mine.
//!
//! ```sh
//! cargo run --release --example persist_restore
//! ```

use precision_interfaces::core::{PiOptions, Session};
use precision_interfaces::graph::WindowStrategy;
use precision_interfaces::workloads::trace::zipf_trace;
use std::time::Instant;

const LINES: usize = 10_000;
const SHAPES: usize = 64;

fn main() {
    let options = PiOptions {
        window: WindowStrategy::sliding(16),
        ..PiOptions::default()
    };

    // 1. Cold path: mine the whole trace from text.
    let cold = Instant::now();
    let mut session = Session::new(options.clone());
    session.push_stream_tagged(zipf_trace(LINES, SHAPES, 0.01, 7));
    let cold_ms = cold.elapsed().as_secs_f64() * 1e3;
    let spec = session.snapshot().interface.describe();
    println!(
        "mined {LINES} lines ({} distinct shapes) cold in {cold_ms:.1} ms",
        session.distinct()
    );

    // 2. Persist the full mining state — dedup arena, diff store, memo, graph, envelope.
    let persist = Instant::now();
    let bytes = session.persist_to_vec().expect("persist");
    let persist_ms = persist.elapsed().as_secs_f64() * 1e3;
    println!("persisted to {} bytes in {persist_ms:.2} ms", bytes.len());

    // 3. Restore in a fresh scope — as a restarted process would, with nothing but the
    //    snapshot bytes and the same options.  Restore decodes and validates everything at
    //    distinct-state scale; the mined pair table expands lazily on first graph access
    //    (here, the snapshot call).
    let (restored_spec, restore_ms) = {
        let restore = Instant::now();
        let mut restored = Session::restore_with(&mut bytes.as_slice(), options).expect("restore");
        let restore_ms = restore.elapsed().as_secs_f64() * 1e3;
        (restored.snapshot().interface.describe(), restore_ms)
    };

    // 4. The restored session serves the identical interface spec.
    assert_eq!(restored_spec, spec, "restore must be lossless");
    println!("restored in {restore_ms:.2} ms — identical interface spec:");
    println!(
        "  warm restore is {:.0}x faster than the cold re-mine",
        cold_ms / restore_ms
    );
    println!("\n{spec}");
}
