//! Streaming ingestion: feed an analyst's queries into a [`Session`] one at a time, as they
//! would arrive from a live connection, and refresh the interface after each append.
//!
//! Each `push_sql` runs only the new tree alignments the sliding window admits (`O(w)` per
//! query, however long the session gets), and each `snapshot()` is byte-identical to a
//! batch build of the same prefix — the interface simply *refines* as evidence accumulates.
//!
//! ```sh
//! cargo run --example live_session
//! ```

use precision_interfaces::prelude::*;

fn main() {
    // The analyst's stream, in arrival order: an OLAP exploration that varies the month
    // filter, then the aggregate, then the grouping column.  One statement arrives garbled
    // (a client-side typo) — the session skips it and keeps streaming.
    let stream = [
        "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState",
        "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 8 GROUP BY DestState",
        "SELECT COUNT(Delay), DestState FROM ontime WHERE Mnoth = ", // garbled mid-typing
        "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 3 GROUP BY DestState",
        "SELECT AVG(Delay), DestState FROM ontime WHERE Month = 3 GROUP BY DestState",
        "SELECT AVG(Delay), Carrier FROM ontime WHERE Month = 3 GROUP BY Carrier",
    ];

    let mut session = Session::new(PiOptions::default());
    for sql in stream {
        let appended = session.push_sql(sql);
        let snapshot = session.snapshot();
        println!(
            "v{} | {:>7} | {} queries, {} skipped, {} edges, {} widgets",
            snapshot.version,
            if appended.is_empty() {
                "skipped"
            } else {
                "ingested"
            },
            snapshot.queries.len(),
            snapshot.skipped,
            snapshot.graph_stats.edges,
            snapshot.interface.widgets().len(),
        );
    }

    let final_snapshot = session.snapshot();
    println!(
        "\nfinal interface:\n{}",
        final_snapshot.interface.describe()
    );
    println!("accumulated timings: {}", final_snapshot.timings);

    // The streaming path and the batch path are one code path: rebuilding from the full log
    // in one shot yields the identical interface.
    let batch = PrecisionInterfaces::default()
        .from_sql_log(&stream.join(";\n"))
        .expect("the stream contains parsable queries");
    assert_eq!(batch.version, final_snapshot.version);
    assert_eq!(
        batch.interface.describe(),
        final_snapshot.interface.describe()
    );
    println!("\nbatch rebuild of the same log is identical: true");
}
