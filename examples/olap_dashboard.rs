//! OLAP dashboard: mine an interface from a 200-query OLAP exploration (the paper's synthetic
//! random-walk log), compile it to an HTML page, and execute a few queries from its closure
//! against the in-memory OnTime dataset, rendering bar charts.
//!
//! ```sh
//! cargo run --example olap_dashboard
//! ```

use pi_engine::render_bar_chart;
use precision_interfaces::prelude::*;
use precision_interfaces::workloads::olap;

fn main() {
    // 1. The analysis log: a random walk over aggregates, groupings and filters (§7).
    let log = olap::random_walk(7, 200);
    println!("mined {} OLAP queries (label: {})", log.len(), log.label);

    // 2. Generate the interface.
    let generated = PrecisionInterfaces::default().from_queries(log.queries.clone());
    println!("\n{}", generated.interface.describe());
    println!(
        "expressiveness over the log: {:.2}\n",
        generated.interface.expressiveness(&log.queries)
    );

    // 3. Compile the dashboard to HTML (written next to the target directory).
    let layout = EditorLayout::new(&generated.interface, 2);
    let html = compile_html(&generated.interface, &layout, "OnTime delays dashboard");
    let path = std::env::temp_dir().join("precision_interfaces_olap_dashboard.html");
    if std::fs::write(&path, &html).is_ok() {
        println!("wrote dashboard to {}", path.display());
    }

    // 4. Execute a handful of closure queries — the queries a user could reach by playing
    //    with the widgets — and render the group-by results as bar charts.
    let catalog = Catalog::demo(7);
    let mut shown = 0;
    for query in generated.interface.enumerate_closure(200) {
        if shown == 3 {
            break;
        }
        let Ok(result) = exec(&query, &catalog) else {
            continue;
        };
        if result.num_columns() == 2 && result.num_rows() >= 3 {
            println!("--- {}", SqlFrontend.render(&query));
            println!("{}", render_bar_chart(&result));
            shown += 1;
        }
    }
}
