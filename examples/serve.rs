//! The serving loop end-to-end on loopback: bind the multi-tenant HTTP service on an
//! ephemeral port, ingest a short mixed-dialect query log over `POST /logs`, fetch the
//! mined interface back as JSON from `GET /interfaces/{user}/{thread}`, and shut down
//! gracefully.  Doubles as the CI smoke test for `pi-server` — every assertion here is a
//! wire-level contract a real client depends on.
//!
//! ```sh
//! cargo run --example serve
//! ```

use precision_interfaces::server::client::http_request;
use precision_interfaces::server::{Server, ServerOptions};
use precision_interfaces::ui::Json;

fn main() -> std::io::Result<()> {
    // Port 0 = ephemeral: the OS picks a free port, `server.addr()` reports it.
    let server = Server::bind("127.0.0.1:0", ServerOptions::default())?;
    let addr = server.addr();
    println!("serving on http://{addr}");

    let (status, _, body) = http_request(addr, "GET", "/healthz", None)?;
    assert_eq!(status, 200, "healthz: {body}");

    // One analyst's three-query exploration: two SQL refinements and a dataframe variant of
    // the same shape, batched the way an upstream query logger would ship them.
    let batch = r#"{"logs": [{"user_id": "ada", "thread_id": "thread-1", "log": {"queries": [
        "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState",
        "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 3 GROUP BY DestState",
        {"query": "ontime.filter(Month == 5).groupby(DestState).agg(count(Delay))", "dialect": "frames"}
    ]}}]}"#;
    let (status, _, body) = http_request(addr, "POST", "/logs", Some(batch))?;
    assert_eq!(status, 202, "ingest: {body}");
    let counts = Json::parse(&body).expect("ingest response is JSON");
    assert_eq!(counts.get("accepted").and_then(Json::as_f64), Some(3.0));
    println!("ingested: {body}");

    // Read-your-writes: the snapshot right after ingest already covers all three queries.
    let (status, _, body) = http_request(addr, "GET", "/interfaces/ada/thread-1", None)?;
    assert_eq!(status, 200, "fetch: {body}");
    let interface = Json::parse(&body).expect("interface response is JSON");
    assert_eq!(interface.get("version").and_then(Json::as_f64), Some(3.0));
    let widgets = interface
        .get("interface")
        .and_then(|spec| spec.get("widgets"))
        .and_then(Json::as_array)
        .expect("interface spec carries a widgets array");
    assert!(
        !widgets.is_empty(),
        "three refinements of one shape must map at least one widget"
    );
    println!(
        "interface v{}: {} widget(s) over dialects {:?}",
        interface
            .get("version")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        widgets.len(),
        interface
            .get("dialects")
            .and_then(Json::as_array)
            .map(|d| d.len())
    );

    let (status, _, stats) = http_request(addr, "GET", "/stats", None)?;
    assert_eq!(status, 200);
    println!("stats: {stats}");

    server.shutdown();
    println!("clean shutdown");
    Ok(())
}
