//! Mining a mixed SQL + dataframe query log into ONE interface.
//!
//! An analyst flips between a SQL console and a notebook while chasing one question.  The
//! two front-ends (`pi-sql`, `pi-frames`) target the same tree model, so the structurally
//! identical queries diff cleanly against each other regardless of surface language: the
//! interleaved log mines into a single interaction graph and a single widget set, and every
//! widget option — and the initial query — renders in the dialect its query arrived in.
//!
//! ```sh
//! cargo run --example mixed_frontends
//! ```

use precision_interfaces::prelude::*;

fn main() {
    // The interleaved stream: the same OLAP analysis, half typed as SQL, half as method
    // chains, plus one garbled notebook line the session skips.
    let stream: [(Dialect, &str); 7] = [
        (
            Dialect::SQL,
            "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState",
        ),
        (
            Dialect::FRAMES,
            "ontime.filter(Month == 8).groupby(DestState).agg(COUNT(Delay))",
        ),
        (
            Dialect::SQL,
            "SELECT AVG(Delay), DestState FROM ontime WHERE Month = 8 GROUP BY DestState",
        ),
        (Dialect::FRAMES, "ontime.filter(Month == ).groupby("), // garbled mid-typing
        (
            Dialect::FRAMES,
            "ontime.filter(Month == 3).groupby(DestState).agg(AVG(Delay))",
        ),
        (
            Dialect::SQL,
            "SELECT AVG(Delay), Carrier FROM ontime WHERE Month = 3 GROUP BY Carrier",
        ),
        (
            Dialect::FRAMES,
            "ontime.filter(Month == 1).groupby(Carrier).agg(AVG(Delay))",
        ),
    ];

    let mut session = Session::new(PiOptions::default());
    for (dialect, text) in stream {
        session.push_text_as(dialect, text);
    }
    let snapshot = session.snapshot();
    println!(
        "mined {} queries ({} skipped) from {} dialects into one interface:\n{}",
        snapshot.version,
        snapshot.skipped,
        {
            let mut dialects: Vec<&str> = snapshot.dialects.iter().map(|d| d.name()).collect();
            dialects.sort_unstable();
            dialects.dedup();
            dialects.len()
        },
        snapshot.interface.describe()
    );
    assert!(snapshot.interface.expressiveness(&snapshot.queries) >= 1.0);

    // Every widget option remembers the front-end its value arrived through and renders
    // with that front-end's renderer.
    let frontends = standard_frontends();
    for widget in snapshot.interface.widgets() {
        println!("widget @ {}:", widget.path);
        for (subtree, dialect) in widget.domain.tagged_subtrees() {
            println!("  [{dialect:>6}] {}", frontends.render(dialect, subtree));
        }
    }

    // The compiled web page embeds the same per-dialect renderings in its JSON spec.
    let layout = EditorLayout::new(&snapshot.interface, 2);
    let html = compile_html(&snapshot.interface, &layout, "mixed-dialect explorer");
    println!(
        "\ncompiled HTML: {} bytes, initial query in {}:\n{}",
        html.len(),
        snapshot.interface.initial_dialect(),
        frontends.render(
            snapshot.interface.initial_dialect(),
            snapshot.interface.initial_query()
        )
    );

    // Cross-dialect identity is what makes this work: the same analysis parses to the
    // same tree through either front-end.
    let sql = SqlFrontend
        .parse_one("SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState")
        .unwrap();
    let frames = FramesFrontend
        .parse_one("ontime.filter(Month == 9).groupby(DestState).agg(COUNT(Delay))")
        .unwrap();
    assert_eq!(sql, frames);
    println!("\nSQL and frames spellings of one analysis parse to one tree: true");
}
