//! SDSS explorer: mine per-client interfaces from SkyServer-style logs (the paper's main
//! evaluation workload), measure how well each interface generalises to the client's future
//! queries, and export the richest one as an HTML page.
//!
//! ```sh
//! cargo run --example sdss_explorer
//! ```

use precision_interfaces::core::recall::{holdout_recall, split_log};
use precision_interfaces::core::PiOptions;
use precision_interfaces::prelude::*;
use precision_interfaces::workloads::sdss;

fn main() {
    let options = PiOptions::default();
    let mut best: Option<(String, Interface)> = None;

    for (i, log) in sdss::client_logs(6, 150).iter().enumerate() {
        // Train on the first 50 queries, evaluate on the last 100 (the §7.2 protocol).
        let split = split_log(&log.queries, 100);
        let train = &split.train[..split.train.len().min(50)];
        let (recall, generated) = holdout_recall(train, split.holdout, &options);
        println!(
            "client C{:<2} [{}]: {} training queries -> {} widgets, hold-out recall {:.2}",
            i + 1,
            log.label,
            train.len(),
            generated.interface.widgets().len(),
            recall
        );
        for line in generated.interface.describe().lines().skip(1) {
            println!("    {line}");
        }
        if best
            .as_ref()
            .map(|(_, iface)| generated.interface.widgets().len() > iface.widgets().len())
            .unwrap_or(true)
        {
            best = Some((log.label.clone(), generated.interface));
        }
    }

    // Export the richest client interface as a standalone web page and execute its initial
    // query against the synthetic SkyServer tables.
    if let Some((label, interface)) = best {
        let layout = EditorLayout::new(&interface, 2);
        let html = compile_html(&interface, &layout, &format!("SDSS explorer — {label}"));
        let path = std::env::temp_dir().join("precision_interfaces_sdss_explorer.html");
        if std::fs::write(&path, &html).is_ok() {
            println!("\nwrote the {label} interface to {}", path.display());
        }
        let catalog = Catalog::demo(1);
        if let Ok(result) = exec(interface.initial_query(), &catalog) {
            println!(
                "initial query returns {} rows over the synthetic SkyServer catalog",
                result.num_rows()
            );
        }
    }
}
