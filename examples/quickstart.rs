//! Quickstart: generate an interface from a small OLAP query log, inspect its widgets, and
//! run its initial query through the bundled execution engine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use precision_interfaces::prelude::*;

fn main() {
    // A miniature analysis log in the style of the paper's Listing 2: the analyst keeps the
    // query shape fixed and varies the aggregate, the month filter, and the grouping column.
    let log = "
        SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 AND Day = 3 GROUP BY DestState;
        SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 8 AND Day = 3 GROUP BY DestState;
        SELECT AVG(Delay), DestState FROM ontime WHERE Month = 8 AND Day = 3 GROUP BY DestState;
        SELECT AVG(Delay), DestState FROM ontime WHERE Month = 8 AND Day = 12 GROUP BY DestState;
        SELECT AVG(Delay), Carrier FROM ontime WHERE Month = 8 AND Day = 12 GROUP BY Carrier;
        SELECT SUM(Delay), Carrier FROM ontime WHERE Month = 2 AND Day = 12 GROUP BY Carrier;
    ";

    // 1. Mine the log and map it to widgets.
    let generated = PrecisionInterfaces::default()
        .from_sql_log(log)
        .expect("the log parses");
    println!("generated interface:\n{}", generated.interface.describe());
    println!(
        "covers the whole input log: {}",
        generated.interface.expressiveness(&generated.queries) >= 1.0
    );
    println!("pipeline timings: {}", generated.timings);

    // 2. The interface starts at the first query of the log; execute and render it.
    let catalog = Catalog::demo(42);
    let result = exec(generated.interface.initial_query(), &catalog).expect("query runs");
    println!(
        "\ninitial query:\n{}",
        SqlFrontend.render(generated.interface.initial_query())
    );
    println!("\n{}", render(&result));

    // 3. Probe generalisation: is an unseen month/grouping combination expressible?  For this
    //    log the greedy merger (Algorithm 3) collapses everything into one whole-query radio —
    //    cheaper than the five fine-grained widgets, but it only replays logged queries, so the
    //    probe reports false.  Disabling merging (`MapperOptions { enable_merging: false, .. }`)
    //    keeps the sliders/drop-downs and makes the unseen combination expressible.
    let unseen = SqlFrontend
        .parse_one(
            "SELECT AVG(Delay), Carrier FROM ontime WHERE Month = 9 AND Day = 3 GROUP BY Carrier",
        )
        .unwrap();
    println!(
        "unseen query expressible through the widgets: {}",
        generated.interface.can_express(&unseen)
    );
}
