//! The front-end isolation contract, as an executable grep: no crate outside the
//! front-end crates (`pi-sql`, `pi-frames`) names the concrete SQL parse/render entry
//! points directly.  Everything else reaches parsing/rendering through the `pi_ast::Frontend`
//! trait (usually via a `Frontends` registry), which is what keeps a second — or tenth —
//! query language a drop-in.

use std::path::{Path, PathBuf};

/// Directories whose sources are exempt: the front-end crates themselves (including their
/// tests), and build output.
const EXEMPT: &[&str] = &["crates/pi-sql", "crates/pi-frames", "target", ".git"];

fn rust_sources(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let relative = path.strip_prefix(root).unwrap_or(&path);
        if EXEMPT
            .iter()
            .any(|exempt| relative.starts_with(Path::new(exempt)))
        {
            continue;
        }
        if path.is_dir() {
            rust_sources(&path, root, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_crate_outside_the_frontends_calls_pi_sql_directly() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    rust_sources(&root, &root, &mut sources);
    assert!(
        sources.len() > 40,
        "the source walk looks broken: only {} files found",
        sources.len()
    );

    // Built at runtime so this test file does not match itself.
    let needles = [
        format!("pi_sql::{}", "parse"),
        format!("pi_sql::{}", "render"),
    ];
    let mut offenders = Vec::new();
    for path in &sources {
        let text = std::fs::read_to_string(path).expect("source file is readable");
        for (number, line) in text.lines().enumerate() {
            if needles.iter().any(|needle| line.contains(needle.as_str())) {
                offenders.push(format!(
                    "{}:{}: {}",
                    path.strip_prefix(&root).unwrap_or(path).display(),
                    number + 1,
                    line.trim()
                ));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "front-end isolation violated — route these through pi_ast::Frontend instead:\n{}",
        offenders.join("\n")
    );
}
