//! Crash-recovery properties for the durable serving pool, driven by the deterministic
//! fault-injection harness (`--features faults`).
//!
//! The contract under test is the write-ahead journal's acknowledgement guarantee: **a
//! statement the pool acknowledged is never lost**, no matter where the process dies.
//! Each property case derives a kill schedule from its proptest seed — an injected crash
//! at the n-th journal append, journal fsync or spill write, plus a torn tail of unsynced
//! bytes left on the active segment — runs ingest until the crash fires, "kills" the
//! process ([`SessionPool::simulate_crash`] truncates the journal to its durable watermark
//! plus the torn tail and abandons all in-memory state), then reopens a pool over the same
//! directory and checks every tenant against solo ground-truth replays:
//!
//! * every acknowledged statement is present after recovery;
//! * the recovered state is byte-identical to a solo replay of some *prefix-extension* of
//!   the acked statements (a record that was fully written but not yet acknowledged may
//!   legitimately survive in the torn tail — like any WAL — but nothing is reordered,
//!   duplicated or invented);
//! * torn or corrupt trailing bytes are discarded, never replayed, never a panic.
//!
//! Deterministic companions cover the supervisor (a statement that panics the miner is
//! quarantined, and re-quarantined when journal recovery replays it after a restart) and
//! garbage appended to journal segments.

#![cfg(feature = "faults")]

use precision_interfaces::ast::Dialect;
use precision_interfaces::core::{GeneratedInterface, PiOptions, Session};
use precision_interfaces::server::faults::{FaultOp, FaultPlan};
use precision_interfaces::server::{DurabilityOptions, EnqueueError, PoolOptions, SessionPool};
use precision_interfaces::workloads::frames::repetitive_mixed_walk;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per case (process-unique + case-unique).
fn scratch(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("pi-crash-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn replay(statements: &[(Dialect, String)]) -> GeneratedInterface {
    let mut session = Session::new(PiOptions::default());
    for (dialect, text) in statements {
        session.push_text_as(*dialect, text);
    }
    session.snapshot()
}

fn same(pooled: &GeneratedInterface, solo: &GeneratedInterface) -> bool {
    pooled.version == solo.version
        && pooled.skipped == solo.skipped
        && pooled.graph == solo.graph
        && pooled.interface.describe() == solo.interface.describe()
}

/// Finds the statement-count `k` in `lo..=hi` whose solo replay of `stream[..k]` matches
/// the recovered snapshot exactly — i.e. recovery reproduced a clean prefix of the
/// tenant's stream at least `lo` (the acked count) long.
fn matching_prefix(
    pooled: &GeneratedInterface,
    stream: &[(Dialect, String)],
    lo: usize,
    hi: usize,
) -> Option<usize> {
    (lo..=hi).find(|&k| same(pooled, &replay(&stream[..k])))
}

fn durable_opts(dir: &PathBuf, plan: Option<Arc<FaultPlan>>) -> PoolOptions {
    let mut durability = DurabilityOptions::new(dir);
    // Checkpoint aggressively so kill schedules land across rotation, spill and prune,
    // not just mid-append.
    durability.checkpoint_bytes = 4096;
    durability.faults = plan;
    PoolOptions {
        capacity: 2, // three tenants through two seats: evictions write spills mid-run
        shards: 1,
        queue_depth: 4096,
        workers: 1,
        durability: Some(durability),
        ..PoolOptions::default()
    }
}

const TENANTS: u64 = 3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole property: a randomized kill schedule (crash at the n-th append, fsync
    /// or spill write, with a torn tail) never loses an acknowledged statement, and
    /// recovery reconstructs a byte-identical clean prefix of every tenant's stream.
    #[test]
    fn acked_statements_survive_a_randomized_kill(
        seed in 0u64..4096,
        crash_point in 0usize..3,
        crash_nth in 1u64..24,
        torn in 0u64..64,
        length in 6usize..20,
    ) {
        let dir = scratch("kill");
        let op = [FaultOp::JournalAppend, FaultOp::JournalSync, FaultOp::SpillWrite][crash_point];
        let plan = Arc::new(FaultPlan::new().with_crash(op, crash_nth).with_torn_keep(torn));
        let streams: Vec<Vec<(Dialect, String)>> = (0..TENANTS)
            .map(|t| {
                let log = repetitive_mixed_walk(seed * 131 + t, length, 5);
                log.dialects
                    .iter()
                    .copied()
                    .zip(log.text.iter().cloned())
                    .collect()
            })
            .collect();

        // Round-robin single-statement ingest, recording exactly what was acknowledged.
        // The journal is fail-stop, so the first error ends the whole run — like the real
        // process, which dies at its crash point.
        let pool = SessionPool::with_spill(durable_opts(&dir, Some(plan)), None);
        pool.wait_ready();
        let mut acked = vec![0usize; TENANTS as usize];
        let mut attempted = vec![0usize; TENANTS as usize];
        'ingest: for i in 0..length {
            for (t, stream) in streams.iter().enumerate() {
                let user = format!("user-{t}");
                let (dialect, text) = &stream[i];
                attempted[t] = i + 1;
                match pool.enqueue_tagged(&user, "t0", [(*dialect, text.as_str())]) {
                    Ok(_) => acked[t] = i + 1,
                    Err(_) => break 'ingest,
                }
            }
        }
        pool.simulate_crash().ok();
        drop(pool);

        // Reopen over the same directory (no faults this lifetime) and compare every
        // tenant against ground truth.
        let recovered = SessionPool::with_spill(durable_opts(&dir, None), None);
        recovered.wait_ready();
        prop_assert!(!recovered.is_recovering());
        for (t, stream) in streams.iter().enumerate() {
            let user = format!("user-{t}");
            match recovered.snapshot(&user, "t0") {
                Some(pooled) => {
                    let matched = matching_prefix(&pooled, stream, acked[t], attempted[t]);
                    prop_assert!(
                        matched.is_some(),
                        "tenant {t}: recovered state is not a clean >= acked prefix \
                         (acked {}, attempted {}, crash {op:?} #{crash_nth}, torn {torn})",
                        acked[t],
                        attempted[t],
                    );
                }
                // A tenant may vanish entirely only if nothing of hers was ever acked.
                None => prop_assert_eq!(
                    acked[t],
                    0,
                    "tenant {} lost {} acked statements",
                    t,
                    acked[t]
                ),
            }
        }
        recovered.close();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Garbage appended past the last intact record — the torn tail a real kill can leave —
/// is detected by the record checksums, discarded, and never replayed.
#[test]
fn torn_journal_tails_are_discarded_never_replayed() {
    let dir = scratch("torn");
    let stream: Vec<(Dialect, String)> = (0..6)
        .map(|i| (Dialect::SQL, format!("SELECT a FROM t WHERE x = {i}")))
        .collect();
    let pool = SessionPool::with_spill(durable_opts(&dir, None), None);
    pool.wait_ready();
    for (dialect, text) in &stream {
        pool.enqueue_tagged("ada", "t0", [(*dialect, text.as_str())])
            .unwrap();
    }
    pool.simulate_crash().unwrap();
    drop(pool);
    // Smear garbage onto the end of every journal segment: a partial frame, a bogus
    // length, raw noise.  None of it checksums, so recovery must stop cleanly before it.
    let mut smeared = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "wal") {
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            file.write_all(&[0xA5; 37]).unwrap();
            smeared += 1;
        }
    }
    assert!(smeared >= 1, "the journal left segments behind");
    let recovered = SessionPool::with_spill(durable_opts(&dir, None), None);
    recovered.wait_ready();
    let pooled = recovered.snapshot("ada", "t0").unwrap();
    let solo = replay(&stream);
    assert!(
        same(&pooled, &solo),
        "recovery must reproduce exactly the acked stream despite the garbage tail"
    );
    recovered.close();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A statement that panics the miner is quarantined rather than wedging its tenant — and
/// because the statement was journaled before it ever ran, recovery replays it after a
/// restart, panics again, and re-quarantines it: the poison is contained in every
/// lifetime, while all surrounding statements survive in order.
#[test]
fn poisoned_statements_are_quarantined_across_restarts() {
    let dir = scratch("poison");
    let good: Vec<(Dialect, String)> = (0..4)
        .map(|i| (Dialect::SQL, format!("SELECT a FROM t WHERE x = {i}")))
        .collect();
    let marker_plan = || Some(Arc::new(FaultPlan::new().with_panic_marker("POISONPILL")));

    let pool = SessionPool::with_spill(durable_opts(&dir, marker_plan()), None);
    pool.wait_ready();
    for (dialect, text) in &good[..2] {
        pool.enqueue_tagged("ada", "t0", [(*dialect, text.as_str())])
            .unwrap();
    }
    pool.enqueue_tagged("ada", "t0", [(Dialect::SQL, "SELECT POISONPILL FROM t")])
        .unwrap();
    for (dialect, text) in &good[2..] {
        pool.enqueue_tagged("ada", "t0", [(*dialect, text.as_str())])
            .unwrap();
    }
    // The snapshot's inline apply hits the marker; the supervisor quarantines it and the
    // interface reflects only the healthy statements.
    let snap = pool.snapshot("ada", "t0").unwrap();
    assert!(same(&snap, &replay(&good)));
    let gauge = pool.gauge();
    assert!(gauge.worker_panics >= 1);
    assert_eq!(gauge.quarantined_statements, 1);
    pool.simulate_crash().unwrap();
    drop(pool);

    // Second lifetime, same poison plan: recovery replays the journaled statement, the
    // panic fires again inside the supervised recovery path, and the quarantine repeats.
    let recovered = SessionPool::with_spill(durable_opts(&dir, marker_plan()), None);
    recovered.wait_ready();
    let snap = recovered.snapshot("ada", "t0").unwrap();
    assert!(
        same(&snap, &replay(&good)),
        "recovered state must carry every healthy statement and no poison"
    );
    let gauge = recovered.gauge();
    assert!(gauge.worker_panics >= 1, "recovery re-hit the poison");
    assert!(gauge.quarantined_statements >= 1);
    assert!(gauge
        .quarantine_samples
        .iter()
        .any(|s| s.contains("POISONPILL")));
    recovered.close();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected I/O error on a journal fsync fails the batch *before* acknowledgement and
/// flips the journal fail-stop: nothing later acks, readiness goes red, and — the actual
/// durability point — a restart serves exactly the batches that were acked, no more.
#[test]
fn journal_fsync_failure_never_acks_then_restart_recovers_the_acked_prefix() {
    let dir = scratch("fsync-err");
    let stream: Vec<(Dialect, String)> = (0..6)
        .map(|i| (Dialect::SQL, format!("SELECT a FROM t WHERE x = {i}")))
        .collect();
    let plan = Arc::new(FaultPlan::new().with_io_error(FaultOp::JournalSync, 3));
    let pool = SessionPool::with_spill(durable_opts(&dir, Some(plan)), None);
    pool.wait_ready();
    let mut acked = 0usize;
    for (dialect, text) in &stream {
        match pool.enqueue_tagged("ada", "t0", [(*dialect, text.as_str())]) {
            Ok(_) => acked += 1,
            Err(err) => {
                assert!(matches!(err, EnqueueError::Journal(_)), "{err}");
                break;
            }
        }
    }
    assert!(acked < stream.len(), "the injected fsync error fired");
    assert!(!pool.is_ready(), "a failed journal blocks readiness");
    pool.simulate_crash().ok();
    drop(pool);

    let recovered = SessionPool::with_spill(durable_opts(&dir, None), None);
    recovered.wait_ready();
    let pooled = recovered.snapshot("ada", "t0").unwrap();
    // Group commit may have made the failing batch itself durable before the fsync error
    // surfaced; anything beyond acked+1 would be an invented statement.
    assert!(
        matching_prefix(&pooled, &stream, acked, (acked + 1).min(stream.len())).is_some(),
        "restart must serve the acked prefix (possibly +1 written-not-acked)"
    );
    recovered.close();
    let _ = std::fs::remove_dir_all(&dir);
}
