//! Property-based tests over the core data structures and invariants.

use pi_ast::builder::SelectBuilder;
use pi_ast::{Node, Path};
use pi_diff::{extract_diffs, AncestorPolicy, ChangeKind};
use precision_interfaces::prelude::*;
use proptest::prelude::*;

fn parse(sql: &str) -> Result<Node, FrontendError> {
    SqlFrontend.parse_one(sql)
}

fn render_sql(query: &Node) -> String {
    SqlFrontend.render(query)
}

// ---------------------------------------------------------------- generators

/// A random OLAP-style query over a small vocabulary (always within the pi-sql dialect).
fn arb_query() -> impl Strategy<Value = Node> {
    let dims = prop::sample::select(vec!["DestState", "OriginState", "Carrier", "DayOfWeek"]);
    let measures = prop::sample::select(vec!["Delay", "Distance", "Flights"]);
    let aggs = prop::sample::select(vec!["COUNT", "SUM", "AVG", "MAX"]);
    (
        aggs,
        measures,
        dims,
        prop::option::of(1i64..12),
        prop::option::of(1i64..28),
        prop::bool::ANY,
    )
        .prop_map(|(agg, measure, dim, month, day, grouped)| {
            let mut builder = SelectBuilder::new()
                .project_agg(agg, Node::column(measure))
                .project(Node::column(dim))
                .from_table("ontime");
            if let Some(month) = month {
                builder =
                    builder.where_pred(SelectBuilder::eq(Node::column("Month"), Node::int(month)));
            }
            if let Some(day) = day {
                builder =
                    builder.where_pred(SelectBuilder::eq(Node::column("Day"), Node::int(day)));
            }
            if grouped {
                builder = builder.group_by(Node::column(dim));
            }
            builder.build()
        })
}

fn arb_path() -> impl Strategy<Value = Path> {
    prop::collection::vec(0usize..6, 0..6).prop_map(Path::from_steps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------ SQL round trips

    /// Rendering any generated query and re-parsing it yields the identical AST —
    /// structurally identical under the memoized hash, for BOTH front-ends over the same
    /// workload trees (the queries the OLAP walk generates are in both dialects' shared
    /// shape).
    #[test]
    fn sql_render_parse_round_trip(query in arb_query()) {
        let sql = render_sql(&query);
        let reparsed = parse(&sql).expect("rendered SQL parses");
        prop_assert_eq!(reparsed.structural_hash(), query.structural_hash());
        prop_assert_eq!(reparsed, query);
    }

    /// The frames front-end round-trips the same generated workload queries: render to
    /// method-chain text, re-parse, and land on the structurally identical tree.
    #[test]
    fn frames_render_parse_round_trip(query in arb_query()) {
        let text = FramesFrontend.render(&query);
        let reparsed = FramesFrontend.parse_one(&text)
            .unwrap_or_else(|e| panic!("rendered frames `{text}` parses: {e}"));
        prop_assert_eq!(reparsed.structural_hash(), query.structural_hash());
        prop_assert_eq!(reparsed, query);
    }

    /// Cross-dialect identity: rendering a workload query through either front-end and
    /// re-parsing it through that front-end yields one and the same tree — which is what
    /// makes mixed logs diff cleanly.
    #[test]
    fn both_frontends_agree_on_workload_trees(query in arb_query()) {
        let via_sql = parse(&render_sql(&query)).expect("sql round trip");
        let via_frames = FramesFrontend
            .parse_one(&FramesFrontend.render(&query))
            .expect("frames round trip");
        prop_assert_eq!(&via_sql, &via_frames);
        prop_assert_eq!(via_sql.id(), query.id());
    }

    // ------------------------------------------------------------ paths

    /// Path display/parse round-trips, and prefix/LCA relations are consistent.
    #[test]
    fn path_round_trip_and_prefix_laws(a in arb_path(), b in arb_path()) {
        let reparsed: Path = a.to_string().parse().expect("path parses");
        prop_assert_eq!(&reparsed, &a);
        let lca = a.common_prefix(&b);
        prop_assert!(lca.is_prefix_of(&a));
        prop_assert!(lca.is_prefix_of(&b));
        if a.is_prefix_of(&b) && b.is_prefix_of(&a) {
            prop_assert_eq!(&a, &b);
        }
        // relative_to and join are inverses below an ancestor.
        if lca.is_prefix_of(&a) {
            let rel = a.relative_to(&lca).expect("lca is an ancestor");
            prop_assert_eq!(lca.join(&rel), a);
        }
    }

    // ------------------------------------------------------------ diffs

    /// Applying every leaf diff between two queries transforms the first into the second, in
    /// both directions.  The diff of a query with itself is empty.
    #[test]
    fn leaf_diffs_transform_between_queries(a in arb_query(), b in arb_query()) {
        prop_assert!(extract_diffs(&a, &a, 0, 0, AncestorPolicy::Full).is_empty());
        let records = extract_diffs(&a, &b, 0, 1, AncestorPolicy::Full);
        let forward = pi_diff::apply_leaf_changes(&a, &records).expect("diffs apply");
        prop_assert_eq!(&forward, &b);

        let reverse_records = extract_diffs(&b, &a, 1, 0, AncestorPolicy::Full);
        let backward = pi_diff::apply_leaf_changes(&b, &reverse_records).expect("reverse diffs apply");
        prop_assert_eq!(&backward, &a);

        // Every record is classified, and replacements keep both sides.
        for record in &records {
            match record.change_kind() {
                ChangeKind::Replacement => prop_assert!(record.before.is_some() && record.after.is_some()),
                ChangeKind::Addition => prop_assert!(record.before.is_none()),
                ChangeKind::Deletion => prop_assert!(record.after.is_none()),
            }
        }
    }

    // ------------------------------------------------------------ interface generation

    /// Whatever log we hand the pipeline, every *compared* query pair stays covered: for each
    /// consecutive pair, every changed subtree is expressed by some widget, either at its own
    /// path or through a widget at an ancestor path (the coverage invariant behind the g = 1
    /// constraint, which the merging phase must preserve).  Merging never increases the
    /// interface cost.
    #[test]
    fn generated_interfaces_cover_every_compared_pair(queries in prop::collection::vec(arb_query(), 2..10)) {
        let generated = PrecisionInterfaces::default().from_queries(queries.clone());
        for pair in queries.windows(2) {
            let records = extract_diffs(&pair[0], &pair[1], 0, 1, AncestorPolicy::LcaPruned);
            let expressed_paths: Vec<Path> = records
                .iter()
                .filter(|r| generated.interface.widgets().iter().any(|w| w.expresses(r)))
                .map(|r| r.path.clone())
                .collect();
            for leaf in records.iter().filter(|r| r.is_leaf) {
                prop_assert!(
                    expressed_paths.iter().any(|p| p.is_prefix_of(&leaf.path)),
                    "change at {} between `{}` and `{}` not covered:\n{}",
                    leaf.path,
                    render_sql(&pair[0]),
                    render_sql(&pair[1]),
                    generated.interface.describe()
                );
            }
        }

        let unmerged = PrecisionInterfaces::new(precision_interfaces::core::PiOptions {
            mapper: precision_interfaces::core::MapperOptions {
                enable_merging: false,
                ..Default::default()
            },
            ..Default::default()
        })
        .from_queries(queries.clone());
        prop_assert!(generated.interface.cost() <= unmerged.interface.cost() + 1e-6);
    }

    // ------------------------------------------------------------ AST core invariants

    /// The memoized structural hash always equals a from-scratch recompute, including after
    /// `replaced`/`removed` mutations at arbitrary valid paths.
    #[test]
    fn memoized_hash_matches_recompute_after_mutations(a in arb_query(), b in arb_query()) {
        prop_assert_eq!(a.structural_hash(), a.recomputed_hash());
        let paths: Vec<Path> = a.preorder().into_iter().map(|(p, _)| p).collect();
        let target = paths[paths.len() / 2].clone();
        let replaced = a.replaced(&target, b.clone()).expect("preorder paths exist");
        prop_assert_eq!(replaced.structural_hash(), replaced.recomputed_hash());
        if !target.is_root() {
            let removed = a.removed(&target).expect("non-root path removal");
            prop_assert_eq!(removed.structural_hash(), removed.recomputed_hash());
            let inserted = removed
                .inserted(&target, b.clone())
                .expect("re-inserting at the removal site");
            prop_assert_eq!(inserted.structural_hash(), inserted.recomputed_hash());
        }
        // Hash equality tracks structural equality.
        prop_assert_eq!(a.structural_hash() == replaced.structural_hash(), a == replaced);
    }

    /// Parallel and serial interaction-graph builds over the same log are identical: same
    /// edges, same diff ids, same records, in the same order.
    #[test]
    fn parallel_and_serial_graph_builds_are_identical(
        queries in prop::collection::vec(arb_query(), 2..24),
    ) {
        use precision_interfaces::graph::{GraphBuilder, WindowStrategy};
        for window in [WindowStrategy::AllPairs, WindowStrategy::Sliding(4)] {
            let serial = GraphBuilder::new()
                .window(window)
                .parallel(false)
                .build(queries.clone());
            let parallel = GraphBuilder::new()
                .window(window)
                .parallel(true)
                .build(queries.clone());
            prop_assert_eq!(&serial, &parallel);
        }
    }

    /// Attribute-name interning is invisible to rendering: every key round-trips through the
    /// intern table, and a query rebuilt from its rendered SQL renders identically (same text,
    /// same structural identity).
    #[test]
    fn interning_never_changes_render_output(query in arb_query()) {
        use precision_interfaces::ast::Sym;
        query.visit(&mut |node| {
            for (key, _) in node.attrs() {
                assert_eq!(Sym::intern(key.as_str()), *key);
                assert_eq!(Sym::intern(key.as_str()).as_str(), key.as_str());
            }
        });
        let rendered = render_sql(&query);
        let rebuilt = parse(&rendered).expect("rendered SQL parses");
        prop_assert_eq!(render_sql(&rebuilt), rendered);
        prop_assert_eq!(rebuilt.id(), query.id());
    }

    // ------------------------------------------------------------ streaming sessions

    /// The streaming invariant: a `Session` snapshot after `n` pushes is identical to a
    /// batch build of the same `n`-query prefix — same edge list, same diff store (length,
    /// ids and record order), same widget set, same rendered interface — under `AllPairs`
    /// and several sliding windows, for arbitrary interleavings of `push` and `snapshot`.
    #[test]
    fn session_snapshots_are_identical_to_batch_builds(
        queries in prop::collection::vec(arb_query(), 1..12),
        snap_every in 1usize..4,
    ) {
        use precision_interfaces::graph::WindowStrategy;
        for window in [
            WindowStrategy::AllPairs,
            WindowStrategy::sliding(2),
            WindowStrategy::sliding(3),
            WindowStrategy::sliding(7),
        ] {
            let options = precision_interfaces::core::PiOptions {
                window,
                ..Default::default()
            };
            let mut session = precision_interfaces::core::Session::new(options.clone());
            for (k, q) in queries.iter().enumerate() {
                prop_assert_eq!(session.push(q.clone()), k);
                // Interleave snapshots with pushes: every prefix the pattern lands on must
                // match the batch build of exactly that prefix.
                if (k + 1) % snap_every != 0 && k + 1 != queries.len() {
                    continue;
                }
                let snap = session.snapshot();
                let batch = PrecisionInterfaces::new(options.clone())
                    .from_queries(queries[..=k].to_vec());
                prop_assert_eq!(snap.version, batch.version);
                prop_assert_eq!(snap.graph_stats, batch.graph_stats);
                // Structural graph equality: same query content, same diff records in the
                // same id order, same edge list.
                prop_assert_eq!(&snap.graph, &batch.graph);
                prop_assert_eq!(snap.interface.widgets(), batch.interface.widgets());
                prop_assert_eq!(snap.interface.describe(), batch.interface.describe());
            }
        }
    }

    /// Streaming SQL text through `push_sql` — including unparseable statements — matches
    /// the one-shot `from_sql_log` of the concatenated log: same skip count, same version,
    /// same graph, same interface.
    #[test]
    fn session_push_sql_matches_batch_from_sql_log(
        statements in prop::collection::vec((arb_query(), prop::bool::ANY), 1..10),
    ) {
        let rendered: Vec<String> = statements
            .iter()
            .map(|(q, ok)| {
                if *ok {
                    render_sql(q)
                } else {
                    "THIS IS NOT SQL".to_string()
                }
            })
            .collect();
        let text = rendered.join(";\n");

        let mut session = precision_interfaces::core::Session::new(Default::default());
        for statement in &rendered {
            session.push_sql(statement);
        }
        let batch = PrecisionInterfaces::default().from_sql_log(&text);

        if session.is_empty() {
            prop_assert!(batch.is_err());
        } else {
            let batch = batch.unwrap();
            let snap = session.snapshot();
            prop_assert_eq!(snap.skipped, batch.skipped);
            prop_assert_eq!(snap.version, batch.version);
            prop_assert_eq!(snap.graph_stats, batch.graph_stats);
            prop_assert_eq!(&snap.graph, &batch.graph);
            prop_assert_eq!(snap.interface.widgets(), batch.interface.widgets());
            prop_assert_eq!(snap.interface.describe(), batch.interface.describe());
        }
    }

    /// Mixed-dialect streaming equals mixed-dialect batch: pushing an interleaved SQL +
    /// frames log one *text statement* at a time (each through its own front-end, with
    /// snapshots interleaved) is identical to one bulk tagged append — same graph, same
    /// dialect tags, same widgets (including per-option dialect tags), same rendered
    /// interface — under `AllPairs` and sliding windows.
    #[test]
    fn mixed_dialect_session_matches_batch(
        entries in prop::collection::vec((arb_query(), prop::bool::ANY), 1..10),
        snap_every in 1usize..4,
    ) {
        use precision_interfaces::graph::WindowStrategy;
        let tagged: Vec<(Dialect, String)> = entries
            .iter()
            .map(|(q, frames)| {
                if *frames {
                    (Dialect::FRAMES, FramesFrontend.render(q))
                } else {
                    (Dialect::SQL, render_sql(q))
                }
            })
            .collect();
        for window in [WindowStrategy::AllPairs, WindowStrategy::sliding(2), WindowStrategy::sliding(5)] {
            let options = PiOptions { window, ..Default::default() };
            // Streaming: one statement at a time, through the per-dialect text path.
            let mut streamed = Session::new(options.clone());
            for (k, (dialect, text)) in tagged.iter().enumerate() {
                prop_assert_eq!(streamed.push_text_as(*dialect, text), vec![k]);
                if (k + 1) % snap_every == 0 {
                    let _ = streamed.snapshot();
                }
            }
            // Batch: one bulk tagged append of the pre-parsed trees.
            let mut batch = Session::new(options.clone());
            batch.push_all_tagged(entries.iter().zip(&tagged).map(|((q, _), (dialect, _))| {
                (*dialect, q.clone())
            }));
            let s = streamed.snapshot();
            let b = batch.into_snapshot();
            prop_assert_eq!(s.version, b.version);
            prop_assert_eq!(&s.dialects, &b.dialects);
            prop_assert_eq!(s.graph_stats, b.graph_stats);
            prop_assert_eq!(&s.graph, &b.graph);
            prop_assert_eq!(s.interface.widgets(), b.interface.widgets());
            prop_assert_eq!(s.interface.initial_dialect(), b.interface.initial_dialect());
            prop_assert_eq!(s.interface.describe(), b.interface.describe());
            // And mining stays dialect-blind: an untagged build of the same trees has the
            // identical graph.
            let untagged = PrecisionInterfaces::new(options)
                .from_queries(entries.iter().map(|(q, _)| q.clone()).collect::<Vec<_>>());
            prop_assert_eq!(&s.graph, &untagged.graph);
        }
    }

    // ------------------------------------------------------------ duplicate collapsing

    /// The dedup/alignment memo is invisible: with memoization on or off, batch builds and
    /// interleaved streaming sessions over duplicate-heavy mixed SQL/frames logs produce
    /// byte-identical graphs — same edges, same diff records at the same `DiffId` offsets,
    /// same widgets (per-option dialect tags included), same rendered interface — under
    /// `AllPairs` and sliding windows.
    #[test]
    fn memoized_mining_is_identical_to_unmemoized(
        base in prop::collection::vec((arb_query(), prop::bool::ANY), 2..8),
        dups in prop::collection::vec((0usize..64, 0usize..64), 1..8),
        snap_every in 1usize..4,
    ) {
        use precision_interfaces::graph::WindowStrategy;
        // Inject duplicates: each (source, position) pair re-inserts an existing log entry
        // (query + dialect tag) somewhere in the log, so the final log mixes dialects AND
        // repeats shapes at arbitrary distances.
        let mut log: Vec<(Dialect, Node)> = base
            .iter()
            .map(|(q, frames)| {
                (if *frames { Dialect::FRAMES } else { Dialect::SQL }, q.clone())
            })
            .collect();
        for &(src, pos) in &dups {
            let entry = log[src % log.len()].clone();
            log.insert(pos % (log.len() + 1), entry);
        }
        let queries: Vec<Node> = log.iter().map(|(_, q)| q.clone()).collect();
        for window in [
            WindowStrategy::AllPairs,
            WindowStrategy::sliding(2),
            WindowStrategy::sliding(5),
        ] {
            let memo_on = PiOptions { window, memoize: true, ..Default::default() };
            let memo_off = PiOptions { window, memoize: false, ..Default::default() };
            // Batch builds.
            let on = PrecisionInterfaces::new(memo_on.clone()).from_queries(queries.clone());
            let off = PrecisionInterfaces::new(memo_off.clone()).from_queries(queries.clone());
            prop_assert_eq!(on.graph_stats, off.graph_stats);
            prop_assert_eq!(&on.graph, &off.graph);
            prop_assert_eq!(on.interface.widgets(), off.interface.widgets());
            prop_assert_eq!(on.interface.describe(), off.interface.describe());
            // Streaming sessions with interleaved snapshots: the memo persists across
            // pushes, and every snapshot along the way must agree with the memo-off twin.
            let mut s_on = Session::new(memo_on);
            let mut s_off = Session::new(memo_off);
            for (k, (dialect, q)) in log.iter().enumerate() {
                prop_assert_eq!(s_on.push_tagged(*dialect, q.clone()), k);
                prop_assert_eq!(s_off.push_tagged(*dialect, q.clone()), k);
                if (k + 1) % snap_every != 0 && k + 1 != log.len() {
                    continue;
                }
                let a = s_on.snapshot();
                let b = s_off.snapshot();
                prop_assert_eq!(a.version, b.version);
                prop_assert_eq!(&a.dialects, &b.dialects);
                prop_assert_eq!(a.graph_stats, b.graph_stats);
                prop_assert_eq!(&a.graph, &b.graph);
                prop_assert_eq!(a.interface.widgets(), b.interface.widgets());
                prop_assert_eq!(a.interface.describe(), b.interface.describe());
            }
            // The streamed memo-on graph equals the memo-off batch build outright.
            prop_assert_eq!(&s_on.graph(), &off.graph);
        }
    }

    // ------------------------------------------------------------ work-stealing determinism

    /// The work-stealing scheduler is invisible: for forced worker counts up to 8 and any
    /// steal-order seed (injected through the test-only `steal_seed` hook, which also
    /// bypasses the cost gate so tiny logs exercise real multi-worker schedules), batch
    /// builds and interleaved `push`/`snapshot` sessions — memo on and off — produce
    /// outputs byte-identical to the single-threaded build: same graph (same `DiffStore`
    /// ids and record order), same widgets, same rendered `describe()`.  Block order, not
    /// steal order, defines the output.
    #[test]
    fn work_stealing_is_byte_identical_across_thread_counts_and_steal_orders(
        base in prop::collection::vec((arb_query(), prop::bool::ANY), 2..8),
        dups in prop::collection::vec((0usize..64, 0usize..64), 1..6),
        seed in 0u64..u64::MAX,
        threads in 2usize..9,
        snap_every in 2usize..5,
    ) {
        use precision_interfaces::graph::WindowStrategy;
        // Duplicate injection (as in the memo test) so the memoized paths hit every
        // admission tier while the scheduler is being perturbed.
        let mut queries: Vec<Node> = base.iter().map(|(q, _)| q.clone()).collect();
        for &(src, pos) in &dups {
            let entry = queries[src % queries.len()].clone();
            queries.insert(pos % (queries.len() + 1), entry);
        }
        for window in [WindowStrategy::AllPairs, WindowStrategy::sliding(3)] {
            for memoize in [true, false] {
                let serial = PiOptions { window, memoize, threads: 1, ..Default::default() };
                let stolen = PiOptions {
                    window,
                    memoize,
                    threads,
                    steal_seed: Some(seed),
                    ..Default::default()
                };
                let reference = PrecisionInterfaces::new(serial.clone()).from_queries(queries.clone());
                let forced = PrecisionInterfaces::new(stolen.clone()).from_queries(queries.clone());
                prop_assert_eq!(forced.graph_stats, reference.graph_stats);
                prop_assert_eq!(&forced.graph, &reference.graph);
                prop_assert_eq!(forced.interface.widgets(), reference.interface.widgets());
                prop_assert_eq!(forced.interface.describe(), reference.interface.describe());
                // Interleaved streaming under the perturbed schedule: every prefix the
                // snapshot pattern lands on must match the single-threaded batch build of
                // exactly that prefix.
                let mut session = Session::new(stolen);
                for (k, q) in queries.iter().enumerate() {
                    prop_assert_eq!(session.push(q.clone()), k);
                    if (k + 1) % snap_every != 0 && k + 1 != queries.len() {
                        continue;
                    }
                    let snap = session.snapshot();
                    let batch = PrecisionInterfaces::new(serial.clone())
                        .from_queries(queries[..=k].to_vec());
                    prop_assert_eq!(snap.version, batch.version);
                    prop_assert_eq!(&snap.graph, &batch.graph);
                    prop_assert_eq!(snap.interface.widgets(), batch.interface.widgets());
                    prop_assert_eq!(snap.interface.describe(), batch.interface.describe());
                }
            }
        }
    }

    // ------------------------------------------------------------ streaming text ingest

    /// The trace-scale streaming path (`push_stream_tagged`: chunked batch extends, the
    /// parse cache, lossy error sampling) is invisible: streaming a mixed-dialect line
    /// soup with duplicates and garbage leaves the session byte-identical to per-fragment
    /// `push_text_as` pushes of the same lines — same appended/skip counts, same distinct
    /// trees, same graph, same interface — across worker counts and memo on/off.
    #[test]
    fn streamed_text_ingest_is_identical_to_per_fragment_pushes(
        base in prop::collection::vec((arb_query(), prop::bool::ANY), 2..8),
        dups in prop::collection::vec((0usize..64, 0usize..64), 1..8),
        garbage_at in prop::collection::vec(0usize..64, 0..4),
        threads in 1usize..5,
        memoize in prop::bool::ANY,
    ) {
        use precision_interfaces::graph::WindowStrategy;
        // Duplicate-heavy mixed-dialect lines (the parse cache and dedup layers both
        // engage), with unparseable lines interleaved at arbitrary positions.
        let mut lines: Vec<(Dialect, String)> = base
            .iter()
            .map(|(q, frames)| {
                if *frames {
                    (Dialect::FRAMES, FramesFrontend.render(q))
                } else {
                    (Dialect::SQL, render_sql(q))
                }
            })
            .collect();
        for &(src, pos) in &dups {
            let entry = lines[src % lines.len()].clone();
            lines.insert(pos % (lines.len() + 1), entry);
        }
        for &pos in &garbage_at {
            lines.insert(pos % (lines.len() + 1), (Dialect::SQL, "%% garbage %%".to_string()));
        }
        let opts = PiOptions {
            window: WindowStrategy::sliding(4),
            memoize,
            threads,
            ..Default::default()
        };
        let mut streamed = Session::new(opts.clone());
        let appended = streamed.push_stream_tagged(lines.iter().map(|(d, t)| (*d, t.as_str())));
        let mut stepped = Session::new(opts);
        let mut stepped_appended = 0usize;
        for (dialect, text) in &lines {
            stepped_appended += stepped.push_text_as(*dialect, text).len();
        }
        prop_assert_eq!(appended, stepped_appended);
        prop_assert_eq!(streamed.skipped(), stepped.skipped());
        prop_assert_eq!(streamed.parse_errors().seen(), stepped.parse_errors().seen());
        prop_assert_eq!(streamed.distinct(), stepped.distinct());
        prop_assert_eq!(&streamed.graph(), &stepped.graph());
        let a = streamed.snapshot();
        let b = stepped.snapshot();
        prop_assert_eq!(&a.dialects, &b.dialects);
        prop_assert_eq!(a.graph_stats, b.graph_stats);
        prop_assert_eq!(a.interface.widgets(), b.interface.widgets());
        prop_assert_eq!(a.interface.describe(), b.interface.describe());
    }

    // ------------------------------------------------------------ COW aliasing

    /// The copy-on-write contract: `replaced()` shares every subtree off the root→path spine
    /// with the original (physical `Arc` sharing, observed via [`Node::ptr_eq`]), further
    /// mutation of the copy never changes the original, and the memoized hashes of both
    /// trees stay equal to a from-scratch recompute under all that sharing.
    #[test]
    fn cow_copies_share_subtrees_and_mutations_never_alias_back(
        a in arb_query(),
        b in arb_query(),
    ) {
        let paths: Vec<Path> = a.preorder().into_iter().map(|(p, _)| p).collect();
        let target = paths[paths.len() / 2].clone();
        let pristine_render = render_sql(&a);
        let pristine_hash = a.structural_hash();

        let mut copy = a.replaced(&target, b.clone()).expect("preorder paths exist");
        // Untouched top-level siblings are the same physical allocation, not equal clones.
        if let Some(&first) = target.steps().first() {
            for (i, child) in a.children().iter().enumerate() {
                if i != first {
                    prop_assert!(
                        child.ptr_eq(&copy.children()[i]),
                        "untouched sibling {i} must be shared"
                    );
                }
            }
        }
        // Pile mutations onto the aliased copy; the original must stay byte-identical.
        copy.set_attr("distinct", true);
        if !target.is_root() {
            let _ = copy.remove_at(&target);
        }
        let _ = copy.replaced(&Path::root(), b);
        prop_assert_eq!(render_sql(&a), pristine_render);
        prop_assert_eq!(a.structural_hash(), pristine_hash);
        prop_assert_eq!(a.structural_hash(), a.recomputed_hash());
        prop_assert_eq!(copy.structural_hash(), copy.recomputed_hash());
    }

    // ------------------------------------------------------------ widget domains

    /// Slider extrapolation: any value between the observed minimum and maximum is considered
    /// expressible; values outside are not.
    #[test]
    fn slider_extrapolation_respects_the_observed_range(
        mut values in prop::collection::vec(-1000i64..1000, 2..8),
        probe in -1000i64..1000,
    ) {
        use precision_interfaces::widgets::{Domain, WidgetLibrary};
        let domain = Domain::from_subtrees(values.iter().map(|v| Node::int(*v)));
        values.sort_unstable();
        let (lo, hi) = (values[0], values[values.len() - 1]);
        let widget = WidgetLibrary::standard()
            .pick(Path::root(), domain, vec![])
            .expect("numeric domains always map to a widget");
        let expressible = widget.can_express_subtree(Some(&Node::int(probe)));
        if probe >= lo && probe <= hi {
            prop_assert!(expressible);
        }
        if probe < lo || probe > hi {
            // Enumerating widgets may still express an exact member; anything else outside the
            // range must be rejected.
            if !values.contains(&probe) {
                prop_assert!(!expressible);
            }
        }
    }
}
