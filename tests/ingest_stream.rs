//! Tier-1 smoke test for trace-scale streaming ingest: a 10⁵-line Zipf trace streams
//! through `Session::push_stream_tagged` and the session's memory footprint must stay
//! bounded — log storage collapses to the distinct-shape arena, and everything that does
//! grow per row (class ids, dialect tags, window-bounded mined records) grows by a small
//! *constant* per row, never per-query trees.
//!
//! The mining window is kept minimal (`sliding(2)`) so the test is about the *ingest*
//! path — chunked extends, the parse cache, skip-and-count, arena-backed log storage —
//! and stays fast in debug builds.  `memory_footprint()` covers mined state too (diff
//! records and the alignment memo): the memo is flat once the shape pool is warm, and
//! record rows are a bounded few dozen bytes per admitted pair, so streaming the second
//! half of the trace may not double the halfway footprint — superlinear retention
//! (per-duplicate trees, an unbounded memo) would blow straight through that bound.

use precision_interfaces::graph::WindowStrategy;
use precision_interfaces::prelude::*;

#[test]
fn streaming_a_hundred_thousand_line_trace_keeps_the_footprint_bounded() {
    const LINES: usize = 100_000;
    const WARM: usize = LINES / 2;

    let mut session = Session::new(PiOptions {
        window: WindowStrategy::sliding(2),
        ..PiOptions::default()
    });
    let mut trace = pi_workloads::trace::zipf_trace(LINES, 256, 0.01, 7);
    let pool = trace.pool_size();

    let warm_appended = session.push_stream_tagged(trace.by_ref().take(WARM));
    let warm_footprint = session.memory_footprint();
    assert!(warm_appended > 0 && warm_footprint > 0);

    let appended = warm_appended + session.push_stream_tagged(trace.by_ref());
    let footprint = session.memory_footprint();

    // Every line was either appended or skipped as garbage, and the garbage was sampled.
    assert_eq!(appended + session.skipped(), LINES);
    assert_eq!(session.skipped(), trace.garbage_emitted());
    assert_eq!(session.parse_errors().seen(), trace.garbage_emitted());

    // The log collapsed to the shape pool: the arena holds distinct trees, not rows.
    assert!(
        session.distinct() <= pool,
        "{} distinct trees from a {pool}-shape pool",
        session.distinct()
    );

    // The bounded-memory contract: the shape pool (and with it the arena and the alignment
    // memo) is fully introduced early in the trace, so the second half of the stream adds
    // only per-row constants — bookkeeping bytes and window-bounded record rows.  Anything
    // superlinear, or any per-duplicate tree retention, doubles the halfway footprint.
    assert!(
        footprint <= 2 * warm_footprint,
        "footprint doubled across the stream: {warm_footprint} -> {footprint} bytes"
    );
    // And an absolute sanity bound: the arena, parse cache and memo land around a couple
    // MiB, and ~8 mined records/row at ~32 bytes add ~25 MiB across the full trace; a
    // retained per-query tree (~30 nodes × 128 bytes × 10⁵ rows) would blow far past this.
    assert!(
        footprint < 48 << 20,
        "footprint {footprint} bytes is not trace-scale bounded"
    );
}
