//! Tier-1 smoke test for trace-scale streaming ingest: a 10⁵-line Zipf trace streams
//! through `Session::push_stream_tagged` and the session's memory footprint must stay
//! bounded — growth past the warm point is per-row bookkeeping (a few bytes per row), not
//! per-query trees.
//!
//! The mining window is kept minimal (`sliding(2)`) so the test is about the *ingest*
//! path — chunked extends, the parse cache, skip-and-count, arena-backed log storage —
//! and stays fast in debug builds; the footprint contract it asserts is independent of
//! how many pairs the window mines (mined artifacts are excluded from
//! `memory_footprint()` by design and observable through `graph_stats` instead).

use precision_interfaces::graph::WindowStrategy;
use precision_interfaces::prelude::*;

#[test]
fn streaming_a_hundred_thousand_line_trace_keeps_the_footprint_bounded() {
    const LINES: usize = 100_000;
    const WARM: usize = LINES / 10;

    let mut session = Session::new(PiOptions {
        window: WindowStrategy::sliding(2),
        ..PiOptions::default()
    });
    let mut trace = pi_workloads::trace::zipf_trace(LINES, 256, 0.01, 7);
    let pool = trace.pool_size();

    let warm_appended = session.push_stream_tagged(trace.by_ref().take(WARM));
    let warm_footprint = session.memory_footprint();
    assert!(warm_appended > 0 && warm_footprint > 0);

    let appended = warm_appended + session.push_stream_tagged(trace.by_ref());
    let footprint = session.memory_footprint();

    // Every line was either appended or skipped as garbage, and the garbage was sampled.
    assert_eq!(appended + session.skipped(), LINES);
    assert_eq!(session.skipped(), trace.garbage_emitted());
    assert_eq!(session.parse_errors().seen(), trace.garbage_emitted());

    // The log collapsed to the shape pool: the arena holds distinct trees, not rows.
    assert!(
        session.distinct() <= pool,
        "{} distinct trees from a {pool}-shape pool",
        session.distinct()
    );

    // The bounded-memory contract: with the pool fully introduced during warm-up (the
    // trace front-loads its shapes), the remaining 90% of the stream may not double the
    // session's footprint.
    assert!(
        footprint <= 2 * warm_footprint,
        "footprint doubled across the stream: {warm_footprint} -> {footprint} bytes"
    );
    // And an absolute sanity bound: ~5 bytes/row of bookkeeping plus the arena and parse
    // cache land around 1 MiB; a retained per-query tree would blow far past this.
    assert!(
        footprint < 8 << 20,
        "footprint {footprint} bytes is not trace-scale bounded"
    );
}
