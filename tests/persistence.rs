//! Property tests for session persistence: a mined [`Session`]'s versioned binary
//! snapshot must restore **byte-identically** — same graph, same `DiffId`s, same widgets,
//! same version and skip counts, same future mining — across memoization on/off, parallel
//! mining on/off (runs under `PI_THREADS=1` and `PI_THREADS=4` in CI like every other
//! determinism property) and mixed SQL + frames logs with garbage spliced in.  And every
//! corrupted, truncated or wrong-version snapshot must fail restore with a clean error —
//! never a panic, never a silently different graph.
//!
//! The golden-fixture test at the bottom pins the *wire format*: a snapshot checked in at
//! format version 1 must keep restoring until `SNAPSHOT_VERSION` is deliberately bumped
//! (regenerate with `PI_REGEN_GOLDEN=1 cargo test --test persistence`).

use precision_interfaces::ast::{CodecError, Dialect};
use precision_interfaces::core::{PiOptions, Session, SNAPSHOT_VERSION};
use precision_interfaces::graph::WindowStrategy;
use precision_interfaces::workloads::frames::repetitive_mixed_walk;
use proptest::prelude::*;

/// Feeds a deterministic mixed SQL + frames stream (with one unparseable statement when
/// `garble`) into a fresh session configured by the matrix axes.
fn mined_session(seed: u64, len: usize, memoize: bool, parallel: bool, garble: bool) -> Session {
    let options = PiOptions {
        window: WindowStrategy::sliding(4),
        memoize,
        parallel,
        ..PiOptions::default()
    };
    let mut session = Session::new(options);
    let log = repetitive_mixed_walk(seed, len.max(1), 5);
    let mut stream: Vec<(Dialect, String)> = log
        .dialects
        .iter()
        .copied()
        .zip(log.text.iter().cloned())
        .collect();
    if garble {
        let dialect = stream[0].0;
        stream.insert(stream.len() / 2, (dialect, "NOT A QUERY ((".to_string()));
    }
    session.push_stream_tagged(stream.iter().map(|(d, t)| (*d, t.as_str())));
    session
}

/// The full identity contract between a restored session and its original.
fn assert_restored_identical(original: &mut Session, restored: &mut Session) {
    assert_eq!(restored.version(), original.version());
    assert_eq!(restored.len(), original.len());
    assert_eq!(restored.distinct(), original.distinct());
    assert_eq!(restored.skipped(), original.skipped());
    assert_eq!(restored.dialects(), original.dialects());
    assert_eq!(restored.graph(), original.graph());
    assert_eq!(restored.graph_stats(), original.graph_stats());
    // The parse cache is deliberately not persisted, so the restored session can only be
    // lighter than the original — the mined state itself round-trips exactly.
    assert!(restored.memory_footprint() <= original.memory_footprint());
    assert_eq!(
        restored.parse_errors().seen(),
        original.parse_errors().seen()
    );
    let (snap_r, snap_o) = (restored.snapshot(), original.snapshot());
    assert_eq!(snap_r.version, snap_o.version);
    assert_eq!(snap_r.graph_stats, snap_o.graph_stats);
    assert_eq!(snap_r.interface.widgets(), snap_o.interface.widgets());
    assert_eq!(snap_r.interface.describe(), snap_o.interface.describe());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// persist → restore reproduces the session exactly, keeps mining identically on the
    /// same suffix, and re-persisting yields the same bytes (snapshot determinism).
    #[test]
    fn persist_restore_is_byte_identical_across_the_matrix(
        seed in 0u64..512,
        len in 2usize..24,
        memoize in prop::bool::ANY,
        parallel in prop::bool::ANY,
        garble in prop::bool::ANY,
    ) {
        let mut original = mined_session(seed, len, memoize, parallel, garble);
        let bytes = original.persist_to_vec().expect("persist");
        let mut restored = Session::restore_with(
            &mut bytes.as_slice(),
            original.options().clone(),
        ).expect("restore");

        // Determinism: the restored session re-persists to the exact same bytes.  (Checked
        // before the first `snapshot()` call: rendering accumulates mapping wall-clock into
        // the persisted timings, which is honest bookkeeping but not byte-stable.)
        let again = restored.persist_to_vec().expect("re-persist");
        prop_assert_eq!(&again, &bytes, "persist ∘ restore ∘ persist must be byte-stable");

        assert_restored_identical(&mut original, &mut restored);

        // Continuation: both halves mine an identical suffix identically — and end up
        // persisting identically, so the restored memo really is warm and in sync.
        let suffix = repetitive_mixed_walk(seed ^ 0xdead_beef, 6, 4);
        for (dialect, text) in suffix.dialects.iter().zip(suffix.text.iter()) {
            original.push_text_as(*dialect, text);
            restored.push_text_as(*dialect, text);
        }
        assert_restored_identical(&mut original, &mut restored);
    }

    /// Any single-byte corruption or truncation fails restore with a clean error: the
    /// envelope checksum rejects flips, framing rejects truncation, and nothing panics.
    #[test]
    fn corrupted_snapshots_err_cleanly(seed in 0u64..256, len in 2usize..10) {
        let mut original = mined_session(seed, len, true, false, false);
        let bytes = original.persist_to_vec().expect("persist");

        // Truncation at every prefix length.
        for cut in 0..bytes.len() {
            prop_assert!(Session::restore(&mut bytes[..cut].as_ref()).is_err(),
                "truncation at {cut} must fail restore");
        }
        // Single-byte flips everywhere (stride keeps the case fast; the stride phase
        // varies with the seed so the corpus covers every offset class).
        let stride = 7;
        let phase = (seed as usize) % stride;
        for i in (phase..bytes.len()).step_by(stride) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x11;
            prop_assert!(Session::restore(&mut bad.as_slice()).is_err(),
                "flipping byte {i} must fail restore");
        }
    }
}

#[test]
fn foreign_and_wrong_version_snapshots_are_rejected() {
    // Not a snapshot at all.
    assert!(Session::restore(&mut &b"definitely not a snapshot"[..]).is_err());
    assert!(Session::restore(&mut &[][..]).is_err());

    // A valid snapshot whose version stamp is from the future must fail with the
    // dedicated Version error, not a misread.
    let mut session = Session::new(PiOptions::default());
    session.push_sql("SELECT a FROM t WHERE x = 1; SELECT a FROM t WHERE x = 2;");
    let mut bytes = session.persist_to_vec().unwrap();
    let version_at = b"PISNAP".len();
    bytes[version_at..version_at + 4].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    match Session::restore(&mut bytes.as_slice()) {
        Err(CodecError::Version { found, supported }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        other => panic!("expected a Version error, got {other:?}"),
    }
}

/// The fixed statement log behind the golden fixture — touches both dialects, a repeated
/// shape (exercising dedup + memo in the snapshot) and one garbage statement (exercising
/// the error-sample envelope).
fn golden_statements() -> Vec<(Dialect, &'static str)> {
    vec![
        (Dialect::SQL, "SELECT day, sales FROM t WHERE cty = 'USA'"),
        (Dialect::SQL, "SELECT day, costs FROM t WHERE cty = 'EUR'"),
        (Dialect::FRAMES, "t.filter(x == 2).select(day)"),
        (Dialect::SQL, "THIS IS NOT SQL"),
        (Dialect::SQL, "SELECT day, sales FROM t WHERE cty = 'USA'"),
        (Dialect::FRAMES, "t.filter(x == 9).select(day)"),
        (
            Dialect::SQL,
            "SELECT day, sales FROM t WHERE cty = 'CHN' ORDER BY day",
        ),
    ]
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/session_v1.pisnap")
}

/// Wire-format compatibility: the checked-in version-1 snapshot must keep restoring, and
/// must restore to exactly what mining the same statements produces today.  If this test
/// fails after a codec change, the format broke: bump `SNAPSHOT_VERSION` and regenerate
/// the fixture (`PI_REGEN_GOLDEN=1 cargo test --test persistence golden`).
#[test]
fn golden_snapshot_keeps_restoring() {
    let path = golden_path();
    if std::env::var_os("PI_REGEN_GOLDEN").is_some() {
        let mut session = Session::new(PiOptions::default());
        for (dialect, text) in golden_statements() {
            session.push_text_as(dialect, text);
        }
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, session.persist_to_vec().unwrap()).unwrap();
    }
    let bytes = std::fs::read(&path).expect(
        "golden fixture missing — generate it with PI_REGEN_GOLDEN=1 cargo test --test persistence",
    );
    let mut restored = Session::restore(&mut bytes.as_slice())
        .expect("the v1 golden snapshot must restore; a format break requires a version bump");

    // The round trip is lossless: re-persisting reproduces the fixture bytes exactly.
    // (Checked before `snapshot()` runs — rendering accumulates mapping wall-clock time
    // into the timings section.)
    assert_eq!(restored.persist_to_vec().unwrap(), bytes);

    // The restored state equals a fresh mine of the same statements.
    let mut fresh = Session::new(PiOptions::default());
    for (dialect, text) in golden_statements() {
        fresh.push_text_as(dialect, text);
    }
    assert_eq!(restored.version(), fresh.version());
    assert_eq!(restored.skipped(), fresh.skipped());
    assert_eq!(restored.dialects(), fresh.dialects());
    assert_eq!(restored.graph(), fresh.graph());
    assert_eq!(
        restored.snapshot().interface.describe(),
        fresh.snapshot().interface.describe()
    );
}
