//! Cross-crate integration tests: the full pipeline from SQL text to an executable,
//! renderable, schema-checked interface.

use precision_interfaces::core::precision::{query_is_schema_valid, SchemaMap};
use precision_interfaces::core::recall::{holdout_recall, split_log};
use precision_interfaces::core::PiOptions;
use precision_interfaces::prelude::*;
use precision_interfaces::workloads::{frames as frames_logs, mix, olap, sdss};

fn parse(sql: &str) -> Result<Node, FrontendError> {
    SqlFrontend.parse_one(sql)
}

fn render_sql(query: &Node) -> String {
    SqlFrontend.render(query)
}

fn catalog_schema(catalog: &Catalog) -> SchemaMap {
    let mut schema = SchemaMap::new();
    for (table, columns) in catalog.schema() {
        schema.add_table(&table, columns.iter().map(String::as_str));
    }
    schema
}

#[test]
fn end_to_end_olap_interface_queries_all_execute() {
    // Log -> interface -> closure -> every closure query parses, renders, round-trips, passes
    // the schema check, and executes on the engine.
    let log = olap::random_walk(3, 120);
    let generated = PrecisionInterfaces::default().from_queries(log.queries.clone());
    // The OLAP walk keeps adding/removing clauses, so reaching a late query from the very
    // first one can take several interactions; the single-pass membership check therefore
    // reports a large fraction, not necessarily all, of the log as directly reachable.
    assert!(generated.interface.expressiveness(&log.queries) >= 0.5);
    // The edge-level guarantee does hold: for each step of the walk, every changed subtree is
    // expressed by some widget, either directly or through a widget at an ancestor path (the
    // coverage invariant the merging phase preserves).
    for pair in log.queries.windows(2).take(30) {
        let records =
            pi_diff::extract_diffs(&pair[0], &pair[1], 0, 1, pi_diff::AncestorPolicy::LcaPruned);
        let expressed_paths: Vec<_> = records
            .iter()
            .filter(|r| generated.interface.widgets().iter().any(|w| w.expresses(r)))
            .map(|r| r.path.clone())
            .collect();
        for leaf in records.iter().filter(|r| r.is_leaf) {
            assert!(
                expressed_paths.iter().any(|p| p.is_prefix_of(&leaf.path)),
                "leaf change at {} not covered:\n{}",
                leaf.path,
                generated.interface.describe()
            );
        }
    }

    let catalog = Catalog::demo(5);
    let schema = catalog_schema(&catalog);
    let closure = generated.interface.enumerate_closure(300);
    assert!(!closure.is_empty());
    let mut executed = 0;
    for query in &closure {
        let sql = render_sql(query);
        let reparsed = parse(&sql).expect("closure queries render to parsable SQL");
        assert_eq!(&reparsed, query);
        if query_is_schema_valid(query, &schema) {
            let result = exec(query, &catalog).expect("schema-valid closure queries execute");
            let _ = render(&result);
            executed += 1;
        }
    }
    assert!(
        executed > 0,
        "at least some closure queries must be executable"
    );
}

#[test]
fn sdss_client_interface_generalises_and_compiles_to_html() {
    let log = sdss::client_log(sdss::ClientArchetype::ObjectLookup, 11, 150);
    let split = split_log(&log.queries, 50);
    let (recall, generated) =
        holdout_recall(&split.train[..60], split.holdout, &PiOptions::default());
    assert!(
        recall >= 0.9,
        "structured SDSS analyses should generalise, got {recall}"
    );

    // The interface compiles into a self-contained web page mentioning every widget.
    let layout = EditorLayout::new(&generated.interface, 2);
    let html = compile_html(&generated.interface, &layout, "SDSS client");
    assert!(html.contains("<!DOCTYPE html>"));
    for widget in generated.interface.widgets() {
        assert!(html.contains(widget.ty.slug()) || html.contains("input"));
    }

    // The initial query runs against the synthetic SkyServer catalog.
    let catalog = Catalog::demo(11);
    let result = exec(generated.interface.initial_query(), &catalog).unwrap();
    let _ = render(&result);
}

#[test]
fn heterogeneous_logs_lose_precision_but_the_filter_restores_it() {
    use precision_interfaces::core::precision::{closure_precision, filtered_closure};
    let logs = sdss::client_logs(4, 80);
    let mixed = mix::interleave(&logs, 9);
    let generated = PrecisionInterfaces::default().from_queries(mixed.queries.clone());

    let catalog = Catalog::demo(2);
    let schema = catalog_schema(&catalog);
    let precision = closure_precision(&generated.interface, &schema, 5_000);
    assert!(
        precision < 1.0,
        "mixed-client closures should contain invalid queries"
    );
    let filtered = filtered_closure(&generated.interface, &schema, 5_000);
    assert!(filtered.iter().all(|q| query_is_schema_valid(q, &schema)));
}

#[test]
fn optimised_and_baseline_configurations_express_the_same_log() {
    use pi_diff::AncestorPolicy;
    use pi_graph::WindowStrategy;
    let log = sdss::client_log(sdss::ClientArchetype::ConeSearchTop, 2, 60);
    let optimised = PrecisionInterfaces::default().from_queries(log.queries.clone());
    let baseline = PrecisionInterfaces::new(PiOptions {
        window: WindowStrategy::AllPairs,
        policy: AncestorPolicy::Full,
        ..PiOptions::default()
    })
    .from_queries(log.queries.clone());

    assert!(optimised.interface.expressiveness(&log.queries) >= 1.0);
    assert!(baseline.interface.expressiveness(&log.queries) >= 1.0);
    // The optimisations shrink the mined graph dramatically.
    assert!(baseline.graph_stats.diff_records > optimised.graph_stats.diff_records);
    assert!(baseline.graph_stats.edges > optimised.graph_stats.edges);
}

#[test]
fn generated_interfaces_execute_under_user_interaction_sequences() {
    // Simulate a user driving the Listing 6 interface: toggle the TOP clause, move the limit
    // slider, and run the query after each interaction (the exec() loop of Figure 2b).
    let log = "
      SELECT g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(180.0, 0.0, 3000.0) AS d WHERE d.objID = g.objID;
      SELECT TOP 1 g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(180.0, 0.0, 3000.0) AS d WHERE d.objID = g.objID;
      SELECT TOP 10 g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(180.0, 0.0, 3000.0) AS d WHERE d.objID = g.objID;
      SELECT TOP 5 g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(180.0, 0.0, 3000.0) AS d WHERE d.objID = g.objID;
    ";
    let generated = PrecisionInterfaces::default().from_sql_log(log).unwrap();
    let catalog = Catalog::demo(3);
    let mut seen_row_counts = std::collections::BTreeSet::new();
    for query in generated.interface.enumerate_closure(50) {
        let result = exec(&query, &catalog).expect("closure query executes");
        seen_row_counts.insert(result.num_rows());
    }
    // Different TOP values produce different result sizes.
    assert!(seen_row_counts.len() > 1, "{seen_row_counts:?}");
}

#[test]
fn streaming_session_tracks_the_batch_pipeline_and_compiles_to_html() {
    // Stream a 60-query SDSS client log one query at a time, snapshotting every 20 pushes;
    // the final snapshot must be identical to the one-shot batch run, and its interface
    // must compile to HTML exactly like a batch-produced one.
    let log = sdss::client_log(sdss::ClientArchetype::ConeSearchTop, 7, 60);
    let mut session = Session::new(PiOptions::default());
    let mut refreshes = 0;
    for (k, query) in log.queries.iter().enumerate() {
        assert_eq!(session.push(query.clone()), k);
        if (k + 1) % 20 == 0 {
            let snapshot = session.snapshot();
            assert_eq!(snapshot.version, k as u64 + 1);
            assert!(snapshot.interface.expressiveness(&log.queries[..=k]) >= 1.0);
            refreshes += 1;
        }
    }
    assert_eq!(refreshes, 3);

    let streamed = session.snapshot();
    let batch = PrecisionInterfaces::default().from_queries(log.queries.clone());
    assert_eq!(streamed.version, batch.version);
    assert_eq!(streamed.graph_stats, batch.graph_stats);
    assert_eq!(streamed.interface.describe(), batch.interface.describe());

    let layout = EditorLayout::new(&streamed.interface, 2);
    let html = compile_html(&streamed.interface, &layout, "live SDSS session");
    assert!(html.contains("<!DOCTYPE html>"));
    assert_eq!(
        html,
        compile_html(&batch.interface, &layout, "live SDSS session")
    );
}

#[test]
fn study_and_interface_agree_on_task_support() {
    // The generated SDSS interface has widgets for the object-id lookup task that the SDSS
    // form lacks; check the simulated study reflects exactly that asymmetry.
    use precision_interfaces::study::{run_study, summarize, Condition, StudyConfig, Task};
    let summaries = summarize(&run_study(StudyConfig::default()));
    let t1_pi = summaries
        .iter()
        .find(|s| s.task == Task::ObjectIdLookup && s.condition == Condition::PrecisionInterface)
        .unwrap();
    let t1_sdss = summaries
        .iter()
        .find(|s| s.task == Task::ObjectIdLookup && s.condition == Condition::SdssForm)
        .unwrap();
    assert!(t1_sdss.mean_time_s > 3.0 * t1_pi.mean_time_s);
}

#[test]
fn mixed_dialect_log_mines_end_to_end_into_one_dialect_aware_interface() {
    // The acceptance scenario of the multi-front-end refactor: an interleaved SQL +
    // dataframe log (the same OLAP walk, each entry's language drawn by a coin) mines into
    // ONE interface whose HTML/JSON output renders each closure query in its originating
    // dialect.
    let mixed = frames_logs::mixed_walk(5, 64);
    assert!(mixed.dialects.contains(&Dialect::SQL));
    assert!(mixed.dialects.contains(&Dialect::FRAMES));

    let mut session = Session::new(PiOptions::default());
    session.push_all_tagged(mixed.tagged_queries());
    let snapshot = session.snapshot();
    assert_eq!(snapshot.version as usize, mixed.len());
    assert_eq!(snapshot.dialects, mixed.dialects);

    // Mining is dialect-blind: the graph — and the widget set itself — equals the
    // pure-SQL walk's (same trees; domain equality ignores presentation tags).
    let sql_only = PrecisionInterfaces::default().from_queries(olap::random_walk(5, 64).queries);
    assert_eq!(snapshot.graph, sql_only.graph);
    assert_eq!(snapshot.interface.widgets(), sql_only.interface.widgets());
    assert_eq!(snapshot.interface.describe(), sql_only.interface.describe());

    // The widget domains carry per-option dialect tags from both front-ends...
    let tags: std::collections::BTreeSet<&str> = snapshot
        .interface
        .widgets()
        .iter()
        .flat_map(|w| w.domain.dialects().iter().map(|d| d.name()))
        .collect();
    assert!(tags.contains("sql") && tags.contains("frames"), "{tags:?}");

    // ...and the compiled page renders every option with its own front-end's renderer.
    let frontends = standard_frontends();
    let layout = EditorLayout::new(&snapshot.interface, 2);
    let html = compile_html_with(&snapshot.interface, &layout, "mixed walk", &frontends);
    assert!(html.contains("\"dialect\":\"sql\""));
    assert!(html.contains("\"dialect\":\"frames\""));
    for widget in snapshot.interface.widgets() {
        for (subtree, dialect) in widget.domain.tagged_subtrees() {
            let rendered = frontends.render(dialect, subtree);
            let json_fragment = format!(
                "{}",
                precision_interfaces::ui::json::Json::string(&rendered)
            );
            assert!(
                html.contains(json_fragment.trim_matches('"')),
                "option `{rendered}` ({dialect}) missing from the page"
            );
        }
    }

    // The initial query renders in the dialect of the log's first entry.
    let initial = frontends.render(
        snapshot.interface.initial_dialect(),
        snapshot.interface.initial_query(),
    );
    assert_eq!(snapshot.interface.initial_dialect(), mixed.dialects[0]);
    assert!(html.contains(&format!("\"initialDialect\":\"{}\"", mixed.dialects[0])));
    assert!(!initial.is_empty());
}

#[test]
fn mining_is_identical_under_shared_and_fresh_subtrees() {
    // The COW refactor makes diff records, widget domains and applied interactions alias
    // subtrees of the log queries.  Sharing must be unobservable: mining a log whose trees
    // are freshly re-parsed (zero sharing) yields a byte-identical graph, diff store and
    // widget set to mining the original (shared) trees.
    let logs: Vec<Vec<Node>> = vec![
        olap::random_walk(3, 64).queries,
        sdss::client_log(sdss::ClientArchetype::ObjectLookup, 2, 64).queries,
        mix::interleave(&sdss::client_logs(4, 16), 1).queries,
    ];
    for queries in logs {
        let shared = PrecisionInterfaces::default().from_queries(queries.clone());
        let fresh: Vec<Node> = queries
            .iter()
            .map(|q| parse(&render_sql(q)).expect("workload queries round-trip"))
            .collect();
        let rebuilt = PrecisionInterfaces::default().from_queries(fresh);
        assert_eq!(shared.graph, rebuilt.graph);
        assert_eq!(shared.graph_stats, rebuilt.graph_stats);
        assert_eq!(shared.interface.widgets(), rebuilt.interface.widgets());
        assert_eq!(shared.interface.describe(), rebuilt.interface.describe());
        // Every domain subtree's memoized hash stays sound under sharing.
        for widget in shared.interface.widgets() {
            for subtree in widget.domain.subtrees() {
                assert_eq!(subtree.structural_hash(), subtree.recomputed_hash());
            }
        }
    }
}

#[test]
fn dedup_memoized_mining_collapses_work_on_repetitive_logs_without_changing_output() {
    use precision_interfaces::graph::{GraphAccumulator, GraphBuilder, WindowStrategy};
    // A duplicate-heavy mixed SQL + frames log: ~24 distinct shapes over 160 queries.
    let log = frames_logs::repetitive_mixed_walk(7, 160, 24);
    for window in [WindowStrategy::AllPairs, WindowStrategy::sliding(5)] {
        let memoized = GraphBuilder::new().window(window).build(&log.queries);
        let unmemoized = GraphBuilder::new()
            .window(window)
            .memoize(false)
            .build(&log.queries);
        // Byte-identical graphs: same edges, same records at the same DiffId offsets.
        assert_eq!(memoized, unmemoized);
        // And the full pipeline (widgets included) agrees too.
        let on = PrecisionInterfaces::new(PiOptions {
            window,
            ..PiOptions::default()
        })
        .from_queries(log.queries.clone());
        let off = PrecisionInterfaces::new(PiOptions {
            window,
            memoize: false,
            ..PiOptions::default()
        })
        .from_queries(log.queries.clone());
        assert_eq!(on.graph, off.graph);
        assert_eq!(on.interface.widgets(), off.interface.widgets());
        assert_eq!(on.interface.describe(), off.interface.describe());
    }
    // The work actually collapses: an AllPairs stream of all 160 queries runs at most
    // 3·d·(d−1) alignments for the d ≤ 24 distinct shapes (each ordered shape pair is
    // fully aligned at most three times — in the singleton era, on one seen-once sighting,
    // and once into the memo — and hit from the memo ever after), not the 160·159/2 =
    // 12720 the pair enumeration visits.
    let builder = GraphBuilder::new().window(WindowStrategy::AllPairs);
    let mut acc = GraphAccumulator::new();
    for q in &log.queries {
        builder.extend(&mut acc, q.clone());
    }
    let d = acc.distinct();
    assert!(d <= 24, "{d} distinct shapes");
    assert!(
        acc.memo().alignments() <= 3 * d * d.saturating_sub(1),
        "{} alignments for {d} shapes",
        acc.memo().alignments()
    );
    assert_eq!(acc.to_graph(), builder.build(&log.queries));
}

#[test]
fn scratch_mutations_on_cow_copies_never_perturb_mining() {
    // Mine a log, then torture every query with mutations applied to COW copies (the
    // enumerate_closure access pattern), then mine again: results must be identical.
    let queries = olap::random_walk(5, 96).queries;
    let baseline = PrecisionInterfaces::default().from_queries(queries.clone());
    for q in &queries {
        let deepest = q
            .preorder()
            .into_iter()
            .map(|(p, _)| p)
            .max_by_key(|p| p.depth())
            .expect("non-empty tree");
        let mut copy = q
            .replaced(&deepest, Node::int(123_456))
            .expect("valid path");
        copy.set_attr("scratch", true);
        if !deepest.is_root() {
            copy.remove_at(&deepest).expect("valid path");
        }
    }
    let again = PrecisionInterfaces::default().from_queries(queries);
    assert_eq!(baseline.graph, again.graph);
    assert_eq!(baseline.graph_stats, again.graph_stats);
    assert_eq!(baseline.interface.describe(), again.interface.describe());
}
