//! Property tests for the multi-tenant `SessionPool`: concurrent interleaved ingest — with
//! forced LRU eviction and replay rehydration in the loop — must be invisible in every
//! tenant's snapshot.  The contract under test is the serving layer's whole correctness
//! story: a pooled, queued, evicted-and-rehydrated session yields **byte-identical**
//! interfaces to a plain single-threaded [`Session`] fed the same statements in the same
//! order (wall-clock timings excepted).
//!
//! The pool is configured adversarially: one shard (so LRU order is global and every
//! insert contends), capacity two with four tenants (so residency churns constantly), and
//! one pushing thread per tenant with mid-stream snapshots (so rehydration races live
//! ingest).  Runs under `PI_THREADS=1` and `PI_THREADS=4` in CI like every other
//! determinism property.

use precision_interfaces::core::{GeneratedInterface, PiOptions, Session};
use precision_interfaces::server::{DurabilityOptions, EnqueueError, PoolOptions, SessionPool};
use precision_interfaces::workloads::frames::repetitive_mixed_walk;
use proptest::prelude::*;
use std::sync::Arc;

const TENANTS: usize = 4;

/// The single-threaded ground truth: one fresh session fed the tenant's statements in
/// order, snapshotted once at the end.
fn replay(statements: &[(precision_interfaces::ast::Dialect, String)]) -> GeneratedInterface {
    let mut session = Session::new(PiOptions::default());
    for (dialect, text) in statements {
        session.push_text_as(*dialect, text);
    }
    session.snapshot()
}

fn assert_identical(tenant: usize, pooled: &GeneratedInterface, solo: &GeneratedInterface) {
    assert_eq!(pooled.version, solo.version, "tenant {tenant}: version");
    assert_eq!(pooled.skipped, solo.skipped, "tenant {tenant}: skipped");
    assert_eq!(pooled.dialects, solo.dialects, "tenant {tenant}: dialects");
    assert_eq!(pooled.graph, solo.graph, "tenant {tenant}: graph");
    assert_eq!(
        pooled.graph_stats, solo.graph_stats,
        "tenant {tenant}: graph stats"
    );
    assert_eq!(
        pooled.interface.describe(),
        solo.interface.describe(),
        "tenant {tenant}: interface"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Four tenants push concurrently through a two-seat pool; every tenant's final
    /// snapshot equals its solo replay, despite arbitrary cross-tenant interleaving,
    /// queueing, eviction and rehydration in between.
    #[test]
    fn concurrent_pooled_ingest_is_byte_identical_to_solo_replay(
        seed in 0u64..1024,
        lengths in prop::collection::vec(1usize..16, TENANTS..TENANTS + 1),
        snapshot_every in 1usize..5,
        garble in prop::collection::vec(prop::bool::ANY, TENANTS..TENANTS + 1),
    ) {
        // Each tenant's stream: a Zipf-repetitive mixed SQL + frames walk on its own seed,
        // with an unparseable statement spliced in for half the tenants (the skip counter
        // must survive eviction round-trips too).
        let streams: Vec<Vec<(precision_interfaces::ast::Dialect, String)>> = (0..TENANTS)
            .map(|t| {
                let log = repetitive_mixed_walk(seed * 31 + t as u64, lengths[t], 5);
                let mut stream: Vec<_> = log
                    .dialects
                    .iter()
                    .copied()
                    .zip(log.text.iter().cloned())
                    .collect();
                if garble[t] {
                    let dialect = stream[0].0;
                    stream.insert(stream.len() / 2, (dialect, "NOT A QUERY ((".to_string()));
                }
                stream
            })
            .collect();

        let pool = SessionPool::new(PoolOptions {
            capacity: 2, // far below TENANTS: residency churns on nearly every touch
            shards: 1,   // one global LRU order, maximal contention
            queue_depth: 256,
            workers: 2,
            ..PoolOptions::default()
        });

        std::thread::scope(|scope| {
            for (t, stream) in streams.iter().enumerate() {
                let pool: &Arc<SessionPool> = &pool;
                scope.spawn(move || {
                    let user = format!("user-{t}");
                    for (i, (dialect, text)) in stream.iter().enumerate() {
                        pool.enqueue_tagged(&user, "t0", [(*dialect, text.as_str())])
                            .expect("queue_depth is far above any stream length");
                        // Mid-stream snapshots force rehydration *during* another tenant's
                        // live ingest, not just at the quiet end.
                        if (i + 1) % snapshot_every == 0 {
                            pool.snapshot(&user, "t0").expect("tenant just pushed");
                        }
                    }
                });
            }
        });

        // Final pass: every tenant's pooled snapshot vs its solo replay.  With 4 tenants
        // in 2 seats this pass alone forces evictions and rehydrations.
        for (t, stream) in streams.iter().enumerate() {
            let pooled = pool
                .snapshot(&format!("user-{t}"), "t0")
                .expect("every tenant pushed at least one statement");
            let solo = replay(stream);
            assert_identical(t, &pooled, &solo);
        }

        // The adversarial shape really did exercise the archive: four tenants cannot have
        // shared two seats without churn.
        let gauge = pool.gauge();
        prop_assert!(gauge.evictions >= 1, "expected evictions, saw none");
        prop_assert!(gauge.rehydrations >= 1, "expected rehydrations, saw none");
        pool.close();
    }
}

/// Deterministic companion to the property: a fixed script whose eviction and rehydration
/// points are known, so a regression fails with a readable trace rather than a shrunken
/// proptest case.
#[test]
fn eviction_and_rehydration_are_invisible_in_snapshots() {
    let pool = SessionPool::new(PoolOptions {
        capacity: 2,
        shards: 1,
        queue_depth: 64,
        workers: 1,
        ..PoolOptions::default()
    });
    let streams: Vec<Vec<_>> = (0..3)
        .map(|t| {
            let log = repetitive_mixed_walk(77 + t, 8, 4);
            log.dialects
                .iter()
                .copied()
                .zip(log.text.iter().cloned())
                .collect()
        })
        .collect();
    // Round-robin single-statement pushes: every third touch evicts somebody.
    for i in 0..8 {
        for (t, stream) in streams.iter().enumerate() {
            let (dialect, text): &(_, String) = &stream[i];
            pool.enqueue_tagged(&format!("user-{t}"), "t0", [(*dialect, text.as_str())])
                .expect("queue has room");
        }
    }
    for (t, stream) in streams.iter().enumerate() {
        let pooled = pool
            .snapshot(&format!("user-{t}"), "t0")
            .expect("resident or archived");
        assert_identical(t, &pooled, &replay(stream));
    }
    let gauge = pool.gauge();
    assert!(gauge.evictions >= 1);
    assert!(gauge.rehydrations >= 1);
    pool.close();
}

/// Graceful shutdown under live load: `close()` lands in the middle of concurrent pusher
/// threads, and afterwards **no statement that was acknowledged is missing** — a pool
/// reopened over the same durable directory serves, for every tenant, state byte-identical
/// to a solo replay of exactly the statements that pusher saw acknowledged.
#[test]
fn graceful_shutdown_under_load_loses_no_acked_statement() {
    let dir = std::env::temp_dir().join(format!(
        "pi-shutdown-under-load-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = PoolOptions {
        capacity: 2, // three tenants through two seats: shutdown races eviction too
        shards: 1,
        queue_depth: 1024,
        workers: 2,
        durability: Some(DurabilityOptions::new(&dir)),
        ..PoolOptions::default()
    };
    let streams: Vec<Vec<(precision_interfaces::ast::Dialect, String)>> = (0..3)
        .map(|t| {
            let log = repetitive_mixed_walk(4242 + t, 48, 6);
            log.dialects
                .iter()
                .copied()
                .zip(log.text.iter().cloned())
                .collect()
        })
        .collect();

    let pool = SessionPool::with_spill(opts.clone(), None);
    pool.wait_ready();
    // Each pusher records the exact prefix the pool acknowledged before shutdown cut it
    // off; those are the statements the durability contract covers.
    let acked: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(t, stream)| {
                let pool = &pool;
                scope.spawn(move || {
                    let user = format!("user-{t}");
                    let mut acked = 0usize;
                    for (dialect, text) in stream {
                        match pool.enqueue_tagged(&user, "t0", [(*dialect, text.as_str())]) {
                            Ok(_) => acked += 1,
                            Err(EnqueueError::ShuttingDown) => break,
                            Err(err) => panic!("unexpected enqueue error: {err}"),
                        }
                    }
                    acked
                })
            })
            .collect();
        // Let the pushers build up momentum, then pull the rug mid-stream.
        std::thread::sleep(std::time::Duration::from_millis(30));
        pool.close();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    drop(pool);

    let reopened = SessionPool::with_spill(opts, None);
    reopened.wait_ready();
    for (t, stream) in streams.iter().enumerate() {
        if acked[t] == 0 {
            continue;
        }
        let pooled = reopened
            .snapshot(&format!("user-{t}"), "t0")
            .expect("acked tenants survive the restart");
        assert_identical(t, &pooled, &replay(&stream[..acked[t]]));
    }
    reopened.close();
    let _ = std::fs::remove_dir_all(&dir);
}
