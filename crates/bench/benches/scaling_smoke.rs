//! Release-mode smoke check that parallel mining actually pays for itself.
//!
//! CI runs this after the tier-1 suite: it builds the duplicate-heavy AllPairs workload
//! serially and with the work-stealing scheduler at the box's core count, asserts the two
//! graphs are byte-identical, and then asserts the parallel mean is no slower than the
//! serial mean over interleaved samples (alternating arms so frequency drift cancels, the
//! same discipline as the paired benches in `mining_throughput`).
//!
//! On a single-core box there is no parallelism to demonstrate — auto-sized parallel mining
//! correctly falls back to the serial path there, so the timing comparison would measure
//! noise against itself.  The smoke therefore still verifies the byte-identity contract
//! with forced worker threads, but skips the speed assertion and exits 0 with a note.

use pi_graph::{GraphBuilder, IntoQueryLog, QueryLog, WindowStrategy};
use pi_workloads::olap;

const LOG_SIZE: usize = 512;
const SAMPLES: usize = 5;

/// The same Zipf-repetitive log `mining_throughput` mines: ~64 distinct shapes, so the
/// memoized distinct-pair alignment is the dominant cost the scheduler spreads out.
fn dedup_log() -> QueryLog {
    olap::repetitive_walk(3, LOG_SIZE, 64)
        .queries
        .into_query_log()
}

fn mean_build_ns(builder: &GraphBuilder, queries: &QueryLog, samples: &mut Vec<f64>) {
    let start = std::time::Instant::now();
    let graph = std::hint::black_box(builder.build(queries));
    samples.push(start.elapsed().as_nanos() as f64);
    drop(graph); // deallocation outside the timed window
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let queries = dedup_log();
    let serial = GraphBuilder::new()
        .window(WindowStrategy::AllPairs)
        .threads(1);
    let parallel = GraphBuilder::new()
        .window(WindowStrategy::AllPairs)
        .threads(cores.max(2));

    // Byte-identity holds on any box: forced worker counts spawn real stealing threads
    // even when they time-slice a single core.
    assert_eq!(
        serial.build(&queries),
        parallel.build(&queries),
        "parallel AllPairs mining diverged from serial"
    );
    println!("scaling_smoke: byte-identity ok ({cores} core(s))");

    if cores < 2 {
        println!("scaling_smoke: <2 cores, skipping the speedup assertion");
        return;
    }

    let mut serial_ns = Vec::with_capacity(SAMPLES);
    let mut parallel_ns = Vec::with_capacity(SAMPLES);
    // One warm-up build per arm, then interleaved samples.
    mean_build_ns(&serial, &queries, &mut Vec::new());
    mean_build_ns(&parallel, &queries, &mut Vec::new());
    for _ in 0..SAMPLES {
        mean_build_ns(&serial, &queries, &mut serial_ns);
        mean_build_ns(&parallel, &queries, &mut parallel_ns);
    }
    let mean = |ns: &[f64]| ns.iter().sum::<f64>() / ns.len() as f64;
    let (serial_mean, parallel_mean) = (mean(&serial_ns), mean(&parallel_ns));
    println!(
        "scaling_smoke: AllPairs serial {:.3} ms, parallel({}) {:.3} ms ({:.2}x)",
        serial_mean / 1e6,
        cores.max(2),
        parallel_mean / 1e6,
        serial_mean / parallel_mean,
    );
    assert!(
        parallel_mean <= serial_mean,
        "parallel AllPairs mining ({:.3} ms) slower than serial ({:.3} ms) on {cores} cores",
        parallel_mean / 1e6,
        serial_mean / 1e6,
    );
}
