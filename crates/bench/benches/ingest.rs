//! Trace-scale streaming ingest: sustained lines/s and bounded memory, measured honestly.
//!
//! Streams a Zipf-shaped trace (`pi_workloads::trace::zipf_trace` — ~256 distinct OLAP
//! analyses revisited Zipf-style, mixed SQL + frames, 1% garbage lines) through
//! `Session::push_stream_tagged` and records:
//!
//! * sustained throughput (lines/s) over the whole stream, plus per-decile per-line costs
//!   (min/max deciles expose whether ingest *slows down* as the session grows — it must
//!   not, that is the point of the arena-backed log);
//! * the session's `memory_footprint()` at the halfway mark and at the end.  With the
//!   shape pool fixed, the footprint must not double between the two checkpoints — growth
//!   past the warm point is per-row bookkeeping and window-bounded mined record rows (a
//!   few dozen bytes/row), never trees; the memo stays flat once the pool is warm;
//! * per-stage wall-clock (parse vs mining) from the session's own timers.
//!
//! Results go to `BENCH_ingest.json` at the workspace root.  Knobs:
//! `PI_INGEST_LINES` (default 100 000) shortens the trace for CI smoke runs;
//! `PI_INGEST_MIN_QPS` (default 100 000, `0` disables) is the sustained-throughput floor
//! asserted when the trace runs at full default length.

use pi_core::{PiOptions, Session};
use pi_graph::WindowStrategy;
use std::time::Instant;

const DEFAULT_LINES: usize = 100_000;
const SHAPES: usize = 256;
const GARBAGE_RATE: f64 = 0.01;
const SEED: u64 = 42;
const DECILES: usize = 10;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let lines = env_usize("PI_INGEST_LINES", DEFAULT_LINES).max(DECILES);
    let min_qps = env_usize("PI_INGEST_MIN_QPS", 100_000);

    let mut session = Session::new(PiOptions {
        window: WindowStrategy::sliding(16),
        ..PiOptions::default()
    });
    let mut trace = pi_workloads::trace::zipf_trace(lines, SHAPES, GARBAGE_RATE, SEED);
    let pool = trace.pool_size();

    let mut appended = 0usize;
    let mut decile_line_ns: Vec<f64> = Vec::with_capacity(DECILES);
    let mut warm_footprint = 0usize;
    let per_decile = lines / DECILES;
    let start = Instant::now();
    for decile in 0..DECILES {
        // The last decile also takes the rounding remainder.
        let take = if decile + 1 == DECILES {
            lines - per_decile * (DECILES - 1)
        } else {
            per_decile
        };
        let t = Instant::now();
        appended += session.push_stream_tagged(trace.by_ref().take(take));
        decile_line_ns.push(t.elapsed().as_nanos() as f64 / take as f64);
        if decile + 1 == DECILES / 2 {
            warm_footprint = session.memory_footprint();
        }
    }
    let total_s = start.elapsed().as_secs_f64();
    let qps = lines as f64 / total_s;
    println!(
        "  decile ns/line: {:?}",
        decile_line_ns.iter().map(|v| *v as u64).collect::<Vec<_>>()
    );
    let footprint = session.memory_footprint();
    let timings = session.timings();

    println!(
        "ingest: {lines} lines ({pool} shape pool, {:.0}% garbage) in {total_s:.2}s = {qps:.0} lines/s",
        GARBAGE_RATE * 100.0
    );
    println!(
        "  appended {appended} rows, {} distinct trees, {} skipped ({} parse errors sampled)",
        session.distinct(),
        session.skipped(),
        session.parse_errors().entries().count(),
    );
    println!(
        "  footprint: {} KiB warm (halfway) -> {} KiB final ({:.2}x)",
        warm_footprint / 1024,
        footprint / 1024,
        footprint as f64 / warm_footprint as f64
    );
    println!(
        "  stage ms: parse {:.0}, mining {:.0}",
        timings.parse_ms, timings.mining_ms
    );

    // Bounded memory: with the shape pool fixed, the session may not double its footprint
    // across the second half of the trace — growth is per-row bookkeeping plus
    // window-bounded mined record rows, not trees (and not an unbounded memo).
    assert!(
        footprint <= 2 * warm_footprint,
        "footprint doubled: {warm_footprint} -> {footprint} bytes"
    );
    // The log really collapsed to the pool: both dialects render each analysis to the same
    // tree, so distinct trees are bounded by the pool, not 2x it.
    assert!(
        session.distinct() <= pool,
        "{} distinct trees from a {pool}-shape pool",
        session.distinct()
    );
    // Ingest must not decelerate as the log grows (arena + sliding window => flat cost).
    let first = decile_line_ns[0];
    let last = decile_line_ns[DECILES - 1];
    assert!(
        last <= 3.0 * first.max(1.0),
        "ingest slowed down: {first:.0} ns/line (decile 1) -> {last:.0} ns/line (decile {DECILES})"
    );
    if lines >= DEFAULT_LINES && min_qps > 0 {
        assert!(
            qps >= min_qps as f64,
            "sustained {qps:.0} lines/s is below the {min_qps} floor"
        );
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    let previous = bench::read_bench_json(path);
    let min_ns = decile_line_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_ns = decile_line_ns.iter().cloned().fold(0.0f64, f64::max);
    let lines_out = vec![bench::BenchLine {
        id: "ingest/per_line".to_string(),
        threads: None,
        mean_ns: total_s * 1e9 / lines as f64,
        min_ns,
        max_ns,
        iterations: lines as u64,
    }];
    bench::write_bench_json(
        path,
        &[
            ("log", "\"zipf_trace\"".to_string()),
            ("lines", lines.to_string()),
            ("shape_pool", pool.to_string()),
            ("garbage_rate", format!("{GARBAGE_RATE}")),
            ("qps", format!("{qps:.0}")),
            ("distinct_trees", session.distinct().to_string()),
            ("skipped", session.skipped().to_string()),
            ("warm_footprint_bytes", warm_footprint.to_string()),
            ("final_footprint_bytes", footprint.to_string()),
            ("parse_ms", format!("{:.0}", timings.parse_ms)),
            ("mining_ms", format!("{:.0}", timings.mining_ms)),
        ],
        &lines_out,
    );
    bench::print_comparison("BENCH_ingest.json", &previous, &lines_out);
}
