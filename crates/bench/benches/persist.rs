//! Persistence A/B: cold re-mine vs warm snapshot restore, plus snapshot size honesty.
//!
//! Mines the canonical trace (`pi_workloads::trace::zipf_trace` — 100k lines, ~256
//! distinct OLAP shapes revisited Zipf-style, mixed SQL + frames, 1% garbage; same
//! workload and `sliding(16)` window as `BENCH_ingest.json`), then measures:
//!
//! * **cold**: wall-clock to re-mine the whole trace from text (what a restarted service
//!   pays without persistence);
//! * **persist**: `Session::persist` into a `Vec` (what eviction pays);
//! * **restore**: `Session::restore` from those bytes (what rehydration pays) — the
//!   checksum verify plus distinct-scale decode, asserted ≥ 50× faster than the cold
//!   re-mine at full trace length.  Both sides of the ratio are the *minimum* over
//!   repetitions: the CI box is shared, and preemption only ever inflates a wall-clock
//!   sample, so min-of-N estimates what each stage actually costs;
//! * **hydrate**: the first post-restore graph access, which scan-validates the pair
//!   table and expands it into the live store and edge list (lazy; reported separately
//!   so the restore figure stays honest about what is deferred);
//! * **size**: the snapshot against the *equivalent fully-deduped payload* — every
//!   distinct tree, string and change list serialized once (measured by persisting a
//!   session holding exactly one occurrence of each shape) plus the irreducible per-row
//!   class id and the per-pair endpoints any format must keep.  The snapshot must land
//!   within 2× of that floor: size scales with distinct state plus a few bytes per mined
//!   pair, never with raw text length.
//!
//! Identity is asserted structurally at full scale (re-persist bytes, graph, stats,
//! version); widget/`describe()` identity is pinned by the persistence test suite and the
//! `persist_restore` example at 10k scale, where the interface mapper's cost doesn't
//! dwarf the persistence path being measured.
//!
//! Results go to `BENCH_persist.json` at the workspace root.  Knobs: `PI_PERSIST_LINES`
//! (default 100 000) shortens the trace for CI smoke runs; the 50× floor is only asserted
//! at full default length (short smoke traces amortise fixed costs differently).

use bench::BenchLine;
use pi_core::{PiOptions, Session};
use pi_graph::WindowStrategy;
use std::time::Instant;

const DEFAULT_LINES: usize = 100_000;
const SHAPES: usize = 256;
const GARBAGE_RATE: f64 = 0.01;
const SEED: u64 = 42;
/// Restore must beat cold re-mine by at least this factor at full trace length.
const MIN_SPEEDUP: f64 = 50.0;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn options() -> PiOptions {
    PiOptions {
        window: WindowStrategy::sliding(16),
        ..PiOptions::default()
    }
}

fn mine(lines: usize) -> Session {
    let mut session = Session::new(options());
    session.push_stream_tagged(pi_workloads::trace::zipf_trace(
        lines,
        SHAPES,
        GARBAGE_RATE,
        SEED,
    ));
    session
}

/// LEB128 length of `v` — the codec's per-item varint cost, reused to price the floor.
fn varint_len(mut v: u64) -> usize {
    let mut len = 1;
    while v >= 0x80 {
        v >>= 7;
        len += 1;
    }
    len
}

fn main() {
    let lines = env_usize("PI_PERSIST_LINES", DEFAULT_LINES).max(64);

    // Every stage is timed per repetition and the A/B ratio compares *minima*: the bench
    // box is shared, and scheduler preemption only ever inflates a wall-clock sample, so
    // min-of-N is the faithful estimator of what each stage actually costs.
    let timed = |samples: &[f64]| {
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        (mean, min, max)
    };

    // Cold: mine the full trace from text, twice (a ~second each; two samples are enough
    // to shed a one-off preemption spike).
    let mut cold_samples = Vec::new();
    let mut live = mine(lines);
    for _ in 0..2 {
        let start = Instant::now();
        live = mine(lines);
        cold_samples.push(start.elapsed().as_nanos() as f64);
    }
    let (cold_ns, cold_min_ns, cold_max_ns) = timed(&cold_samples);

    // Persist, a few times for stable numbers.
    let persist_reps = 5;
    let mut persist_samples = Vec::new();
    let mut bytes = Vec::new();
    for _ in 0..persist_reps {
        let start = Instant::now();
        bytes = live.persist_to_vec().expect("persist");
        persist_samples.push(start.elapsed().as_nanos() as f64);
    }
    let (persist_ns, persist_min_ns, persist_max_ns) = timed(&persist_samples);

    // Restore, several times (each is milliseconds); keep the last for the identity
    // checks.  Restore decodes all distinct-scale state and checksums the frame; the
    // store materializes on first graph access, timed separately below.
    let restore_reps = 9;
    let mut restore_samples = Vec::new();
    let mut restored = Session::restore_with(&mut bytes.as_slice(), options()).expect("restore");
    for _ in 1..restore_reps {
        let start = Instant::now();
        restored = Session::restore_with(&mut bytes.as_slice(), options()).expect("restore");
        restore_samples.push(start.elapsed().as_nanos() as f64);
    }
    let (restore_ns, restore_min_ns, restore_max_ns) = timed(&restore_samples);

    // Hydrate: expanding the validated pair table into the live store and edge list (what
    // the first post-restore graph access pays implicitly).
    let hydrate_start = Instant::now();
    restored.hydrate();
    let hydrate_ns = hydrate_start.elapsed().as_nanos() as f64;
    let restored_stats = restored.graph_stats();

    // Byte identity: the restored session re-persists to the same bytes and carries the
    // same graph, stats and version as the live one.
    assert_eq!(
        restored.persist_to_vec().expect("re-persist"),
        bytes,
        "restore must be lossless"
    );
    assert_eq!(restored.version(), live.version());
    assert_eq!(restored_stats, live.graph_stats());
    assert_eq!(restored.graph(), live.graph());

    let speedup = cold_min_ns / restore_min_ns;
    if lines >= DEFAULT_LINES {
        assert!(
            speedup >= MIN_SPEEDUP,
            "restore must be ≥{MIN_SPEEDUP}× faster than cold re-mine, got {speedup:.1}× \
             (cold {:.1} ms vs restore {:.3} ms, min over reps)",
            cold_min_ns / 1e6,
            restore_min_ns / 1e6
        );
    }

    // Size honesty: the equivalent fully-deduped payload.  A distinct-only session holds
    // one occurrence of every shape, so its snapshot prices each tree, interned string and
    // change list exactly once; on top of that, any format must keep one class id per row
    // and the endpoint pair per mined edge (~3 bytes delta-encoded).
    let stats = live.graph_stats();
    let distinct_bytes = {
        let mut distinct = Session::new(options());
        let mut seen = std::collections::HashSet::new();
        for (dialect, text) in pi_workloads::trace::zipf_trace(lines, SHAPES, GARBAGE_RATE, SEED) {
            if seen.insert(text.clone()) {
                distinct.push_text_as(dialect, &text);
            }
        }
        distinct.persist_to_vec().expect("persist distinct").len()
    };
    let row_floor: usize = (0..live.len())
        .map(|_| varint_len(live.distinct() as u64))
        .sum();
    let edge_floor = stats.edges * 3;
    let deduped_floor = distinct_bytes + row_floor + edge_floor;
    let size_ratio = bytes.len() as f64 / deduped_floor as f64;
    assert!(
        size_ratio <= 2.0,
        "snapshot must stay within 2× of the fully-deduped payload: \
         {} bytes vs floor {deduped_floor} ({size_ratio:.2}×)",
        bytes.len()
    );

    println!(
        "persist: {lines} lines ({} distinct trees, {} records, {} edges)",
        live.distinct(),
        stats.diff_records,
        stats.edges
    );
    println!(
        "  cold re-mine {:.1} ms | persist {:.2} ms | restore {:.2} ms ({speedup:.0}× vs cold, \
         min over reps) | first-access hydrate {:.2} ms",
        cold_min_ns / 1e6,
        persist_min_ns / 1e6,
        restore_min_ns / 1e6,
        hydrate_ns / 1e6
    );
    println!(
        "  snapshot {} bytes = {size_ratio:.2}× the fully-deduped floor ({deduped_floor} bytes; \
         distinct-only payload {distinct_bytes})",
        bytes.len()
    );

    let line = |id: &str, (mean_ns, min_ns, max_ns): (f64, f64, f64), iterations: u64| BenchLine {
        id: id.to_string(),
        threads: None,
        mean_ns,
        min_ns,
        max_ns,
        iterations,
    };
    let scalar = |v: f64| (v, v, v);
    let lines_out = vec![
        line("persist/cold_mine", (cold_ns, cold_min_ns, cold_max_ns), 2),
        line(
            "persist/persist",
            (persist_ns, persist_min_ns, persist_max_ns),
            persist_reps as u64,
        ),
        line(
            "persist/restore",
            (restore_ns, restore_min_ns, restore_max_ns),
            restore_reps as u64 - 1,
        ),
        line("persist/hydrate", scalar(hydrate_ns), 1),
        line("persist/snapshot_bytes", scalar(bytes.len() as f64), 1),
        line(
            "persist/deduped_floor_bytes",
            scalar(deduped_floor as f64),
            1,
        ),
        line("persist/restore_speedup_x", scalar(speedup), 1),
    ];

    // crates/bench -> workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_persist.json");
    let previous = bench::read_bench_json(path);
    bench::write_bench_json(
        path,
        &[
            ("workload", "\"zipf_trace\"".to_string()),
            ("lines", lines.to_string()),
            ("shapes", SHAPES.to_string()),
            ("distinct_trees", live.distinct().to_string()),
            ("snapshot_bytes", bytes.len().to_string()),
            ("restore_speedup_x", format!("{speedup:.1}")),
        ],
        &lines_out,
    );
    bench::print_comparison("BENCH_persist.json", &previous, &lines_out);
}
