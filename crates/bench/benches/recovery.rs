//! Durability cost and recovery time for the journaled serving pool.
//!
//! Three measurements, written to `BENCH_recovery.json` at the workspace root:
//!
//! 1. **Baseline sustained ingest** — a no-journal pool drains a Zipf-repetitive
//!    multi-tenant trace end to end (enqueue + background mining), statements/s.
//! 2. **Journaled sustained ingest** — the same trace through a pool with the write-ahead
//!    journal on (fsync group commit before every acknowledgement, periodic
//!    checkpoints).  The run **asserts** the journaled throughput stays at or above
//!    `PI_RECOVERY_MIN_RATIO` (default 0.7) of the baseline — the acceptance floor for
//!    the durability tax.
//! 3. **Recovery wall time** — the pool checkpoints at an idle point (as a long-lived
//!    server does once its interval elapses), ingests a fresh un-checkpointed tail, and
//!    is killed (`simulate_crash`: workers abandoned mid-stride, journal truncated to
//!    its fsync watermark — exactly what `kill -9` leaves).  A fresh pool opens over the
//!    directory and the time from open to readiness (snapshot restore + journal tail
//!    replay) is recorded.  The tail, not the trace length, bounds recovery: that is the
//!    checkpoint contract.
//!
//! `PI_RECOVERY_LINES` scales the trace (default 100 000 statements; CI smoke runs use a
//! few thousand), `PI_RECOVERY_REPEATS` the per-arm repeat count whose median is
//! compared (default 2), and `PI_RECOVERY_MIN_RATIO` the enforced floor.  Correctness is
//! spot-checked before any number is published: after recovery a sampled tenant must
//! serve every statement it ingested.

use bench::BenchLine;
use pi_server::{DurabilityOptions, PoolOptions, SessionPool};
use pi_workloads::frames;
use std::sync::Arc;
use std::time::Instant;

/// Concurrent tenants sharing the pool.
const TENANTS: usize = 16;
/// Statements per `enqueue_tagged` batch — the chunk size a trace-upload client would
/// POST per request.  One journal record (and one group-committed fsync window) per
/// batch, so this is the unit the durability tax is amortised over.
const BATCH: usize = 4096;
/// Distinct query shapes per tenant's Zipf-repetitive walk.
const DISTINCT: usize = 48;
/// Per-tenant statements ingested *after* the idle checkpoint and before the kill — the
/// un-checkpointed journal tail that crash recovery has to replay.
const TAIL: usize = 512;
/// Concurrent client connections pushing the trace (each multiplexes TENANTS / CLIENTS
/// tenants, like the serving bench's connection model).  Kept well below TENANTS: a
/// thread per tenant oversubscribes small boxes so badly that every group-commit hand-off
/// eats a scheduler delay, which would measure the host's run queue, not the journal.
const CLIENTS: usize = 4;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Median wall time of a run set (even count: lower middle, the conservative pick).
fn median(runs: &mut [f64]) -> f64 {
    runs.sort_by(f64::total_cmp);
    runs[(runs.len() - 1) / 2]
}

fn pool_options(durability: Option<DurabilityOptions>, per_tenant: usize) -> PoolOptions {
    PoolOptions {
        capacity: TENANTS * 2,
        // Few shards on purpose: group commit coalesces concurrent appends *per shard
        // journal*, so tenants per shard is the knob that amortises fsyncs.
        shards: 2,
        queue_depth: per_tenant + BATCH, // the run never sheds; backpressure is not under test
        workers: 2,
        durability,
        ..PoolOptions::default()
    }
}

/// Pushes the whole trace — CLIENTS concurrent connections, each multiplexing its share
/// of tenants — and waits for the background workers to drain it.  Returns the sustained
/// wall time (acknowledge + mine, the client-visible pipeline).  Concurrency matters for
/// the journaled arm: group commit only amortises the fsync across appends that arrive
/// while a sync is in flight.
fn ingest(pool: &Arc<SessionPool>, streams: &[Vec<(pi_ast::Dialect, String)>]) -> f64 {
    let per_tenant = streams[0].len();
    let rounds = per_tenant.div_ceil(BATCH);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                // Round-robin over this client's tenants, one batch each per round —
                // interleaved ingest, so every tenant is live at once.
                for round in 0..rounds {
                    for (t, stream) in streams.iter().enumerate() {
                        if t % CLIENTS != c {
                            continue;
                        }
                        let lo = round * BATCH;
                        let hi = (lo + BATCH).min(stream.len());
                        pool.enqueue_tagged(
                            &format!("user-{t}"),
                            "t0",
                            stream[lo..hi].iter().map(|(d, s)| (*d, s.as_str())),
                        )
                        .expect("queue sized for the whole trace");
                    }
                }
            });
        }
    });
    while pool.gauge().queued > 0 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    start.elapsed().as_secs_f64()
}

fn assert_tenant_complete(pool: &Arc<SessionPool>, per_tenant: usize, label: &str) {
    let snap = pool.snapshot("user-0", "t0").expect("tenant 0 exists");
    assert_eq!(
        snap.version as usize, per_tenant,
        "{label}: tenant 0 must serve every ingested statement"
    );
}

fn main() {
    let lines = env_usize("PI_RECOVERY_LINES", 100_000);
    let min_ratio = env_f64("PI_RECOVERY_MIN_RATIO", 0.7);
    let repeats = env_usize("PI_RECOVERY_REPEATS", 2).max(1);
    let per_tenant = lines.div_ceil(TENANTS);
    let statements = per_tenant * TENANTS;
    let streams: Vec<Vec<(pi_ast::Dialect, String)>> = (0..TENANTS)
        .map(|t| {
            let log = frames::repetitive_mixed_walk(9000 + t as u64, per_tenant, DISTINCT);
            log.dialects
                .iter()
                .copied()
                .zip(log.text.iter().cloned())
                .collect()
        })
        .collect();

    // Phase 1: no-journal baseline, median of `repeats` runs.  Single runs on a shared
    // (often single-core) box swing by double digits; the median resists outliers in
    // both directions, where a min would hand whichever arm gets the luckier scheduler
    // draw an unearned win.
    let mut baseline_runs = Vec::new();
    for _ in 0..repeats {
        let pool = SessionPool::new(pool_options(None, per_tenant));
        let s = ingest(&pool, &streams);
        assert_tenant_complete(&pool, per_tenant, "baseline");
        pool.close();
        baseline_runs.push(s);
    }
    let baseline_s = median(&mut baseline_runs);
    let baseline_qps = statements as f64 / baseline_s;

    // Phase 2: journaled ingest, a fresh scratch directory per repeat so no run replays
    // its predecessor's state.  The checkpoint interval is the production default shape:
    // large enough that its cost amortises to noise per statement (a checkpoint is ~tens
    // of ms of snapshot serialisation; at a 16 MiB interval that is well under 0.1 µs per
    // ingested statement), small enough that recovery replay stays bounded.  The last
    // repeat's pool stays open — it is the one phase 3 checkpoints and then kills.
    let mut journaled_runs = Vec::new();
    let mut live = None;
    for rep in 0..repeats {
        let dir =
            std::env::temp_dir().join(format!("pi-bench-recovery-{}-{rep}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut durability = DurabilityOptions::new(&dir);
        durability.checkpoint_bytes = 16 * 1024 * 1024;
        // No artificial commit window: with every client thread blocked on the same sync
        // lock, the leader's fsync already covers everyone who appended while it slept in
        // line (lock-convoy batching); a window would only add latency per sync here.
        durability.group_window = std::time::Duration::ZERO;
        let pool =
            SessionPool::with_spill(pool_options(Some(durability.clone()), per_tenant), None);
        pool.wait_ready();
        let s = ingest(&pool, &streams);
        assert_tenant_complete(&pool, per_tenant, "journaled");
        journaled_runs.push(s);
        if rep + 1 == repeats {
            live = Some((pool, dir, durability));
        } else {
            pool.close();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let (journaled_pool, dir, durability) = live.expect("repeats >= 1");
    let journaled_s = median(&mut journaled_runs);
    let journaled_qps = statements as f64 / journaled_s;
    let ratio = journaled_qps / baseline_qps;

    // Phase 3: checkpoint at an idle point (what a long-lived server does on its own once
    // the interval elapses), ingest a fresh un-checkpointed tail on top, then kill.  The
    // crash therefore lands exactly where ARIES puts it: snapshots cover everything up to
    // the checkpoint, and recovery = restore every snapshot + replay only the journaled
    // tail.  Recovery time is bounded by the checkpoint interval, not the trace length.
    assert!(journaled_pool.checkpoint(), "idle checkpoint completes");
    let tails: Vec<Vec<(pi_ast::Dialect, String)>> = (0..TENANTS)
        .map(|t| {
            let log = frames::repetitive_mixed_walk(7000 + t as u64, TAIL, DISTINCT);
            log.dialects
                .iter()
                .copied()
                .zip(log.text.iter().cloned())
                .collect()
        })
        .collect();
    ingest(&journaled_pool, &tails);
    journaled_pool
        .simulate_crash()
        .expect("journal kill switch");
    let ingest_gauge = journaled_pool.gauge();
    let journal_stats = ingest_gauge.journal.clone().expect("journaled pool");
    drop(journaled_pool);
    let recovery_started = Instant::now();
    let recovered_pool = SessionPool::with_spill(pool_options(Some(durability), per_tenant), None);
    recovered_pool.wait_ready();
    let recovery_s = recovery_started.elapsed().as_secs_f64();
    assert_tenant_complete(&recovered_pool, per_tenant + TAIL, "recovered");
    let recovery_gauge = recovered_pool.gauge();
    recovered_pool.close();
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "recovery: {statements} statements across {TENANTS} tenants (batch {BATCH})\n\
         \x20 baseline  {baseline_qps:.0} statements/s ({baseline_s:.2}s)\n\
         \x20 journaled {journaled_qps:.0} statements/s ({journaled_s:.2}s, ratio {ratio:.3}, \
         {} fsyncs, {} checkpoints)\n\
         \x20 recovery  {:.1} ms ({} statements replayed, {} tenants)",
        journal_stats.syncs,
        ingest_gauge.checkpoints,
        recovery_s * 1e3,
        recovery_gauge.recovered_statements,
        recovery_gauge.recovered_tenants,
    );
    assert!(
        ratio >= min_ratio,
        "journaled ingest fell to {ratio:.3}x of baseline (floor {min_ratio}): \
         {journaled_qps:.0} vs {baseline_qps:.0} statements/s"
    );

    let lines_out = vec![
        BenchLine {
            id: "recovery/baseline_ingest_per_statement".into(),
            threads: None,
            mean_ns: baseline_s * 1e9 / statements as f64,
            min_ns: 0.0,
            max_ns: 0.0,
            iterations: statements as u64,
        },
        BenchLine {
            id: "recovery/journaled_ingest_per_statement".into(),
            threads: None,
            mean_ns: journaled_s * 1e9 / statements as f64,
            min_ns: 0.0,
            max_ns: 0.0,
            iterations: statements as u64,
        },
        BenchLine {
            id: "recovery/restart_to_ready".into(),
            threads: None,
            mean_ns: recovery_s * 1e9,
            min_ns: 0.0,
            max_ns: 0.0,
            iterations: recovery_gauge.recovered_statements.max(1),
        },
    ];

    // crates/bench -> workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    let previous = bench::read_bench_json(path);
    bench::write_bench_json(
        path,
        &[
            ("workload", "\"repetitive_mixed_walk\"".to_string()),
            ("statements", statements.to_string()),
            ("tenants", TENANTS.to_string()),
            ("batch", BATCH.to_string()),
            ("baseline_qps", format!("{baseline_qps:.0}")),
            ("journaled_qps", format!("{journaled_qps:.0}")),
            ("journal_throughput_ratio", format!("{ratio:.3}")),
            (
                "recovered_statements",
                recovery_gauge.recovered_statements.to_string(),
            ),
            ("checkpoints", ingest_gauge.checkpoints.to_string()),
        ],
        &lines_out,
    );
    bench::print_comparison("BENCH_recovery.json", &previous, &lines_out);
}
