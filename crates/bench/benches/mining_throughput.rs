//! Interaction-mining throughput over a 512-query synthetic OLAP log.
//!
//! This is the headline perf number for the AST-core refactor (memoized structural hashes,
//! interned attribute names, `Arc`-shared diff subtrees): it measures the mining stage alone —
//! pairwise tree alignment plus graph construction, the cost the paper's Figures 11/12 are
//! about — serial and parallel, and the full pipeline for context, plus the amortised cost
//! of appending a single query to a streaming `Session` (which must stay O(w), independent
//! of the session length).  Results are written to `BENCH_mining.json` at the workspace
//! root so successive PRs can track the trajectory.

use criterion::{criterion_group, BenchmarkId, Criterion};
use pi_ast::Frontend as _;
use pi_core::{PiOptions, PrecisionInterfaces, Session};
use pi_frames::FramesFrontend;
use pi_graph::{GraphBuilder, IntoQueryLog, QueryLog, WindowStrategy};
use pi_sql::SqlFrontend;
use pi_workloads::{frames, olap};
use std::time::Duration;

const LOG_SIZE: usize = 512;

fn olap_log() -> QueryLog {
    olap::random_walk(3, LOG_SIZE).queries.into_query_log()
}

fn bench_mining_throughput(c: &mut Criterion) {
    let queries = olap_log();
    let mut group = c.benchmark_group("mining_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    for (label, parallel) in [("serial", false), ("parallel", true)] {
        group.bench_with_input(
            BenchmarkId::new("mine_sliding16", label),
            &parallel,
            |b, &parallel| {
                let builder = GraphBuilder::new()
                    .window(WindowStrategy::Sliding(16))
                    .parallel(parallel);
                b.iter(|| builder.build(&queries));
            },
        );
    }

    group.bench_function("mine_all_pairs_serial", |b| {
        let builder = GraphBuilder::new().window(WindowStrategy::AllPairs);
        b.iter(|| builder.build(&queries));
    });

    group.bench_function("pipeline_default", |b| {
        let pipeline = PrecisionInterfaces::new(PiOptions::default());
        b.iter(|| pipeline.from_queries(&queries));
    });

    // Front-end cost, tracked alongside mining cost: parse the full 512-query walk from
    // text in each dialect, and render it back out.  Both text logs spell the SAME walk —
    // `parse_frames_512` and `parse_sql_512` therefore price the two grammars on identical
    // trees, and `render_512` prices the UI-facing direction the HTML compiler takes for
    // every widget option.
    let sql_texts = olap::random_walk(3, LOG_SIZE).text;
    group.bench_function("parse_sql_512", |b| {
        b.iter(|| {
            sql_texts
                .iter()
                .map(|text| SqlFrontend.parse_one(text).unwrap())
                .collect::<Vec<_>>()
                .len()
        });
    });
    let frames_texts = frames::dataframe_walk(3, LOG_SIZE).text;
    group.bench_function("parse_frames_512", |b| {
        b.iter(|| {
            frames_texts
                .iter()
                .map(|text| FramesFrontend.parse_one(text).unwrap())
                .collect::<Vec<_>>()
                .len()
        });
    });
    group.bench_function("render_512", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| SqlFrontend.render(q).len())
                .sum::<usize>()
        });
    });

    // Path mutation must copy only the root→path spine (COW subtrees), not the whole tree:
    // replace a leaf at the deepest path of the log's largest query.  The pre-COW numbers
    // (when `replaced` deep-cloned the entire query) are recorded in README.md.  The ratio
    // here is bounded by the query's size (~37 nodes of clone work saved over an irreducible
    // refcounted spine); the `_nested` variant below shows the asymptotic O(depth) vs
    // O(tree) separation on a deep tree.
    let largest = queries
        .iter()
        .max_by_key(|q| q.size())
        .expect("log is non-empty")
        .clone();
    group.bench_function("replace_at_depth", |b| {
        let deepest = largest
            .preorder()
            .into_iter()
            .map(|(p, _)| p)
            .max_by_key(pi_ast::Path::depth)
            .expect("tree has nodes");
        let replacement = pi_ast::Node::int(42);
        b.iter(|| largest.replaced(&deepest, replacement.clone()).unwrap());
    });

    // The same at-depth edit on a deep tree: the log's largest query nested under itself six
    // times as subqueries (the composite shape the `micro` hash benches use, ~2400 nodes).
    // Pre-COW this paid a full-tree deep clone per edit; COW pays the spine only.
    group.bench_function("replace_at_depth_nested", |b| {
        let mut big = largest.clone();
        for _ in 0..6 {
            let wrapped = big.clone();
            big = pi_ast::builder::SelectBuilder::new()
                .project_star()
                .from_subquery(wrapped.clone())
                .from_subquery(wrapped)
                .build();
        }
        let deepest = big
            .preorder()
            .into_iter()
            .map(|(p, _)| p)
            .max_by_key(pi_ast::Path::depth)
            .expect("tree has nodes");
        let replacement = pi_ast::Node::int(42);
        b.iter(|| big.replaced(&deepest, replacement.clone()).unwrap());
    });

    // Closure enumeration is a tight loop of clone + place() edits over whole queries, so it
    // tracks the cost of tree mutation directly.
    group.bench_function("enumerate_closure_512", |b| {
        let generated = PrecisionInterfaces::default().from_queries(&queries);
        b.iter(|| generated.interface.enumerate_closure(2048));
    });

    // Amortised cost of appending ONE query to an already-512-query streaming session: the
    // sliding window admits only the previous 15 partners, so each append runs O(w)
    // alignments however long the session grows — compare against `mine_sliding16`, which
    // pays the full O(n·w) rebuild.  (The session keeps growing across iterations; that is
    // the point: per-append cost must stay flat.)
    group.bench_function("session_append_sliding16", |b| {
        let mut session = Session::new(PiOptions {
            window: WindowStrategy::sliding(16),
            ..PiOptions::default()
        });
        session.push_all(queries.iter().cloned());
        let mut next = 0usize;
        b.iter(|| {
            let idx = session.push(queries[next % LOG_SIZE].clone());
            next += 1;
            idx
        });
    });

    // The live-dashboard refresh loop: push one query AND take a snapshot.  Unlike the pure
    // append above, each refresh freezes the log (O(n) node clones) and re-runs the mapper,
    // so this is deliberately *not* O(w) — it is the number to budget against when choosing
    // a snapshot cadence.
    group.bench_function("session_refresh_sliding16", |b| {
        let mut session = Session::new(PiOptions {
            window: WindowStrategy::sliding(16),
            ..PiOptions::default()
        });
        session.push_all(queries.iter().cloned());
        let mut next = 0usize;
        b.iter(|| {
            session.push(queries[next % LOG_SIZE].clone());
            next += 1;
            session.snapshot().version
        });
    });

    group.finish();
}

/// Sanity-checks the determinism contracts before publishing numbers: parallel and serial
/// builds of the same log must be identical, and a streaming session's graph must be
/// identical to the batch build of the same log.
fn assert_determinism_contracts(queries: &QueryLog) {
    let serial = GraphBuilder::new()
        .window(WindowStrategy::Sliding(16))
        .parallel(false)
        .build(queries);
    let parallel = GraphBuilder::new()
        .window(WindowStrategy::Sliding(16))
        .parallel(true)
        .build(queries);
    let mut session = Session::new(PiOptions {
        window: WindowStrategy::sliding(16),
        ..PiOptions::default()
    });
    session.push_all(queries.iter().cloned());
    let streamed = session.graph();
    assert_eq!(serial, parallel);
    assert_eq!(serial, streamed);
}

fn export_json(c: &Criterion) {
    let mut out = String::from("{\n  \"log\": \"olap_random_walk\",\n");
    out.push_str(&format!("  \"queries\": {LOG_SIZE},\n  \"benches\": [\n"));
    let measurements = c.measurements();
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_ns\": {:.0}, \"min_ns\": {:.0}, \"max_ns\": {:.0}, \"iterations\": {}}}{}\n",
            m.id,
            m.mean_ns,
            m.min_ns,
            m.max_ns,
            m.iterations,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    // crates/bench -> workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mining.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_mining_throughput);

fn main() {
    assert_determinism_contracts(&olap_log());
    let mut c = Criterion::new();
    benches(&mut c);
    export_json(&c);
}
