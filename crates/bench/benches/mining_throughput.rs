//! Interaction-mining throughput over a 512-query synthetic OLAP log.
//!
//! This is the headline perf number for the AST-core refactor (memoized structural hashes,
//! interned attribute names, `Arc`-shared diff subtrees): it measures the mining stage alone —
//! pairwise tree alignment plus graph construction, the cost the paper's Figures 11/12 are
//! about — serial and parallel, and the full pipeline for context.  Results are written to
//! `BENCH_mining.json` at the workspace root so successive PRs can track the trajectory.

use criterion::{criterion_group, BenchmarkId, Criterion};
use pi_core::{PiOptions, PrecisionInterfaces};
use pi_graph::{GraphBuilder, IntoQueryLog, QueryLog, WindowStrategy};
use pi_workloads::olap;
use std::time::Duration;

const LOG_SIZE: usize = 512;

fn olap_log() -> QueryLog {
    olap::random_walk(3, LOG_SIZE).queries.into_query_log()
}

fn bench_mining_throughput(c: &mut Criterion) {
    let queries = olap_log();
    let mut group = c.benchmark_group("mining_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    for (label, parallel) in [("serial", false), ("parallel", true)] {
        group.bench_with_input(
            BenchmarkId::new("mine_sliding16", label),
            &parallel,
            |b, &parallel| {
                let builder = GraphBuilder::new()
                    .window(WindowStrategy::Sliding(16))
                    .parallel(parallel);
                b.iter(|| builder.build(&queries));
            },
        );
    }

    group.bench_function("mine_all_pairs_serial", |b| {
        let builder = GraphBuilder::new().window(WindowStrategy::AllPairs);
        b.iter(|| builder.build(&queries));
    });

    group.bench_function("pipeline_default", |b| {
        let pipeline = PrecisionInterfaces::new(PiOptions::default());
        b.iter(|| pipeline.from_queries(&queries));
    });

    group.finish();
}

/// Sanity-checks the determinism contract before publishing numbers: parallel and serial
/// builds of the same log must produce identical edges and diff stores.
fn assert_parallel_matches_serial(queries: &QueryLog) {
    let serial = GraphBuilder::new()
        .window(WindowStrategy::Sliding(16))
        .parallel(false)
        .build(queries);
    let parallel = GraphBuilder::new()
        .window(WindowStrategy::Sliding(16))
        .parallel(true)
        .build(queries);
    assert_eq!(serial.edges.len(), parallel.edges.len());
    assert_eq!(serial.store.len(), parallel.store.len());
    for (a, b) in serial.edges.iter().zip(parallel.edges.iter()) {
        assert_eq!((a.from, a.to, &a.diffs), (b.from, b.to, &b.diffs));
    }
    for ((ida, ra), (idb, rb)) in serial.store.iter().zip(parallel.store.iter()) {
        assert_eq!(ida, idb);
        assert_eq!(ra, rb);
    }
}

fn export_json(c: &Criterion) {
    let mut out = String::from("{\n  \"log\": \"olap_random_walk\",\n");
    out.push_str(&format!("  \"queries\": {LOG_SIZE},\n  \"benches\": [\n"));
    let measurements = c.measurements();
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_ns\": {:.0}, \"min_ns\": {:.0}, \"max_ns\": {:.0}, \"iterations\": {}}}{}\n",
            m.id,
            m.mean_ns,
            m.min_ns,
            m.max_ns,
            m.iterations,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    // crates/bench -> workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mining.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_mining_throughput);

fn main() {
    assert_parallel_matches_serial(&olap_log());
    let mut c = Criterion::new();
    benches(&mut c);
    export_json(&c);
}
