//! Interaction-mining throughput over a 512-query synthetic OLAP log.
//!
//! This is the headline perf number for the AST-core refactor (memoized structural hashes,
//! interned attribute names, `Arc`-shared diff subtrees): it measures the mining stage alone —
//! pairwise tree alignment plus graph construction, the cost the paper's Figures 11/12 are
//! about — serial and parallel, and the full pipeline for context, plus the amortised cost
//! of appending a single query to a streaming `Session` (which must stay O(w), independent
//! of the session length).  Results are written to `BENCH_mining.json` at the workspace
//! root so successive PRs can track the trajectory.

use criterion::{criterion_group, Criterion};
use pi_ast::Frontend as _;
use pi_core::{PiOptions, PrecisionInterfaces, Session};
use pi_frames::FramesFrontend;
use pi_graph::{GraphBuilder, IntoQueryLog, QueryLog, WindowStrategy};
use pi_sql::SqlFrontend;
use pi_workloads::{frames, olap};
use std::time::Duration;

const LOG_SIZE: usize = 512;

fn olap_log() -> QueryLog {
    olap::random_walk(3, LOG_SIZE).queries.into_query_log()
}

/// The duplicate-heavy 512-query log (~64 distinct shapes revisited Zipf-style) the dedup
/// benches mine.
fn dedup_log() -> QueryLog {
    olap::repetitive_walk(3, LOG_SIZE, 64)
        .queries
        .into_query_log()
}

/// A fully-distinct 512-query adversarial log: walk states deduplicated by structural hash,
/// drawn from as many seeds as it takes — the memo can never hit on it.
fn distinct_log() -> QueryLog {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(LOG_SIZE);
    'seeds: for seed in 100.. {
        for q in olap::random_walk(seed, LOG_SIZE).queries {
            if seen.insert(q.structural_hash()) {
                out.push(q);
                if out.len() == LOG_SIZE {
                    break 'seeds;
                }
            }
        }
    }
    out.into_query_log()
}

fn bench_mining_throughput(c: &mut Criterion) {
    // The sliding16 serial-vs-parallel A/B runs as a paired comparison (samples alternate
    // between arms) rather than two sequential group benches: the true difference between
    // the arms is *zero* on a single-core box — auto-sizing resolves `parallel(true)` to
    // one worker, so both arms execute the identical serial path — and this box's frequency
    // drift between back-to-back arms is far larger than that.
    paired_sliding16(c);

    let queries = olap_log();
    let mut group = c.benchmark_group("mining_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    group.bench_function("mine_all_pairs_serial", |b| {
        let builder = GraphBuilder::new().window(WindowStrategy::AllPairs);
        b.iter(|| builder.build(&queries));
    });

    group.bench_function("pipeline_default", |b| {
        let pipeline = PrecisionInterfaces::new(PiOptions::default());
        b.iter(|| pipeline.from_queries(&queries));
    });

    // Front-end cost, tracked alongside mining cost: parse the full 512-query walk from
    // text in each dialect, and render it back out.  Both text logs spell the SAME walk —
    // `parse_frames_512` and `parse_sql_512` therefore price the two grammars on identical
    // trees, and `render_512` prices the UI-facing direction the HTML compiler takes for
    // every widget option.
    let sql_texts = olap::random_walk(3, LOG_SIZE).text;
    group.bench_function("parse_sql_512", |b| {
        b.iter(|| {
            sql_texts
                .iter()
                .map(|text| SqlFrontend.parse_one(text).unwrap())
                .collect::<Vec<_>>()
                .len()
        });
    });
    let frames_texts = frames::dataframe_walk(3, LOG_SIZE).text;
    group.bench_function("parse_frames_512", |b| {
        b.iter(|| {
            frames_texts
                .iter()
                .map(|text| FramesFrontend.parse_one(text).unwrap())
                .collect::<Vec<_>>()
                .len()
        });
    });
    group.bench_function("render_512", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| SqlFrontend.render(q).len())
                .sum::<usize>()
        });
    });

    // Path mutation must copy only the root→path spine (COW subtrees), not the whole tree:
    // replace a leaf at the deepest path of the log's largest query.  The pre-COW numbers
    // (when `replaced` deep-cloned the entire query) are recorded in README.md.  The ratio
    // here is bounded by the query's size (~37 nodes of clone work saved over an irreducible
    // refcounted spine); the `_nested` variant below shows the asymptotic O(depth) vs
    // O(tree) separation on a deep tree.
    let largest = queries
        .iter()
        .max_by_key(|q| q.size())
        .expect("log is non-empty")
        .clone();
    group.bench_function("replace_at_depth", |b| {
        let deepest = largest
            .preorder()
            .into_iter()
            .map(|(p, _)| p)
            .max_by_key(pi_ast::Path::depth)
            .expect("tree has nodes");
        let replacement = pi_ast::Node::int(42);
        b.iter(|| largest.replaced(&deepest, replacement.clone()).unwrap());
    });

    // The same at-depth edit on a deep tree: the log's largest query nested under itself six
    // times as subqueries (the composite shape the `micro` hash benches use, ~2400 nodes).
    // Pre-COW this paid a full-tree deep clone per edit; COW pays the spine only.
    group.bench_function("replace_at_depth_nested", |b| {
        let mut big = largest.clone();
        for _ in 0..6 {
            let wrapped = big.clone();
            big = pi_ast::builder::SelectBuilder::new()
                .project_star()
                .from_subquery(wrapped.clone())
                .from_subquery(wrapped)
                .build();
        }
        let deepest = big
            .preorder()
            .into_iter()
            .map(|(p, _)| p)
            .max_by_key(pi_ast::Path::depth)
            .expect("tree has nodes");
        let replacement = pi_ast::Node::int(42);
        b.iter(|| big.replaced(&deepest, replacement.clone()).unwrap());
    });

    // Closure enumeration is a tight loop of clone + place() edits over whole queries, so it
    // tracks the cost of tree mutation directly.
    group.bench_function("enumerate_closure_512", |b| {
        let generated = PrecisionInterfaces::default().from_queries(&queries);
        b.iter(|| generated.interface.enumerate_closure(2048));
    });

    // Amortised cost of appending ONE query to an already-512-query streaming session: the
    // sliding window admits only the previous 15 partners, so each append runs O(w)
    // alignments however long the session grows — compare against `mine_sliding16`, which
    // pays the full O(n·w) rebuild.  (The session keeps growing across iterations; that is
    // the point: per-append cost must stay flat.)
    group.bench_function("session_append_sliding16", |b| {
        let mut session = Session::new(PiOptions {
            window: WindowStrategy::sliding(16),
            ..PiOptions::default()
        });
        session.push_all(queries.iter().cloned());
        let mut next = 0usize;
        b.iter(|| {
            let idx = session.push(queries[next % LOG_SIZE].clone());
            next += 1;
            idx
        });
    });

    // The live-dashboard refresh loop: push one query AND take a snapshot.  Unlike the pure
    // append above, each refresh freezes the log (O(n) node clones) and re-runs the mapper,
    // so this is deliberately *not* O(w) — it is the number to budget against when choosing
    // a snapshot cadence.
    group.bench_function("session_refresh_sliding16", |b| {
        let mut session = Session::new(PiOptions {
            window: WindowStrategy::sliding(16),
            ..PiOptions::default()
        });
        session.push_all(queries.iter().cloned());
        let mut next = 0usize;
        b.iter(|| {
            session.push(queries[next % LOG_SIZE].clone());
            next += 1;
            session.snapshot().version
        });
    });

    // The duplicate-collapsing headline: the same 512-query AllPairs mining over a
    // Zipf-repetitive log (~64 distinct shapes), with the dedup + alignment memo on vs off.
    // The memo runs the expensive alignment once per distinct ordered pair (O(d²)) instead
    // of once per log pair (O(n²)); the `_nomemo` arm is the A/B control and must produce a
    // byte-identical graph (asserted by `assert_determinism_contracts` before any number is
    // published).  These four benches exclude the drop of the ~1M-record result from the
    // timed window (`iter_with_large_drop`): deallocation is identical in both arms — the
    // graphs are byte-identical — so timing it would only dilute the comparison.  They run
    // last so the long-lived benches above keep their historical heap conditions.
    let dedup_log = dedup_log();
    group.bench_function("mine_all_pairs_dedup_512", |b| {
        let builder = GraphBuilder::new().window(WindowStrategy::AllPairs);
        b.iter_with_large_drop(|| builder.build(&dedup_log));
    });
    group.bench_function("mine_all_pairs_dedup_512_nomemo", |b| {
        let builder = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .memoize(false);
        b.iter_with_large_drop(|| builder.build(&dedup_log));
    });

    group.finish();

    // The adversarial control: 512 pairwise-distinct shapes, where the memo can never hit —
    // every pair still pays a full alignment, plus the dedup bookkeeping (which must stay
    // within noise, ≤2%).  At ~700 ms per build, sequential benches are at the mercy of
    // this box's slow frequency drift (observed swinging means ±6% between back-to-back
    // arms whose *minimums* agree to 0.1%), so the two arms are measured as a PAIRED
    // comparison: samples alternate memo-on / memo-off, letting drift hit both arms
    // equally, and both are recorded under their own bench ids.
    paired_all_pairs_distinct(c);
}

/// Interleaved A/B measurement of Sliding(16) mining with the parallel flag off vs on;
/// see the comment at the call site.  Keeps the historical bench ids so the trajectory in
/// `BENCH_mining.json` stays comparable across the measurement-style change.
fn paired_sliding16(c: &mut Criterion) {
    let queries = olap_log();
    let serial = GraphBuilder::new()
        .window(WindowStrategy::Sliding(16))
        .parallel(false);
    let parallel = GraphBuilder::new()
        .window(WindowStrategy::Sliding(16))
        .parallel(true);
    // One warm-up build per arm, doubling as a byte-identity spot check.
    assert_eq!(serial.build(&queries), parallel.build(&queries));
    const SAMPLES: usize = 16;
    let mut serial_ns: Vec<f64> = Vec::with_capacity(SAMPLES);
    let mut parallel_ns: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        for (builder, samples) in [(&serial, &mut serial_ns), (&parallel, &mut parallel_ns)] {
            let start = std::time::Instant::now();
            let graph = std::hint::black_box(builder.build(&queries));
            samples.push(start.elapsed().as_nanos() as f64);
            drop(graph);
        }
    }
    for (id, samples) in [
        ("mining_throughput/mine_sliding16/serial", serial_ns),
        ("mining_throughput/mine_sliding16/parallel", parallel_ns),
    ] {
        let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        c.record(criterion::Measurement {
            id: id.to_string(),
            mean_ns,
            min_ns: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max_ns: samples.iter().copied().fold(0.0, f64::max),
            iterations: samples.len() as u64,
            threads: None,
        });
    }
}

/// Interleaved A/B measurement of AllPairs mining over the fully-distinct log with the
/// memo on vs off; see the comment at the call site.
fn paired_all_pairs_distinct(c: &mut Criterion) {
    let distinct_log = distinct_log();
    let memoized = GraphBuilder::new().window(WindowStrategy::AllPairs);
    let unmemoized = GraphBuilder::new()
        .window(WindowStrategy::AllPairs)
        .memoize(false);
    // One warm-up build per arm (also a cheap byte-identity spot check).
    assert_eq!(
        memoized.build(&distinct_log),
        unmemoized.build(&distinct_log)
    );
    const SAMPLES: usize = 8;
    let mut on_ns: Vec<f64> = Vec::with_capacity(SAMPLES);
    let mut off_ns: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        for (builder, samples) in [(&memoized, &mut on_ns), (&unmemoized, &mut off_ns)] {
            let start = std::time::Instant::now();
            let graph = std::hint::black_box(builder.build(&distinct_log));
            samples.push(start.elapsed().as_nanos() as f64);
            drop(graph); // deallocation outside the timed window, as for the dedup benches
        }
    }
    for (id, samples) in [
        ("mining_throughput/mine_all_pairs_distinct_512", on_ns),
        (
            "mining_throughput/mine_all_pairs_distinct_512_nomemo",
            off_ns,
        ),
    ] {
        let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        c.record(criterion::Measurement {
            id: id.to_string(),
            mean_ns,
            min_ns: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max_ns: samples.iter().copied().fold(0.0, f64::max),
            iterations: samples.len() as u64,
            threads: None,
        });
    }
}

/// Thread-scaling curves for the two mining shapes the work-stealing scheduler targets:
/// AllPairs over the duplicate-heavy log (memoized distinct-pair alignment dominated) and
/// Sliding(16) over the OLAP log (raw per-window alignment dominated).  Each arm forces an
/// explicit worker count via [`GraphBuilder::threads`], so the curve reflects the scheduler
/// itself rather than the auto-sizing policy; the `threads` field rides into
/// `BENCH_mining.json` so successive runs compare like-for-like arms.  On a box with fewer
/// physical cores than an arm's thread count the extra workers time-slice one core — the
/// curve then measures scheduler overhead (it should stay flat, not climb), not speedup.
fn thread_scaling(c: &mut Criterion) {
    let olap = olap_log();
    let dedup = dedup_log();
    const SAMPLES: usize = 6;
    for (group_id, queries, window) in [
        ("mine_all_pairs_scaling", &dedup, WindowStrategy::AllPairs),
        ("mine_sliding16_scaling", &olap, WindowStrategy::Sliding(16)),
    ] {
        for threads in [1u64, 2, 4, 8] {
            let builder = GraphBuilder::new().window(window).threads(threads as usize);
            // Warm-up build (also primes allocator state for this arm).
            drop(std::hint::black_box(builder.build(queries)));
            let mut samples = Vec::with_capacity(SAMPLES);
            for _ in 0..SAMPLES {
                let start = std::time::Instant::now();
                let graph = std::hint::black_box(builder.build(queries));
                samples.push(start.elapsed().as_nanos() as f64);
                drop(graph); // deallocation outside the timed window
            }
            let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
            c.record(criterion::Measurement {
                id: format!("mining_throughput/{group_id}"),
                mean_ns,
                min_ns: samples.iter().copied().fold(f64::INFINITY, f64::min),
                max_ns: samples.iter().copied().fold(0.0, f64::max),
                iterations: samples.len() as u64,
                threads: Some(threads),
            });
        }
    }
}

/// Prints the pass/fail note for the sliding16 parallel-vs-serial A/B: with the cost-model
/// gate in place, `parallel(true)` must never be slower than serial — on a single-core box
/// it falls back to the serial path entirely, and with real cores it only fans out when the
/// estimated alignment work clears the gate.  Informational on top of the hard assertion in
/// the `scaling_smoke` bench, so a regression is visible in every harness run's output.
/// Deltas within the paired-sampling noise floor (±3% observed on this box for identical
/// code measured twice) report as ok rather than regressions.
fn sliding16_ab_note(c: &Criterion) {
    let mean_of = |id: &str| {
        c.measurements()
            .iter()
            .find(|m| m.id == id && m.threads.is_none())
            .map(|m| m.mean_ns)
    };
    let (Some(serial), Some(parallel)) = (
        mean_of("mining_throughput/mine_sliding16/serial"),
        mean_of("mining_throughput/mine_sliding16/parallel"),
    ) else {
        return;
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let verdict = if parallel <= serial {
        "ok"
    } else if parallel <= serial * 1.03 {
        "ok (within noise)"
    } else {
        "REGRESSION"
    };
    println!(
        "A/B mine_sliding16: parallel {:.3} ms vs serial {:.3} ms ({:+.1}%) -> {verdict} [{cores} core(s)]",
        parallel / 1e6,
        serial / 1e6,
        (parallel - serial) / serial * 100.0,
    );
}

/// Sanity-checks the determinism contracts before publishing numbers: parallel and serial
/// builds of the same log must be identical, a streaming session's graph must be identical
/// to the batch build of the same log, and the dedup/alignment memo must be invisible —
/// memo-on and memo-off AllPairs builds of the duplicate-heavy log must be byte-identical.
fn assert_determinism_contracts(queries: &QueryLog) {
    let serial = GraphBuilder::new()
        .window(WindowStrategy::Sliding(16))
        .parallel(false)
        .build(queries);
    let parallel = GraphBuilder::new()
        .window(WindowStrategy::Sliding(16))
        .parallel(true)
        .build(queries);
    let mut session = Session::new(PiOptions {
        window: WindowStrategy::sliding(16),
        ..PiOptions::default()
    });
    session.push_all(queries.iter().cloned());
    let streamed = session.graph();
    assert_eq!(serial, parallel);
    assert_eq!(serial, streamed);
    // A forced worker count (spawning real work-stealing threads even on one core) must
    // also be invisible — this is the identity the scaling-curve arms below rely on.
    let forced = GraphBuilder::new()
        .window(WindowStrategy::Sliding(16))
        .threads(4)
        .build(queries);
    assert_eq!(serial, forced);
    let dedup = dedup_log();
    let memoized = GraphBuilder::new()
        .window(WindowStrategy::AllPairs)
        .memoize(true)
        .build(&dedup);
    let unmemoized = GraphBuilder::new()
        .window(WindowStrategy::AllPairs)
        .memoize(false)
        .build(&dedup);
    assert_eq!(memoized, unmemoized);
}

criterion_group!(benches, bench_mining_throughput);

fn main() {
    assert_determinism_contracts(&olap_log());
    // crates/bench -> workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mining.json");
    // Snapshot the previous run's numbers before write_bench_json overwrites them.
    let previous = bench::read_bench_json(path);
    let mut c = Criterion::new();
    benches(&mut c);
    thread_scaling(&mut c);
    sliding16_ab_note(&c);
    let lines: Vec<bench::BenchLine> = c
        .measurements()
        .iter()
        .map(|m| bench::BenchLine {
            id: m.id.clone(),
            threads: m.threads,
            mean_ns: m.mean_ns,
            min_ns: m.min_ns,
            max_ns: m.max_ns,
            iterations: m.iterations,
        })
        .collect();
    bench::write_bench_json(
        path,
        &[
            ("log", "\"olap_random_walk\"".to_string()),
            ("queries", LOG_SIZE.to_string()),
        ],
        &lines,
    );
    bench::print_comparison("BENCH_mining.json", &previous, &lines);
}
