//! Figure 12 / Appendix B: scalability with the log size under the optimised configuration
//! (window = 2, LCA pruning).  The paper's claim: 10,000 queries within 10 seconds,
//! ~2,000 queries within ~3 seconds.

use bench::interleaved_log;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pi_core::PrecisionInterfaces;
use std::time::Duration;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_scalability");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500));
    for size in [500usize, 1000, 2000, 5000, 10_000] {
        let queries = interleaved_log(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &queries, |b, queries| {
            let pipeline = PrecisionInterfaces::default();
            b.iter(|| pipeline.from_queries(queries.clone()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
