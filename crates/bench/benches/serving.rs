//! Serving latency under multi-tenant load: a loopback load generator drives the
//! `pi-server` HTTP service with 64 tenants' worth of Zipf-repetitive mixed SQL + frames
//! traffic and measures what a client actually sees — `POST /logs` ingest latency (the
//! acceptor decodes and enqueues; mining happens on the pool's workers) and `GET
//! /interfaces/{user}/{thread}` snapshot latency (read-your-writes: queued statements are
//! applied before the snapshot renders).  p50/p99/mean for both, plus the sustained
//! statement throughput, land in `BENCH_serving.json` at the workspace root so successive
//! PRs can track the serving trajectory alongside `BENCH_mining.json`.

use bench::BenchLine;
use pi_server::client::Connection;
use pi_server::wire::{encode_batch, LogItem};
use pi_server::{PoolOptions, Server, ServerOptions};
use pi_ui::Json;
use pi_workloads::frames;
use std::time::Instant;

/// Concurrent tenants (the acceptance floor for the serving numbers).
const TENANTS: usize = 64;
/// Statements each tenant ingests over the run.
const STATEMENTS_PER_TENANT: usize = 48;
/// Statements per `POST /logs` batch.
const BATCH: usize = 8;
/// Distinct query shapes per tenant's Zipf-repetitive walk.
const DISTINCT: usize = 12;
/// Client threads, each driving its share of the tenants over one keep-alive connection.
const CLIENTS: usize = 8;
/// A tenant issues a snapshot `GET` after every `SNAPSHOT_EVERY` batches (and one final).
const SNAPSHOT_EVERY: usize = 2;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn stat_lines(prefix: &str, mut samples: Vec<f64>) -> Vec<BenchLine> {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len() as u64;
    let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
    let line = |suffix: &str, value: f64| BenchLine {
        id: format!("{prefix}{suffix}"),
        threads: None,
        mean_ns: value,
        min_ns: samples.first().copied().unwrap_or(0.0),
        max_ns: samples.last().copied().unwrap_or(0.0),
        iterations: n,
    };
    vec![
        line("", mean),
        line("_p50", percentile(&samples, 0.50)),
        line("_p99", percentile(&samples, 0.99)),
    ]
}

/// One client thread's share of the run: drive `tenants` round-robin, one batch per tenant
/// per round, snapshotting every few batches.  Returns (ingest ns, snapshot ns) samples.
fn drive_tenants(
    addr: std::net::SocketAddr,
    tenants: &[usize],
) -> std::io::Result<(Vec<f64>, Vec<f64>)> {
    let mut conn = Connection::open(addr)?;
    let mut ingest_ns = Vec::new();
    let mut snapshot_ns = Vec::new();
    // Each tenant walks its own seed: same repetitive mixture, different queries.
    let logs: Vec<_> = tenants
        .iter()
        .map(|t| frames::repetitive_mixed_walk(1000 + *t as u64, STATEMENTS_PER_TENANT, DISTINCT))
        .collect();
    let rounds = STATEMENTS_PER_TENANT / BATCH;
    for round in 0..rounds {
        for (slot, tenant) in tenants.iter().enumerate() {
            let log = &logs[slot];
            let queries: Vec<_> = (round * BATCH..(round + 1) * BATCH)
                .map(|i| (log.dialects[i], log.text[i].as_str().into()))
                .collect();
            let item = LogItem {
                user_id: format!("user-{tenant}"),
                thread_id: "t0".to_string(),
                queries,
            };
            let body = encode_batch(std::slice::from_ref(&item));
            let start = Instant::now();
            let (status, _, response) = conn.request("POST", "/logs", Some(&body))?;
            ingest_ns.push(start.elapsed().as_nanos() as f64);
            assert!(
                status == 202 || status == 429,
                "unexpected {status}: {response}"
            );
            if (round + 1) % SNAPSHOT_EVERY == 0 {
                let path = format!("/interfaces/user-{tenant}/t0");
                let start = Instant::now();
                let (status, _, _) = conn.request("GET", &path, None)?;
                snapshot_ns.push(start.elapsed().as_nanos() as f64);
                assert_eq!(status, 200);
            }
        }
    }
    Ok((ingest_ns, snapshot_ns))
}

fn main() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerOptions {
            http_threads: CLIENTS,
            pool: PoolOptions {
                capacity: TENANTS * 2, // headroom: this run measures latency, not eviction
                shards: 16,
                queue_depth: 256,
                workers: 2,
                ..PoolOptions::default()
            },
            spill_dir: None,
        },
    )
    .expect("bind loopback server");
    let addr = server.addr();

    let started = Instant::now();
    let shares: Vec<Vec<usize>> = (0..CLIENTS)
        .map(|c| (0..TENANTS).filter(|t| t % CLIENTS == c).collect())
        .collect();
    let results: Vec<(Vec<f64>, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shares
            .iter()
            .map(|share| scope.spawn(move || drive_tenants(addr, share).expect("client io")))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut ingest_ns = Vec::new();
    let mut snapshot_ns = Vec::new();
    for (ingest, snapshot) in results {
        ingest_ns.extend(ingest);
        snapshot_ns.extend(snapshot);
    }
    let statements = TENANTS * STATEMENTS_PER_TENANT;
    let sustained_qps = statements as f64 / wall_s;

    // Spot-check correctness before publishing numbers: a sampled tenant's final interface
    // carries every statement it sent and maps at least one widget.
    let (status, _, body) =
        pi_server::client::http_request(addr, "GET", "/interfaces/user-0/t0", None)
            .expect("final fetch");
    assert_eq!(status, 200);
    let interface = Json::parse(&body).expect("interface JSON");
    assert_eq!(
        interface.get("version").and_then(Json::as_f64),
        Some(STATEMENTS_PER_TENANT as f64),
        "tenant 0 should have ingested every statement: {body}"
    );
    assert!(
        interface
            .get("interface")
            .and_then(|i| i.get("widgets"))
            .and_then(Json::as_array)
            .is_some_and(|w| !w.is_empty()),
        "tenant 0's interface should map widgets"
    );
    let gauge = server.pool().gauge();
    assert_eq!(
        gauge.accepted as usize, statements,
        "no batch should have been shed"
    );
    server.shutdown();

    let total_ingest_ns: f64 = ingest_ns.iter().sum();
    let mut lines = stat_lines("serving/ingest_post", ingest_ns);
    lines.extend(stat_lines("serving/snapshot_get", snapshot_ns));
    // Amortised per-statement ingest cost, for like-for-like ratios against the mining
    // benches' per-query numbers.
    lines.push(BenchLine {
        id: "serving/ingest_per_statement".into(),
        threads: None,
        mean_ns: total_ingest_ns / statements as f64,
        min_ns: 0.0,
        max_ns: 0.0,
        iterations: statements as u64,
    });

    println!(
        "serving: {TENANTS} tenants x {STATEMENTS_PER_TENANT} statements over {CLIENTS} connections in {wall_s:.2}s ({sustained_qps:.0} statements/s sustained)"
    );
    for line in &lines {
        println!("  {}: {:.3} ms", line.id, line.mean_ns / 1e6);
    }

    // crates/bench -> workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    let previous = bench::read_bench_json(path);
    bench::write_bench_json(
        path,
        &[
            ("workload", "\"repetitive_mixed_walk\"".to_string()),
            ("tenants", TENANTS.to_string()),
            ("statements", statements.to_string()),
            ("batch", BATCH.to_string()),
            ("clients", CLIENTS.to_string()),
            ("sustained_qps", format!("{sustained_qps:.0}")),
        ],
        &lines,
    );
    bench::print_comparison("BENCH_serving.json", &previous, &lines);
}
