//! Ablation benches for the design choices listed in DESIGN.md: widget merging on/off and
//! parallel vs serial interaction mining.

use bench::{client_log, interleaved_log};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pi_core::{InteractionMapper, MapperOptions, PiOptions, PrecisionInterfaces};
use pi_graph::{GraphBuilder, WindowStrategy};
use pi_widgets::WidgetLibrary;
use std::time::Duration;

fn bench_merging(c: &mut Criterion) {
    let queries = client_log(100);
    let graph = GraphBuilder::new()
        .window(WindowStrategy::Sliding(2))
        .build(&queries);
    let mut group = c.benchmark_group("mapper_merging");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for merging in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("merging={merging}")),
            &merging,
            |b, &merging| {
                let mapper =
                    InteractionMapper::new(WidgetLibrary::standard()).with_options(MapperOptions {
                        enable_merging: merging,
                        ..MapperOptions::default()
                    });
                b.iter(|| mapper.map(&graph));
            },
        );
    }
    group.finish();
}

fn bench_parallel_mining(c: &mut Criterion) {
    let queries = interleaved_log(400);
    let mut group = c.benchmark_group("parallel_mining");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for parallel in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("parallel={parallel}")),
            &parallel,
            |b, &parallel| {
                let pipeline = PrecisionInterfaces::new(PiOptions {
                    window: WindowStrategy::Sliding(5),
                    parallel,
                    ..PiOptions::default()
                });
                b.iter(|| pipeline.mine(&queries));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_merging, bench_parallel_mining);
criterion_main!(benches);
