//! Micro-benchmarks for the per-stage costs: parsing, pairwise tree diffing, closure
//! membership, and query execution.

use criterion::{criterion_group, criterion_main, Criterion};
use pi_ast::Frontend as _;
use pi_diff::{extract_diffs, AncestorPolicy};
use pi_engine::{exec, Catalog};
use pi_sql::SqlFrontend;
use pi_workloads::sdss;
use std::time::Duration;

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    let sql = "SELECT TOP 10 g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID";
    group.bench_function("parse_sdss_query", |b| {
        b.iter(|| SqlFrontend.parse_one(sql).unwrap())
    });

    // The memoized hash must be O(1) — a field read — while the from-scratch recompute walks
    // the whole subtree.  The gap between these two numbers is the memo at work.
    let big = {
        let mut q = SqlFrontend.parse_one(sql).unwrap();
        for _ in 0..6 {
            let wrapped = q.clone();
            q = pi_ast::builder::SelectBuilder::new()
                .project_star()
                .from_subquery(wrapped.clone())
                .from_subquery(wrapped)
                .build();
        }
        q
    };
    group.bench_function(
        &format!("structural_hash_memoized_{}_nodes", big.size()),
        |b| b.iter(|| big.structural_hash()),
    );
    group.bench_function(
        &format!("structural_hash_recompute_{}_nodes", big.size()),
        |b| b.iter(|| big.recomputed_hash()),
    );

    let log = sdss::client_log(sdss::ClientArchetype::ObjectLookup, 1, 2).queries;
    // The raw ordered-tree alignment alone (no ancestor expansion): the inner loop the
    // AllPairs memo amortises, and the unit the prefix/suffix-trimmed flat-buffer LCS
    // optimises.  Before/after numbers for that change live in README.md.
    group.bench_function("leaf_changes_pair", |b| {
        b.iter(|| pi_diff::leaf_changes(&log[0], &log[1]))
    });
    group.bench_function("diff_pair_lca", |b| {
        b.iter(|| extract_diffs(&log[0], &log[1], 0, 1, AncestorPolicy::LcaPruned))
    });
    group.bench_function("diff_pair_full", |b| {
        b.iter(|| extract_diffs(&log[0], &log[1], 0, 1, AncestorPolicy::Full))
    });

    let generated = pi_core::PrecisionInterfaces::default()
        .from_queries(sdss::client_log(sdss::ClientArchetype::ObjectLookup, 2, 50).queries);
    let probe = sdss::client_log(sdss::ClientArchetype::ObjectLookup, 9, 1).queries[0].clone();
    group.bench_function("closure_membership", |b| {
        b.iter(|| generated.interface.can_express(&probe))
    });

    let catalog = Catalog::demo(1);
    let query = SqlFrontend
        .parse_one("SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState")
        .unwrap();
    group.bench_function("exec_olap_groupby", |b| {
        b.iter(|| exec(&query, &catalog).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
