//! Figure 11 / Appendix B: end-to-end latency as a function of the sliding-window size and
//! LCA pruning, on a ~100-query per-client SDSS log.

use bench::client_log;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pi_core::{PiOptions, PrecisionInterfaces};
use pi_diff::AncestorPolicy;
use pi_graph::WindowStrategy;
use std::time::Duration;

fn bench_window_lca(c: &mut Criterion) {
    let queries = client_log(100);
    let mut group = c.benchmark_group("fig11_window_lca");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for policy in [AncestorPolicy::Full, AncestorPolicy::LcaPruned] {
        for window in [2usize, 10, 50, 100] {
            let label = format!("{policy:?}/window{window}");
            group.bench_with_input(BenchmarkId::from_parameter(label), &window, |b, &window| {
                let pipeline = PrecisionInterfaces::new(PiOptions {
                    window: WindowStrategy::Sliding(window),
                    policy,
                    ..PiOptions::default()
                });
                b.iter(|| pipeline.from_queries(queries.clone()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_window_lca);
criterion_main!(benches);
