//! Shared helpers for the Criterion benchmarks.
//!
//! The benchmarks mirror the runtime evaluation of the paper (Appendix B): Figure 11 varies
//! the sliding-window size and LCA pruning on per-client logs, Figure 12 scales the log size
//! with the optimised configuration, and two extra benches quantify the design choices called
//! out in DESIGN.md (merging on/off, and the per-stage micro costs).

use pi_ast::Node;
use pi_workloads::{mix, sdss};

/// A per-client SDSS-style log of the given size (the Figure 11 workload).
pub fn client_log(n: usize) -> Vec<Node> {
    sdss::client_log(sdss::ClientArchetype::ObjectLookup, 3, n).queries
}

/// An interleaved multi-client log of the given size (the Figure 12 workload).
pub fn interleaved_log(n: usize) -> Vec<Node> {
    let per_client = n.div_ceil(20).max(1);
    let logs = sdss::client_logs(20, per_client);
    let mut queries = mix::interleave(&logs, 1).queries;
    queries.truncate(n);
    queries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_helpers_produce_requested_sizes() {
        assert_eq!(client_log(50).len(), 50);
        assert_eq!(interleaved_log(100).len(), 100);
        assert_eq!(interleaved_log(999).len(), 999);
    }
}
