//! Shared helpers for the Criterion benchmarks.
//!
//! The benchmarks mirror the runtime evaluation of the paper (Appendix B): Figure 11 varies
//! the sliding-window size and LCA pruning on per-client logs, Figure 12 scales the log size
//! with the optimised configuration, and two extra benches quantify the design choices called
//! out in DESIGN.md (merging on/off, and the per-stage micro costs).

use pi_ast::Node;
use pi_workloads::{mix, sdss};

/// A per-client SDSS-style log of the given size (the Figure 11 workload).
pub fn client_log(n: usize) -> Vec<Node> {
    sdss::client_log(sdss::ClientArchetype::ObjectLookup, 3, n).queries
}

/// An interleaved multi-client log of the given size (the Figure 12 workload).
pub fn interleaved_log(n: usize) -> Vec<Node> {
    let per_client = n.div_ceil(20).max(1);
    let logs = sdss::client_logs(20, per_client);
    let mut queries = mix::interleave(&logs, 1).queries;
    queries.truncate(n);
    queries
}

/// One recorded line of a `BENCH_*.json` trajectory file.
///
/// Mirrors the harness's measurement shape without depending on it, so both the Criterion
/// benches (which convert their measurements) and custom harnesses like the serving load
/// generator (which compute percentiles by hand) write through the same code path.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchLine {
    /// Bench id, e.g. `"serving/ingest_post_p99"`.
    pub id: String,
    /// Worker count for scaling-curve arms sharing one id; `None` otherwise.
    pub threads: Option<u64>,
    /// Mean (or, for percentile lines, the percentile itself), in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample, ns.
    pub min_ns: f64,
    /// Slowest sample, ns.
    pub max_ns: f64,
    /// Samples behind the line.
    pub iterations: u64,
}

/// Parses a previous trajectory file (if any) into `(bench id, threads, mean ns)` tuples,
/// with a by-hand line scan rather than a JSON dependency — these files are machine-written
/// by [`write_bench_json`], so the one-line-per-bench shape is known.  The `threads`
/// component is `None` for lines without a `"threads"` key, so files from before a scaling
/// curve was added compare cleanly against files from after.
pub fn read_bench_json(path: &str) -> Vec<(String, Option<u64>, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(id) = line
            .split("\"id\": \"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
        else {
            continue;
        };
        let Some(mean) = line
            .split("\"mean_ns\": ")
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .and_then(|v| v.trim().parse::<f64>().ok())
        else {
            continue;
        };
        let threads = line
            .split("\"threads\": ")
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .and_then(|v| v.trim().parse::<u64>().ok());
        out.push((id.to_string(), threads, mean));
    }
    out
}

/// Renders a trajectory file: the `header` key/value pairs (values are raw JSON fragments,
/// e.g. `"512"` or `"\"olap_random_walk\""`) followed by one line per bench.
pub fn render_bench_json(header: &[(&str, String)], lines: &[BenchLine]) -> String {
    let mut out = String::from("{\n");
    for (key, value) in header {
        out.push_str(&format!("  \"{key}\": {value},\n"));
    }
    out.push_str("  \"benches\": [\n");
    for (i, line) in lines.iter().enumerate() {
        let threads = match line.threads {
            Some(t) => format!("\"threads\": {t}, "),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", {threads}\"mean_ns\": {:.0}, \"min_ns\": {:.0}, \"max_ns\": {:.0}, \"iterations\": {}}}{}\n",
            line.id,
            line.mean_ns,
            line.min_ns,
            line.max_ns,
            line.iterations,
            if i + 1 == lines.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes a trajectory file via [`render_bench_json`], reporting the outcome to the
/// terminal (benches run with `--nocapture` semantics, so this is the user-visible record
/// of where the numbers went).
pub fn write_bench_json(path: &str, header: &[(&str, String)], lines: &[BenchLine]) {
    match std::fs::write(path, render_bench_json(header, lines)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Prints a one-line old-vs-new comparison per bench present in both runs, so a bench run
/// against a checked-in trajectory file reports the delta without leaving the terminal.
/// Benches are matched on `(id, threads)`, not id alone — the arms of a scaling curve share
/// an id and differ only in worker count.  `file_label` names the file the old numbers came
/// from (`BENCH_mining.json`, `BENCH_serving.json`, …).
pub fn print_comparison(
    file_label: &str,
    previous: &[(String, Option<u64>, f64)],
    current: &[BenchLine],
) {
    if previous.is_empty() {
        return;
    }
    println!("vs previous {file_label}:");
    for line in current {
        let Some((_, _, old)) = previous
            .iter()
            .find(|(id, threads, _)| *id == line.id && *threads == line.threads)
        else {
            continue;
        };
        let ratio = old / line.mean_ns;
        let label = match line.threads {
            Some(t) => format!("{} [threads={t}]", line.id),
            None => line.id.clone(),
        };
        println!(
            "  {label}: {:.3} ms -> {:.3} ms ({:.2}x)",
            old / 1e6,
            line.mean_ns / 1e6,
            ratio
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_helpers_produce_requested_sizes() {
        assert_eq!(client_log(50).len(), 50);
        assert_eq!(interleaved_log(100).len(), 100);
        assert_eq!(interleaved_log(999).len(), 999);
    }

    #[test]
    fn bench_json_round_trips_through_the_line_scanner() {
        let lines = vec![
            BenchLine {
                id: "serving/ingest_post".into(),
                threads: None,
                mean_ns: 125000.0,
                min_ns: 90000.0,
                max_ns: 410000.0,
                iterations: 384,
            },
            BenchLine {
                id: "mining/scaling".into(),
                threads: Some(4),
                mean_ns: 2.5e6,
                min_ns: 2.1e6,
                max_ns: 3.0e6,
                iterations: 6,
            },
        ];
        let header = [("tenants", "64".to_string())];
        let text = render_bench_json(&header, &lines);
        assert!(text.contains("\"tenants\": 64"));
        let dir = std::env::temp_dir().join("pi-bench-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        std::fs::write(&path, &text).unwrap();
        let parsed = read_bench_json(path.to_str().unwrap());
        assert_eq!(
            parsed,
            vec![
                ("serving/ingest_post".to_string(), None, 125000.0),
                ("mining/scaling".to_string(), Some(4), 2500000.0),
            ]
        );
    }
}
