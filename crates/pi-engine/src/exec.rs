//! The `exec()` half of the paper's execution contract: evaluate a query AST against the
//! catalog and return a result table.

use crate::catalog::Catalog;
use crate::storage::{Column, Table, Value};
use pi_ast::{AttrValue, Frontend as _, Node, NodeKind};
use pi_sql::SqlFrontend;
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised while executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A referenced table is not in the catalog.
    UnknownTable(String),
    /// A referenced column does not exist in the FROM relations.
    UnknownColumn(String),
    /// The query uses a feature the engine does not implement.
    Unsupported(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            ExecError::Unsupported(what) => write!(f, "unsupported query feature: {what}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Executes a SELECT query AST against the catalog.
pub fn exec(query: &Node, catalog: &Catalog) -> Result<Table, ExecError> {
    if query.kind_ref() != &NodeKind::Select {
        return Err(ExecError::Unsupported(format!(
            "top-level node {}",
            query.kind_ref()
        )));
    }
    exec_select(query, catalog)
}

fn clause(query: &Node, kind: NodeKind) -> Option<&Node> {
    query.children().iter().find(|c| c.kind_ref() == &kind)
}

fn exec_select(query: &Node, catalog: &Catalog) -> Result<Table, ExecError> {
    // FROM
    let working = match clause(query, NodeKind::From) {
        Some(from) if from.arity() > 0 => {
            let mut acc: Option<Table> = None;
            for relation in from.children() {
                let table = exec_relation(relation, catalog)?;
                acc = Some(match acc {
                    None => table,
                    Some(prev) => prev.cross_join(&table),
                });
            }
            acc.expect("at least one relation")
        }
        _ => {
            // FROM-less query: a single empty row so constant projections still work.
            let mut t = Table::new(vec![]);
            let _ = &mut t;
            t
        }
    };

    // WHERE
    let filtered = match clause(query, NodeKind::Where) {
        Some(where_clause) => {
            let predicate = &where_clause.children()[0];
            let mut keep = Vec::new();
            for row in 0..working.num_rows() {
                if eval_expr(predicate, &working, row, None, catalog)?.is_truthy() {
                    keep.push(row);
                }
            }
            working.filter_rows(&keep)
        }
        None => working,
    };

    // Projection / grouping
    let projections = clause(query, NodeKind::Project)
        .map(|p| p.children().to_vec())
        .unwrap_or_default();
    let group_by = clause(query, NodeKind::GroupBy);
    let having = clause(query, NodeKind::Having);
    let order_by = clause(query, NodeKind::OrderBy);

    let mut agg_nodes: Vec<Node> = Vec::new();
    for proj in &projections {
        collect_aggregates(&proj.children()[0], &mut agg_nodes);
    }
    if let Some(having) = having {
        collect_aggregates(&having.children()[0], &mut agg_nodes);
    }
    let grouped = group_by.is_some() || !agg_nodes.is_empty();

    let mut output;
    let mut order_keys: Vec<Vec<Value>> = Vec::new();
    let order_exprs: Vec<(&Node, bool)> = order_by
        .map(|ob| {
            ob.children()
                .iter()
                .map(|oc| (&oc.children()[0], oc.attr_str("dir") != Some("desc")))
                .collect()
        })
        .unwrap_or_default();

    if grouped {
        // Group rows by the GROUP BY key.
        let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for row in 0..filtered.num_rows() {
            let key = match group_by {
                Some(gb) => {
                    let mut parts = Vec::new();
                    for gc in gb.children() {
                        parts.push(
                            eval_expr(&gc.children()[0], &filtered, row, None, catalog)?
                                .group_key(),
                        );
                    }
                    parts.join("\u{1}")
                }
                None => String::from("all"),
            };
            groups.entry(key).or_default().push(row);
        }
        // An aggregate over an empty input still produces one row.
        if groups.is_empty() && group_by.is_none() {
            groups.insert("all".into(), Vec::new());
        }

        output = Table::new(projection_columns(&projections, &filtered)?);
        for rows in groups.values() {
            // Aggregate context for this group.
            let mut agg_values: BTreeMap<u64, Value> = BTreeMap::new();
            for agg in &agg_nodes {
                agg_values.insert(
                    agg.structural_hash(),
                    eval_aggregate(agg, &filtered, rows, catalog)?,
                );
            }
            let representative = rows.first().copied().unwrap_or(0);
            if let Some(having) = having {
                let keep = if filtered.num_rows() == 0 {
                    false
                } else {
                    eval_expr(
                        &having.children()[0],
                        &filtered,
                        representative,
                        Some(&agg_values),
                        catalog,
                    )?
                    .is_truthy()
                };
                if !keep {
                    continue;
                }
            }
            if filtered.num_rows() == 0 && !rows.is_empty() {
                continue;
            }
            let row_values = project_row(
                &projections,
                &filtered,
                representative,
                Some(&agg_values),
                catalog,
            )?;
            output.push_row(row_values);
            order_keys.push(eval_order_keys(
                &order_exprs,
                &filtered,
                representative,
                Some(&agg_values),
                catalog,
            )?);
        }
    } else {
        output = Table::new(projection_columns(&projections, &filtered)?);
        for row in 0..filtered.num_rows() {
            let row_values = project_row(&projections, &filtered, row, None, catalog)?;
            output.push_row(row_values);
            order_keys.push(eval_order_keys(
                &order_exprs,
                &filtered,
                row,
                None,
                catalog,
            )?);
        }
    }

    // DISTINCT
    if query.attr("distinct").and_then(AttrValue::as_bool) == Some(true) {
        let mut seen = std::collections::BTreeSet::new();
        let mut keep = Vec::new();
        for row in 0..output.num_rows() {
            let key: Vec<String> = output.row(row).iter().map(Value::group_key).collect();
            if seen.insert(key.join("\u{1}")) {
                keep.push(row);
            }
        }
        let kept_keys: Vec<Vec<Value>> = keep.iter().map(|&r| order_keys[r].clone()).collect();
        output = output.filter_rows(&keep);
        order_keys = kept_keys;
    }

    // ORDER BY
    if !order_exprs.is_empty() && output.num_rows() > 1 {
        let mut indices: Vec<usize> = (0..output.num_rows()).collect();
        indices.sort_by(|&a, &b| {
            for (k, (_, ascending)) in order_exprs.iter().enumerate() {
                let ord = order_keys[a][k]
                    .compare(&order_keys[b][k])
                    .unwrap_or(std::cmp::Ordering::Equal);
                let ord = if *ascending { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        output = output.filter_rows(&indices);
    }

    // LIMIT / TOP
    if let Some(limit) = clause(query, NodeKind::Limit) {
        let n = limit.children()[0]
            .numeric_value()
            .unwrap_or(f64::INFINITY)
            .max(0.0) as usize;
        let keep: Vec<usize> = (0..output.num_rows().min(n)).collect();
        output = output.filter_rows(&keep);
    }

    Ok(output)
}

// ------------------------------------------------------------------ relations

fn exec_relation(relation: &Node, catalog: &Catalog) -> Result<Table, ExecError> {
    match relation.kind_ref() {
        NodeKind::TableRef => {
            let name = relation.attr_str("name").unwrap_or_default();
            let table = catalog
                .table(name)
                .cloned()
                .ok_or_else(|| ExecError::UnknownTable(name.to_string()))?;
            let qualifier = relation.attr_str("alias").unwrap_or(name);
            Ok(table.with_qualifier(qualifier))
        }
        NodeKind::SubqueryRef => {
            let table = exec_select(&relation.children()[0], catalog)?;
            Ok(match relation.attr_str("alias") {
                Some(alias) => table.with_qualifier(alias),
                None => table,
            })
        }
        NodeKind::TableFunc => exec_table_func(relation, catalog),
        NodeKind::Join => {
            let left = exec_relation(&relation.children()[0], catalog)?;
            let right = exec_relation(&relation.children()[1], catalog)?;
            let crossed = left.cross_join(&right);
            let condition = &relation.children()[2];
            let mut keep = Vec::new();
            for row in 0..crossed.num_rows() {
                if eval_expr(condition, &crossed, row, None, catalog)?.is_truthy() {
                    keep.push(row);
                }
            }
            Ok(crossed.filter_rows(&keep))
        }
        NodeKind::Select => exec_select(relation, catalog),
        other => Err(ExecError::Unsupported(format!("relation {other}"))),
    }
}

/// The SDSS cone-search UDF `dbo.fGetNearbyObjEq(ra, dec, radius_arcmin)`, simulated over the
/// synthetic Galaxy table: returns the `objID` and angular distance of galaxies within the
/// radius.
fn exec_table_func(relation: &Node, catalog: &Catalog) -> Result<Table, ExecError> {
    let name = relation.attr_str("name").unwrap_or_default();
    if !name.to_ascii_lowercase().ends_with("fgetnearbyobjeq") {
        return Err(ExecError::Unsupported(format!("table function {name}")));
    }
    let arg = |i: usize| -> f64 {
        relation
            .children()
            .get(i)
            .and_then(Node::numeric_value)
            .unwrap_or(0.0)
    };
    let (ra, dec, radius) = (arg(0), arg(1), arg(2));
    let degrees = radius / 60.0;
    let galaxy = catalog
        .table("Galaxy")
        .ok_or_else(|| ExecError::UnknownTable("Galaxy".into()))?;
    let ra_idx = galaxy.column_index(None, "ra").expect("galaxy.ra");
    let dec_idx = galaxy.column_index(None, "dec").expect("galaxy.dec");
    let obj_idx = galaxy.column_index(None, "objID").expect("galaxy.objID");
    let mut out = Table::new(vec![Column::new("objID"), Column::new("distance")]);
    for row in 0..galaxy.num_rows() {
        let gra = galaxy.value(row, ra_idx).as_f64().unwrap_or(0.0);
        let gdec = galaxy.value(row, dec_idx).as_f64().unwrap_or(0.0);
        let dist = ((gra - ra).powi(2) + (gdec - dec).powi(2)).sqrt();
        if dist <= degrees.max(0.05) {
            out.push_row(vec![galaxy.value(row, obj_idx).clone(), Value::Float(dist)]);
        }
    }
    let qualifier = relation.attr_str("alias").unwrap_or("d");
    Ok(out.with_qualifier(qualifier))
}

// ------------------------------------------------------------------ projection

fn projection_columns(projections: &[Node], input: &Table) -> Result<Vec<Column>, ExecError> {
    let mut out = Vec::new();
    for proj in projections {
        let expr = &proj.children()[0];
        if expr.kind_ref() == &NodeKind::Star {
            match expr.attr_str("table") {
                Some(qualifier) => {
                    for c in input.columns().iter().filter(|c| {
                        c.qualifier
                            .as_deref()
                            .map(|q| q.eq_ignore_ascii_case(qualifier))
                            .unwrap_or(false)
                    }) {
                        out.push(c.clone());
                    }
                }
                None => out.extend(input.columns().iter().cloned()),
            }
            continue;
        }
        let name = match proj.attr_str("alias") {
            Some(alias) => alias.to_string(),
            None => match expr.kind_ref() {
                NodeKind::ColExpr => expr.attr_str("name").unwrap_or("expr").to_string(),
                // Result-column headers for computed expressions are SQL-rendered: the
                // engine implements the SQL execution semantics, whatever front-end the
                // query text arrived through.
                _ => SqlFrontend.render_compact(expr),
            },
        };
        out.push(Column::new(&name));
    }
    Ok(out)
}

fn project_row(
    projections: &[Node],
    input: &Table,
    row: usize,
    aggregates: Option<&BTreeMap<u64, Value>>,
    catalog: &Catalog,
) -> Result<Vec<Value>, ExecError> {
    let mut out = Vec::new();
    for proj in projections {
        let expr = &proj.children()[0];
        if expr.kind_ref() == &NodeKind::Star {
            match expr.attr_str("table") {
                Some(qualifier) => {
                    for (idx, c) in input.columns().iter().enumerate() {
                        if c.qualifier
                            .as_deref()
                            .map(|q| q.eq_ignore_ascii_case(qualifier))
                            .unwrap_or(false)
                        {
                            out.push(input.value(row, idx).clone());
                        }
                    }
                }
                None => out.extend(input.row(row)),
            }
            continue;
        }
        out.push(eval_expr(expr, input, row, aggregates, catalog)?);
    }
    Ok(out)
}

fn eval_order_keys(
    order_exprs: &[(&Node, bool)],
    input: &Table,
    row: usize,
    aggregates: Option<&BTreeMap<u64, Value>>,
    catalog: &Catalog,
) -> Result<Vec<Value>, ExecError> {
    order_exprs
        .iter()
        .map(|(expr, _)| {
            if input.num_rows() == 0 {
                Ok(Value::Null)
            } else {
                eval_expr(expr, input, row, aggregates, catalog)
            }
        })
        .collect()
}

// ------------------------------------------------------------------ aggregates

fn collect_aggregates(expr: &Node, out: &mut Vec<Node>) {
    if expr.kind_ref() == &NodeKind::AggCall {
        if !out.iter().any(|n| n == expr) {
            out.push(expr.clone());
        }
        return;
    }
    for child in expr.children() {
        collect_aggregates(child, out);
    }
}

fn eval_aggregate(
    agg: &Node,
    input: &Table,
    rows: &[usize],
    catalog: &Catalog,
) -> Result<Value, ExecError> {
    let name = agg
        .children()
        .first()
        .filter(|c| c.kind_ref() == &NodeKind::FuncName)
        .and_then(|c| c.attr_str("name"))
        .unwrap_or("COUNT")
        .to_ascii_uppercase();
    let distinct = agg.attr("distinct").and_then(AttrValue::as_bool) == Some(true);
    let arg = agg.children().get(1);

    // Evaluate the argument for every row in the group (COUNT(*) has no argument).
    let mut values: Vec<Value> = Vec::with_capacity(rows.len());
    for &row in rows {
        match arg {
            Some(expr) if expr.kind_ref() != &NodeKind::Star => {
                values.push(eval_expr(expr, input, row, None, catalog)?);
            }
            _ => values.push(Value::Int(1)),
        }
    }
    let mut non_null: Vec<Value> = values.into_iter().filter(|v| !v.is_null()).collect();
    if distinct {
        let mut seen = std::collections::BTreeSet::new();
        non_null.retain(|v| seen.insert(v.group_key()));
    }

    Ok(match name.as_str() {
        "COUNT" => Value::Int(non_null.len() as i64),
        "SUM" => Value::Float(non_null.iter().filter_map(Value::as_f64).sum()),
        "AVG" => {
            if non_null.is_empty() {
                Value::Null
            } else {
                let sum: f64 = non_null.iter().filter_map(Value::as_f64).sum();
                Value::Float(sum / non_null.len() as f64)
            }
        }
        "MIN" => non_null
            .iter()
            .cloned()
            .min_by(|a, b| a.compare(b).unwrap_or(std::cmp::Ordering::Equal))
            .unwrap_or(Value::Null),
        "MAX" => non_null
            .iter()
            .cloned()
            .max_by(|a, b| a.compare(b).unwrap_or(std::cmp::Ordering::Equal))
            .unwrap_or(Value::Null),
        other => return Err(ExecError::Unsupported(format!("aggregate {other}"))),
    })
}

// ------------------------------------------------------------------ expressions

fn eval_expr(
    expr: &Node,
    input: &Table,
    row: usize,
    aggregates: Option<&BTreeMap<u64, Value>>,
    catalog: &Catalog,
) -> Result<Value, ExecError> {
    match expr.kind_ref() {
        NodeKind::NumExpr | NodeKind::HexExpr => Ok(match expr.attr("value") {
            Some(AttrValue::Int(i)) => Value::Int(*i),
            Some(AttrValue::Float(f)) => Value::Float(*f),
            _ => Value::Null,
        }),
        NodeKind::StrExpr => Ok(Value::Str(expr.attr_str("value").unwrap_or("").to_string())),
        NodeKind::BoolExpr => Ok(Value::Bool(expr.attr_str("value") == Some("true"))),
        NodeKind::Null => Ok(Value::Null),
        NodeKind::ColExpr => {
            let name = expr.attr_str("name").unwrap_or_default();
            let qualifier = expr.attr_str("table");
            match input.column_index(qualifier, name) {
                Some(idx) => Ok(input.value(row, idx).clone()),
                None => Err(ExecError::UnknownColumn(expr.label())),
            }
        }
        NodeKind::AggCall => match aggregates.and_then(|m| m.get(&expr.structural_hash())) {
            Some(value) => Ok(value.clone()),
            None => Err(ExecError::Unsupported(
                "aggregate outside a grouped query".into(),
            )),
        },
        NodeKind::BiExpr => eval_binary(expr, input, row, aggregates, catalog),
        NodeKind::UnExpr => {
            let op = expr.attr_str("op").unwrap_or("NOT");
            let inner = eval_expr(&expr.children()[0], input, row, aggregates, catalog)?;
            Ok(match op {
                "NOT" => Value::Bool(!inner.is_truthy()),
                "-" => match inner.as_f64() {
                    Some(v) => Value::Float(-v),
                    None => Value::Null,
                },
                "IS NULL" => Value::Bool(inner.is_null()),
                "IS NOT NULL" => Value::Bool(!inner.is_null()),
                other => return Err(ExecError::Unsupported(format!("unary {other}"))),
            })
        }
        NodeKind::FuncCall => eval_function(expr, input, row, aggregates, catalog),
        NodeKind::Cast => {
            let inner = eval_expr(&expr.children()[0], input, row, aggregates, catalog)?;
            let ty = expr
                .attr_str("ty")
                .unwrap_or("varchar")
                .to_ascii_lowercase();
            Ok(if ty.contains("int") {
                match inner.as_f64() {
                    Some(v) => Value::Int(v as i64),
                    None => Value::Null,
                }
            } else if ty.contains("float") || ty.contains("real") || ty.contains("double") {
                match inner.as_f64() {
                    Some(v) => Value::Float(v),
                    None => Value::Null,
                }
            } else {
                Value::Str(inner.to_string())
            })
        }
        NodeKind::CaseExpr => eval_case(expr, input, row, aggregates, catalog),
        NodeKind::ScalarSubquery => {
            let result = exec_select(&expr.children()[0], catalog)?;
            Ok(if result.num_rows() > 0 && result.num_columns() > 0 {
                result.value(0, 0).clone()
            } else {
                Value::Null
            })
        }
        other => Err(ExecError::Unsupported(format!("expression {other}"))),
    }
}

fn eval_binary(
    expr: &Node,
    input: &Table,
    row: usize,
    aggregates: Option<&BTreeMap<u64, Value>>,
    catalog: &Catalog,
) -> Result<Value, ExecError> {
    let op = expr.attr_str("op").unwrap_or("=");
    let left_node = &expr.children()[0];
    let right_node = &expr.children()[1];

    // Short-circuit boolean connectives.
    if op == "AND" {
        let left = eval_expr(left_node, input, row, aggregates, catalog)?;
        if !left.is_truthy() {
            return Ok(Value::Bool(false));
        }
        return Ok(Value::Bool(
            eval_expr(right_node, input, row, aggregates, catalog)?.is_truthy(),
        ));
    }
    if op == "OR" {
        let left = eval_expr(left_node, input, row, aggregates, catalog)?;
        if left.is_truthy() {
            return Ok(Value::Bool(true));
        }
        return Ok(Value::Bool(
            eval_expr(right_node, input, row, aggregates, catalog)?.is_truthy(),
        ));
    }

    let left = eval_expr(left_node, input, row, aggregates, catalog)?;

    match op {
        "IN" | "NOT IN" => {
            let mut found = false;
            for option in right_node.children() {
                let value = eval_expr(option, input, row, aggregates, catalog)?;
                if left.sql_eq(&value) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(if op == "IN" { found } else { !found }))
        }
        "BETWEEN" | "NOT BETWEEN" => {
            let lo = eval_expr(&right_node.children()[0], input, row, aggregates, catalog)?;
            let hi = eval_expr(&right_node.children()[1], input, row, aggregates, catalog)?;
            let within = matches!(
                left.compare(&lo),
                Some(std::cmp::Ordering::Greater) | Some(std::cmp::Ordering::Equal)
            ) && matches!(
                left.compare(&hi),
                Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Equal)
            );
            Ok(Value::Bool(if op == "BETWEEN" { within } else { !within }))
        }
        "LIKE" | "NOT LIKE" => {
            let pattern = eval_expr(right_node, input, row, aggregates, catalog)?;
            let matched = like_match(&left.to_string(), &pattern.to_string());
            Ok(Value::Bool(if op == "LIKE" { matched } else { !matched }))
        }
        "=" | "<" | ">" | "<=" | ">=" | "<>" | "!=" => {
            let right = eval_expr(right_node, input, row, aggregates, catalog)?;
            let Some(ord) = left.compare(&right) else {
                return Ok(Value::Bool(false));
            };
            let result = match op {
                "=" => ord == std::cmp::Ordering::Equal,
                "<" => ord == std::cmp::Ordering::Less,
                ">" => ord == std::cmp::Ordering::Greater,
                "<=" => ord != std::cmp::Ordering::Greater,
                ">=" => ord != std::cmp::Ordering::Less,
                _ => ord != std::cmp::Ordering::Equal,
            };
            Ok(Value::Bool(result))
        }
        "+" | "-" | "*" | "/" | "%" => {
            let right = eval_expr(right_node, input, row, aggregates, catalog)?;
            let (Some(a), Some(b)) = (left.as_f64(), right.as_f64()) else {
                return Ok(Value::Null);
            };
            let value = match op {
                "+" => a + b,
                "-" => a - b,
                "*" => a * b,
                "/" => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                _ => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a % b
                }
            };
            Ok(Value::Float(value))
        }
        "||" => {
            let right = eval_expr(right_node, input, row, aggregates, catalog)?;
            Ok(Value::Str(format!("{left}{right}")))
        }
        other => Err(ExecError::Unsupported(format!("operator {other}"))),
    }
}

fn eval_function(
    expr: &Node,
    input: &Table,
    row: usize,
    aggregates: Option<&BTreeMap<u64, Value>>,
    catalog: &Catalog,
) -> Result<Value, ExecError> {
    let name = expr
        .children()
        .first()
        .filter(|c| c.kind_ref() == &NodeKind::FuncName)
        .and_then(|c| c.attr_str("name"))
        .unwrap_or("?")
        .to_ascii_uppercase();
    let args = &expr.children()[1..];
    let arg = |i: usize| -> Result<Value, ExecError> {
        args.get(i)
            .map(|a| eval_expr(a, input, row, aggregates, catalog))
            .unwrap_or(Ok(Value::Null))
    };
    Ok(match name.as_str() {
        "FLOOR" => match arg(0)?.as_f64() {
            Some(v) => Value::Float(v.floor()),
            None => Value::Null,
        },
        "CEIL" | "CEILING" => match arg(0)?.as_f64() {
            Some(v) => Value::Float(v.ceil()),
            None => Value::Null,
        },
        "ABS" => match arg(0)?.as_f64() {
            Some(v) => Value::Float(v.abs()),
            None => Value::Null,
        },
        "ROUND" => match arg(0)?.as_f64() {
            Some(v) => Value::Float(v.round()),
            None => Value::Null,
        },
        "UPPER" => Value::Str(arg(0)?.to_string().to_uppercase()),
        "LOWER" => Value::Str(arg(0)?.to_string().to_lowercase()),
        other => return Err(ExecError::Unsupported(format!("function {other}"))),
    })
}

fn eval_case(
    expr: &Node,
    input: &Table,
    row: usize,
    aggregates: Option<&BTreeMap<u64, Value>>,
    catalog: &Catalog,
) -> Result<Value, ExecError> {
    let simple = expr.attr_str("form") == Some("simple");
    let mut children = expr.children().iter();
    let operand = if simple {
        Some(eval_expr(
            children.next().expect("simple CASE has an operand"),
            input,
            row,
            aggregates,
            catalog,
        )?)
    } else {
        None
    };
    for arm in children {
        match arm.kind_ref() {
            NodeKind::WhenArm => {
                let condition = eval_expr(&arm.children()[0], input, row, aggregates, catalog)?;
                let fires = match &operand {
                    Some(op) => op.sql_eq(&condition),
                    None => condition.is_truthy(),
                };
                if fires {
                    return eval_expr(&arm.children()[1], input, row, aggregates, catalog);
                }
            }
            NodeKind::ElseArm => {
                return eval_expr(&arm.children()[0], input, row, aggregates, catalog);
            }
            _ => {}
        }
    }
    Ok(Value::Null)
}

/// Minimal LIKE matcher supporting `%` (any run) and `_` (any single character).
fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[u8], p: &[u8]) -> bool {
        match (t.first(), p.first()) {
            (_, None) => t.is_empty(),
            (_, Some(b'%')) => rec(t, &p[1..]) || (!t.is_empty() && rec(&t[1..], p)),
            (Some(tc), Some(b'_')) => {
                let _ = tc;
                rec(&t[1..], &p[1..])
            }
            (Some(tc), Some(pc)) => tc.eq_ignore_ascii_case(pc) && rec(&t[1..], &p[1..]),
            (None, Some(_)) => false,
        }
    }
    rec(text.as_bytes(), pattern.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    fn catalog() -> Catalog {
        Catalog::demo(7)
    }

    fn run(sql: &str) -> Table {
        exec(&parse(sql).unwrap(), &catalog()).unwrap_or_else(|e| panic!("exec `{sql}`: {e}"))
    }

    #[test]
    fn simple_filter_and_projection() {
        let t = run("SELECT DestState, Delay FROM ontime WHERE Month = 9");
        assert_eq!(t.num_columns(), 2);
        assert!(t.num_rows() > 0);
        assert!(t.num_rows() < catalog().table("ontime").unwrap().num_rows());
        // all rows satisfy the predicate (check by re-running with the complementary filter)
        let complement = run("SELECT DestState FROM ontime WHERE Month <> 9");
        assert_eq!(
            t.num_rows() + complement.num_rows(),
            catalog().table("ontime").unwrap().num_rows()
        );
    }

    #[test]
    fn group_by_with_aggregates_matches_manual_computation() {
        let t =
            run("SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState");
        assert_eq!(t.num_columns(), 2);
        assert!(t.num_rows() > 1);
        let total: f64 = (0..t.num_rows())
            .map(|r| t.value(r, 0).as_f64().unwrap())
            .sum();
        let all = run("SELECT COUNT(Delay) FROM ontime WHERE Month = 9");
        assert_eq!(total, all.value(0, 0).as_f64().unwrap());
    }

    #[test]
    fn having_filters_groups() {
        let unfiltered = run("SELECT SUM(flights), carrier FROM ontime GROUP BY carrier");
        let filtered = run(
            "SELECT SUM(flights), carrier FROM ontime GROUP BY carrier HAVING SUM(flights) > 100",
        );
        assert!(filtered.num_rows() <= unfiltered.num_rows());
        for r in 0..filtered.num_rows() {
            assert!(filtered.value(r, 0).as_f64().unwrap() > 100.0);
        }
    }

    #[test]
    fn order_by_and_limit() {
        let t = run("SELECT Delay FROM ontime ORDER BY Delay DESC LIMIT 5");
        assert_eq!(t.num_rows(), 5);
        for pair in 0..4 {
            assert!(t.value(pair, 0).as_f64().unwrap() >= t.value(pair + 1, 0).as_f64().unwrap());
        }
        let top = run("SELECT TOP 3 Delay FROM ontime");
        assert_eq!(top.num_rows(), 3);
    }

    #[test]
    fn distinct_deduplicates() {
        let t = run("SELECT DISTINCT carrier FROM ontime");
        assert!(t.num_rows() <= 6);
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..t.num_rows() {
            assert!(seen.insert(t.value(r, 0).to_string()));
        }
    }

    #[test]
    fn subquery_in_from_and_scalar_subquery() {
        let t = run("SELECT * FROM (SELECT a FROM T WHERE b > 10)");
        assert!(t.num_rows() > 0);
        assert_eq!(t.num_columns(), 1);
        let t = run("SELECT a FROM T WHERE a > (SELECT AVG(a) FROM T)");
        assert!(t.num_rows() > 0);
        assert!(t.num_rows() < catalog().table("T").unwrap().num_rows());
    }

    #[test]
    fn sdss_object_lookup_and_cone_search() {
        let t = run("SELECT * FROM SpecLineIndex WHERE specObjId = 0x110");
        assert_eq!(t.num_rows(), 1);
        let cone = run(
            "SELECT TOP 10 g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(180.0, 0.0, 600.0) AS d WHERE d.objID = g.objID",
        );
        assert!(cone.num_rows() <= 10);
        assert!(
            cone.num_rows() > 0,
            "a 10-degree cone should catch something"
        );
    }

    #[test]
    fn case_cast_floor_and_like() {
        let t = run(
            "SELECT (CASE carrier WHEN 'AA' THEN 'AA' ELSE 'Other' END) AS carrier, FLOOR(distance / 5) AS bucket FROM ontime",
        );
        assert_eq!(t.num_columns(), 2);
        for r in 0..t.num_rows() {
            let label = t.value(r, 0).to_string();
            assert!(label == "AA" || label == "Other");
        }
        let t = run("SELECT CAST(Delay AS varchar) FROM ontime LIMIT 1");
        assert!(matches!(t.value(0, 0), Value::Str(_)));
        let t = run("SELECT carrier FROM ontime WHERE carrier LIKE 'A%'");
        for r in 0..t.num_rows() {
            assert!(t.value(r, 0).to_string().starts_with('A'));
        }
    }

    #[test]
    fn explicit_join_matches_comma_join() {
        let a = run("SELECT g.objID FROM Galaxy AS g JOIN PhotoObj AS p ON g.objID = p.objID");
        let b = run("SELECT g.objID FROM Galaxy AS g, PhotoObj AS p WHERE g.objID = p.objID");
        assert_eq!(a.num_rows(), b.num_rows());
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let catalog = catalog();
        let err = exec(&parse("SELECT a FROM missing").unwrap(), &catalog).unwrap_err();
        assert!(matches!(err, ExecError::UnknownTable(_)));
        let err = exec(&parse("SELECT nosuchcol FROM ontime").unwrap(), &catalog).unwrap_err();
        assert!(matches!(err, ExecError::UnknownColumn(_)));
        assert!(err.to_string().contains("unknown column"));
    }

    #[test]
    fn aggregates_compute_expected_statistics() {
        let t = run("SELECT COUNT(a), SUM(a), AVG(a), MIN(a), MAX(a) FROM T");
        let n = t.value(0, 0).as_f64().unwrap();
        let sum = t.value(0, 1).as_f64().unwrap();
        let avg = t.value(0, 2).as_f64().unwrap();
        let min = t.value(0, 3).as_f64().unwrap();
        let max = t.value(0, 4).as_f64().unwrap();
        assert_eq!(n, catalog().table("T").unwrap().num_rows() as f64);
        assert!((sum / n - avg).abs() < 1e-9);
        assert!(min <= avg && avg <= max);
        let distinct = run("SELECT COUNT(DISTINCT carrier) FROM ontime");
        assert!(distinct.value(0, 0).as_f64().unwrap() <= 6.0);
    }

    #[test]
    fn like_matcher_handles_wildcards() {
        assert!(like_match("alaska", "a%"));
        assert!(like_match("alaska", "%ka"));
        assert!(like_match("alaska", "a_aska"));
        assert!(!like_match("alaska", "b%"));
        assert!(like_match("x", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn in_and_between_predicates() {
        let t = run("SELECT DayOfWeek FROM ontime WHERE DayOfWeek IN (1, 7)");
        for r in 0..t.num_rows() {
            let v = t.value(r, 0).as_f64().unwrap();
            assert!(v == 1.0 || v == 7.0);
        }
        let t = run("SELECT Distance FROM ontime WHERE Distance BETWEEN 100 AND 500");
        for r in 0..t.num_rows() {
            let v = t.value(r, 0).as_f64().unwrap();
            assert!((100.0..=500.0).contains(&v));
        }
    }
}
