//! The `render()` half of the paper's execution contract.
//!
//! The paper assumes `render()` "either generates a simple visualization or renders a table"
//! (§3.3) and defers sophisticated chart selection to automatic visualisation systems.  We
//! provide both fallbacks: an ASCII table, and a simple horizontal bar chart for two-column
//! (label, numeric) results — the shape produced by the OLAP group-by queries of Figure 1.

use crate::storage::{Table, Value};
use std::fmt::Write as _;

/// Renders a result table as an ASCII table (header, separator, rows).
pub fn render(table: &Table) -> String {
    let headers: Vec<String> = table.columns().iter().map(|c| c.display()).collect();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(table.num_rows());
    for row in 0..table.num_rows() {
        let rendered: Vec<String> = table.row(row).iter().map(Value::to_string).collect();
        for (i, cell) in rendered.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
        rows.push(rendered);
    }

    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String], widths: &[usize]| {
        out.push('|');
        for (cell, width) in cells.iter().zip(widths) {
            let _ = write!(out, " {cell:<width$} |");
        }
        out.push('\n');
    };
    write_row(&mut out, &headers, &widths);
    out.push('|');
    for width in &widths {
        let _ = write!(out, "{}|", "-".repeat(width + 2));
    }
    out.push('\n');
    for row in &rows {
        write_row(&mut out, row, &widths);
    }
    let _ = writeln!(out, "({} rows)", table.num_rows());
    out
}

/// Renders a two-column (label, numeric) result as a horizontal bar chart; falls back to the
/// plain table when the shape does not match.
pub fn render_bar_chart(table: &Table) -> String {
    if table.num_columns() != 2 || table.is_empty() {
        return render(table);
    }
    // Decide which column is the measure.
    let numeric_col =
        (0..2).find(|&c| (0..table.num_rows()).all(|r| table.value(r, c).as_f64().is_some()));
    let Some(numeric_col) = numeric_col else {
        return render(table);
    };
    let label_col = 1 - numeric_col;
    let max = (0..table.num_rows())
        .filter_map(|r| table.value(r, numeric_col).as_f64())
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    let label_width = (0..table.num_rows())
        .map(|r| table.value(r, label_col).to_string().len())
        .max()
        .unwrap_or(4)
        .max(table.columns()[label_col].display().len());

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} by {}",
        table.columns()[numeric_col].display(),
        table.columns()[label_col].display()
    );
    for row in 0..table.num_rows() {
        let label = table.value(row, label_col).to_string();
        let value = table.value(row, numeric_col).as_f64().unwrap_or(0.0);
        let bar_len = ((value / max) * 40.0).round().max(0.0) as usize;
        let _ = writeln!(
            out,
            "{label:>label_width$} | {} {value:.1}",
            "█".repeat(bar_len)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Column;

    fn grouped_result() -> Table {
        let mut t = Table::new(vec![Column::new("DestState"), Column::new("count")]);
        t.push_row(vec![Value::Str("CA".into()), Value::Int(40)]);
        t.push_row(vec![Value::Str("NY".into()), Value::Int(10)]);
        t
    }

    #[test]
    fn table_rendering_includes_headers_rows_and_count() {
        let text = render(&grouped_result());
        assert!(text.contains("DestState"));
        assert!(text.contains("CA"));
        assert!(text.contains("(2 rows)"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn empty_tables_render_without_panicking() {
        let text = render(&Table::with_columns(&["a"]));
        assert!(text.contains("(0 rows)"));
    }

    #[test]
    fn bar_chart_scales_bars_by_value() {
        let text = render_bar_chart(&grouped_result());
        let ca_line = text.lines().find(|l| l.contains("CA")).unwrap();
        let ny_line = text.lines().find(|l| l.contains("NY")).unwrap();
        let bars = |line: &str| line.matches('█').count();
        assert!(bars(ca_line) > bars(ny_line));
        assert_eq!(bars(ca_line), 40);
    }

    #[test]
    fn bar_chart_falls_back_to_table_for_other_shapes() {
        let mut three_cols = Table::with_columns(&["a", "b", "c"]);
        three_cols.push_row(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert!(render_bar_chart(&three_cols).contains("(1 rows)"));
        let mut text_only = Table::with_columns(&["a", "b"]);
        text_only.push_row(vec![Value::Str("x".into()), Value::Str("y".into())]);
        assert!(render_bar_chart(&text_only).contains("(1 rows)"));
    }
}
