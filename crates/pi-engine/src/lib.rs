//! # pi-engine — the `exec()` / `render()` substrate
//!
//! Precision Interfaces assumes "two available functions `exec()` and `render()` that
//! respectively execute a query AST and render the output" (§3.3).  This crate provides both
//! on top of a small, self-contained in-memory columnar engine:
//!
//! * [`storage`] — typed values and columnar tables,
//! * [`catalog`] — a catalog pre-populated with synthetic OnTime and SDSS-subset data (the
//!   datasets the paper's interfaces query), plus the generic tables used by the paper's
//!   examples,
//! * [`mod@exec`] — a straightforward executor for the SQL subset produced by `pi-sql`:
//!   projections with expressions, WHERE filters, comma joins and explicit joins, derived
//!   tables, the `dbo.fGetNearbyObjEq` cone-search UDF, GROUP BY / aggregates / HAVING,
//!   ORDER BY, DISTINCT and TOP/LIMIT,
//! * [`mod@render`] — ASCII table and bar-chart rendering of query results (the `render()` half
//!   of the contract; the paper defers fancier visualisation to auto-vis systems).
//!
//! ```
//! use pi_ast::Frontend;
//! use pi_engine::{Catalog, exec, render};
//! use pi_sql::SqlFrontend;
//!
//! let catalog = Catalog::demo(42);
//! let query = SqlFrontend.parse_one(
//!     "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState",
//! ).unwrap();
//! let result = exec(&query, &catalog).unwrap();
//! assert!(result.num_rows() > 0);
//! let text = render(&result);
//! assert!(text.contains("DestState"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod exec;
pub mod render;
pub mod storage;

pub use catalog::Catalog;
pub use exec::{exec, ExecError};
pub use render::{render, render_bar_chart};
pub use storage::{Column, Table, Value};
