//! The catalog: named tables plus synthetic data for the paper's datasets.
//!
//! The paper's generated interfaces query the OnTime flight-delays dataset (Figure 1,
//! Listings 2–5) and the SDSS SkyServer tables (Listings 1 and 6).  Appendix D additionally
//! builds "a local database with a schema consistent with the tables and attributes found in
//! the queries" — this catalog plays that role, and also backs `exec()` so generated
//! interfaces can actually run their queries.

use crate::storage::{Column, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A named collection of in-memory tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table.
    pub fn register(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_ascii_lowercase(), table);
    }

    /// Looks up a table by name (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// The registered table names (lower-cased).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// `(table, columns)` pairs describing the schema — convertible into the schema map used
    /// by the precision experiment.
    pub fn schema(&self) -> Vec<(String, Vec<String>)> {
        self.tables
            .iter()
            .map(|(name, table)| {
                (
                    name.clone(),
                    table.columns().iter().map(|c| c.name.clone()).collect(),
                )
            })
            .collect()
    }

    /// A catalog pre-populated with synthetic OnTime, SDSS and example-listing tables.
    ///
    /// `seed` controls the synthetic data; sizes are kept small enough that closure
    /// enumeration and the user-study simulation run instantly.
    pub fn demo(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(0xca7a_0000 ^ seed);
        let mut catalog = Catalog::new();
        catalog.register("ontime", ontime_table(&mut rng, 600));
        catalog.register("Galaxy", galaxy_table(&mut rng, 300));
        catalog.register("PhotoObj", photoobj_table(&mut rng, 300));
        catalog.register("SpecObj", specobj_table(&mut rng, 300));
        catalog.register("SpecLineIndex", speclineindex_table(&mut rng, 300));
        catalog.register("XCRedshift", xcredshift_table(&mut rng, 300));
        // The paper's examples use both `T` (Listing 7) and `t` (Listing 4); table lookup is
        // case-insensitive, so one synthetic table carries the columns of both.
        catalog.register("t", sales_table(&mut rng, 120));
        catalog
    }
}

const STATES: &[&str] = &["CA", "NY", "TX", "WA", "IL", "GA", "FL", "CO"];
const CARRIERS: &[&str] = &["AA", "UA", "DL", "WN", "B6", "AS"];

fn ontime_table(rng: &mut StdRng, rows: usize) -> Table {
    let mut t = Table::with_columns(&[
        "Delay",
        "ArrDelay",
        "DepDelay",
        "Distance",
        "Flights",
        "DestState",
        "OriginState",
        "Carrier",
        "DayOfWeek",
        "DistanceGroup",
        "Month",
        "Day",
        "Year",
        "Cancelled",
        "carrier",
        "origin",
        "dest",
        "dayofweek",
        "deststate",
        "flights",
        "distance",
        "arrdelay",
        "depdelay",
        "cancelled",
        "uniquecarrier",
    ]);
    for _ in 0..rows {
        let carrier = CARRIERS[rng.gen_range(0..CARRIERS.len())];
        let dest = STATES[rng.gen_range(0..STATES.len())];
        let origin = STATES[rng.gen_range(0..STATES.len())];
        let delay = rng.gen_range(-10..240);
        let arr = rng.gen_range(-15..200);
        let dep = rng.gen_range(-5..180);
        let distance = rng.gen_range(100..3000);
        let flights = rng.gen_range(1..40);
        let dow = rng.gen_range(1..8);
        let month = rng.gen_range(1..13);
        let day = rng.gen_range(1..29);
        let year = rng.gen_range(1995..2009);
        let cancelled = i64::from(rng.gen_bool(0.08));
        t.push_row(vec![
            Value::Int(delay),
            Value::Int(arr),
            Value::Int(dep),
            Value::Int(distance),
            Value::Int(flights),
            Value::Str(dest.into()),
            Value::Str(origin.into()),
            Value::Str(carrier.into()),
            Value::Int(dow),
            Value::Int(distance / 500),
            Value::Int(month),
            Value::Int(day),
            Value::Int(year),
            Value::Int(cancelled),
            Value::Str(carrier.into()),
            Value::Str(origin.into()),
            Value::Str(dest.into()),
            Value::Int(dow),
            Value::Str(dest.into()),
            Value::Int(flights),
            Value::Int(distance),
            Value::Int(arr),
            Value::Int(dep),
            Value::Int(cancelled),
            Value::Str(carrier.into()),
        ]);
    }
    t
}

fn galaxy_table(rng: &mut StdRng, rows: usize) -> Table {
    let mut t = Table::with_columns(&["objID", "ra", "dec", "r", "g", "u", "petroRad_r"]);
    for i in 0..rows {
        t.push_row(vec![
            Value::Int(0x1000 + i as i64),
            Value::Float(rng.gen_range(0.0..360.0)),
            Value::Float(rng.gen_range(-90.0..90.0)),
            Value::Float(rng.gen_range(12.0..24.0)),
            Value::Float(rng.gen_range(12.0..24.0)),
            Value::Float(rng.gen_range(12.0..24.0)),
            Value::Float(rng.gen_range(0.5..20.0)),
        ]);
    }
    t
}

fn photoobj_table(rng: &mut StdRng, rows: usize) -> Table {
    let mut t = Table::with_columns(&["objID", "ra", "dec", "u", "g", "r", "i", "modelMag_r"]);
    for i in 0..rows {
        t.push_row(vec![
            Value::Int(0x8000 + i as i64),
            Value::Float(rng.gen_range(0.0..360.0)),
            Value::Float(rng.gen_range(-90.0..90.0)),
            Value::Float(rng.gen_range(12.0..24.0)),
            Value::Float(rng.gen_range(12.0..24.0)),
            Value::Float(rng.gen_range(12.0..24.0)),
            Value::Float(rng.gen_range(12.0..24.0)),
            Value::Float(rng.gen_range(8.0..22.0)),
        ]);
    }
    t
}

fn specobj_table(rng: &mut StdRng, rows: usize) -> Table {
    let mut t = Table::with_columns(&["specObjId", "z", "ra", "dec"]);
    for i in 0..rows {
        t.push_row(vec![
            Value::Int(0x100 + i as i64),
            Value::Float(rng.gen_range(0.0..0.9)),
            Value::Float(rng.gen_range(0.0..360.0)),
            Value::Float(rng.gen_range(-90.0..90.0)),
        ]);
    }
    t
}

fn speclineindex_table(rng: &mut StdRng, rows: usize) -> Table {
    let mut t = Table::with_columns(&["specObjId", "plateId", "z", "ew"]);
    for i in 0..rows {
        t.push_row(vec![
            Value::Int(0x100 + i as i64),
            Value::Int(rng.gen_range(200..900)),
            Value::Float(rng.gen_range(0.0..0.9)),
            Value::Float(rng.gen_range(-5.0..5.0)),
        ]);
    }
    t
}

fn xcredshift_table(rng: &mut StdRng, rows: usize) -> Table {
    let mut t = Table::with_columns(&["specObjId", "tempNo", "z"]);
    for i in 0..rows {
        t.push_row(vec![
            Value::Int(0x100 + i as i64),
            Value::Int(rng.gen_range(1..32)),
            Value::Float(rng.gen_range(0.0..0.9)),
        ]);
    }
    t
}

fn sales_table(rng: &mut StdRng, rows: usize) -> Table {
    let customers = ["Alice", "Bob", "Carol", "Dave"];
    let countries = ["China", "USA", "EUR"];
    let mut t = Table::new(vec![
        Column::new("spec_ts"),
        Column::new("price"),
        Column::new("action"),
        Column::new("customer"),
        Column::new("cust"),
        Column::new("country"),
        Column::new("now"),
        Column::new("sales"),
        Column::new("costs"),
        Column::new("day"),
        Column::new("cty"),
        Column::new("x"),
        Column::new("y"),
        Column::new("a"),
        Column::new("b"),
        Column::new("c"),
        Column::new("d"),
        Column::new("e"),
    ]);
    for i in 0..rows {
        let cust = customers[rng.gen_range(0..customers.len())];
        let country = countries[rng.gen_range(0..countries.len())];
        t.push_row(vec![
            Value::Int(i as i64 % 24),
            Value::Float(rng.gen_range(1.0..500.0)),
            Value::Str(["view", "buy", "return"][rng.gen_range(0..3)].into()),
            Value::Int(rng.gen_range(1..50)),
            Value::Str(cust.into()),
            Value::Str(country.into()),
            Value::Int(0),
            Value::Float(rng.gen_range(0.0..1000.0)),
            Value::Float(rng.gen_range(0.0..800.0)),
            Value::Int(i as i64 % 7),
            Value::Str(country.into()),
            Value::Int(rng.gen_range(0..10)),
            Value::Int(rng.gen_range(0..10)),
            Value::Int(rng.gen_range(0..100)),
            Value::Int(rng.gen_range(0..100)),
            Value::Int(rng.gen_range(0..100)),
            Value::Int(rng.gen_range(0..100)),
            Value::Int(rng.gen_range(0..100)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_catalog_registers_all_paper_tables() {
        let catalog = Catalog::demo(1);
        for table in [
            "ontime",
            "Galaxy",
            "SpecLineIndex",
            "XCRedshift",
            "SpecObj",
            "PhotoObj",
            "T",
            "t",
        ] {
            assert!(catalog.table(table).is_some(), "missing {table}");
            assert!(!catalog.table(table).unwrap().is_empty());
        }
        assert!(
            catalog.table("ONTIME").is_some(),
            "lookup is case-insensitive"
        );
        assert!(catalog.table("nope").is_none());
    }

    #[test]
    fn demo_catalog_is_deterministic_per_seed() {
        let a = Catalog::demo(7);
        let b = Catalog::demo(7);
        assert_eq!(
            a.table("ontime").unwrap().row(0),
            b.table("ontime").unwrap().row(0)
        );
        let c = Catalog::demo(8);
        assert_ne!(
            a.table("ontime").unwrap().row(0),
            c.table("ontime").unwrap().row(0)
        );
    }

    #[test]
    fn schema_reports_tables_and_columns() {
        let catalog = Catalog::demo(1);
        let schema = catalog.schema();
        assert_eq!(schema.len(), catalog.table_names().len());
        let ontime = schema.iter().find(|(t, _)| t == "ontime").unwrap();
        assert!(ontime.1.iter().any(|c| c == "DestState"));
    }

    #[test]
    fn register_replaces_existing_tables() {
        let mut catalog = Catalog::new();
        catalog.register("x", Table::with_columns(&["a"]));
        let mut bigger = Table::with_columns(&["a", "b"]);
        bigger.push_row(vec![Value::Int(1), Value::Int(2)]);
        catalog.register("X", bigger);
        assert_eq!(catalog.table("x").unwrap().num_columns(), 2);
        assert_eq!(catalog.table_names(), vec!["x"]);
    }
}
