//! Typed values and columnar tables.

use std::cmp::Ordering;
use std::fmt;

/// A single scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Numeric view of the value (ints widen, bools are 0/1, strings parse if possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(s) => s.parse().ok(),
            Value::Null => None,
        }
    }

    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Truthiness used by WHERE/HAVING evaluation (NULL counts as false).
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Null => false,
        }
    }

    /// SQL comparison: numerics compare numerically, strings lexically; NULL is incomparable.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// SQL equality (used by predicates and grouping).
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }

    /// A stable string used as a grouping key.
    pub fn group_key(&self) -> String {
        match self {
            Value::Int(i) => format!("i{i}"),
            Value::Float(f) => format!("f{f}"),
            Value::Str(s) => format!("s{s}"),
            Value::Bool(b) => format!("b{b}"),
            Value::Null => "null".to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v:.4}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

/// A named column with an optional table/alias qualifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// The qualifier (table name or alias) the column belongs to, if any.
    pub qualifier: Option<String>,
    /// The column name.
    pub name: String,
}

impl Column {
    /// An unqualified column.
    pub fn new(name: &str) -> Self {
        Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    /// A qualified column.
    pub fn qualified(qualifier: &str, name: &str) -> Self {
        Column {
            qualifier: Some(qualifier.to_string()),
            name: name.to_string(),
        }
    }

    /// True when this column answers to the given reference.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .map(|own| own.eq_ignore_ascii_case(q))
                .unwrap_or(false),
        }
    }

    /// Display name used in result headers.
    pub fn display(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An in-memory table stored column-wise.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    columns: Vec<Column>,
    data: Vec<Vec<Value>>, // one Vec<Value> per column
}

impl Table {
    /// Creates an empty table with the given columns.
    pub fn new(columns: Vec<Column>) -> Self {
        let data = columns.iter().map(|_| Vec::new()).collect();
        Table { columns, data }
    }

    /// Creates a table with unqualified column names.
    pub fn with_columns(names: &[&str]) -> Self {
        Table::new(names.iter().map(|n| Column::new(n)).collect())
    }

    /// The table's columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.data.first().map(Vec::len).unwrap_or(0)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Appends a row; panics if the arity does not match (an internal invariant).
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (column, value) in self.data.iter_mut().zip(row) {
            column.push(value);
        }
    }

    /// The value at (row, column).
    pub fn value(&self, row: usize, column: usize) -> &Value {
        &self.data[column][row]
    }

    /// One row, materialised.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.data.iter().map(|col| col[row].clone()).collect()
    }

    /// All values of one column.
    pub fn column_values(&self, column: usize) -> &[Value] {
        &self.data[column]
    }

    /// Finds the index of the column answering to a reference; ambiguous unqualified
    /// references resolve to the first match (SQL engines error here; for the synthetic
    /// workloads first-match is sufficient and keeps the executor simple).
    pub fn column_index(&self, qualifier: Option<&str>, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.matches(qualifier, name))
    }

    /// Builds a new table with the same columns containing only the selected rows.
    pub fn filter_rows(&self, keep: &[usize]) -> Table {
        let mut out = Table::new(self.columns.clone());
        for &row in keep {
            out.push_row(self.row(row));
        }
        out
    }

    /// Cartesian product of two tables (used by comma joins before the WHERE filter).
    pub fn cross_join(&self, other: &Table) -> Table {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        let mut out = Table::new(columns);
        for left in 0..self.num_rows() {
            for right in 0..other.num_rows() {
                let mut row = self.row(left);
                row.extend(other.row(right));
                out.push_row(row);
            }
        }
        out
    }

    /// Re-qualifies every column with the given alias (FROM-clause aliasing).
    pub fn with_qualifier(mut self, qualifier: &str) -> Table {
        for column in &mut self.columns {
            column.qualifier = Some(qualifier.to_string());
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::with_columns(&["name", "age"]);
        t.push_row(vec![Value::Str("ada".into()), Value::Int(36)]);
        t.push_row(vec![Value::Str("bob".into()), Value::Int(29)]);
        t
    }

    #[test]
    fn value_comparisons_follow_sql_semantics() {
        assert!(Value::Int(3).sql_eq(&Value::Float(3.0)));
        assert_eq!(Value::Int(2).compare(&Value::Int(5)), Some(Ordering::Less));
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert!(!Value::Null.is_truthy());
        assert!(Value::Str("x".into()).is_truthy());
        assert_eq!(Value::Str("12".into()).as_f64(), Some(12.0));
    }

    #[test]
    fn display_formats_values() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn table_round_trips_rows() {
        let t = people();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.value(1, 0), &Value::Str("bob".into()));
        assert_eq!(t.row(0), vec![Value::Str("ada".into()), Value::Int(36)]);
    }

    #[test]
    fn column_lookup_respects_qualifiers() {
        let t = people().with_qualifier("p");
        assert!(t.column_index(None, "name").is_some());
        assert!(t.column_index(Some("p"), "AGE").is_some());
        assert!(t.column_index(Some("q"), "age").is_none());
        assert_eq!(t.columns()[0].display(), "p.name");
    }

    #[test]
    fn filter_and_cross_join() {
        let t = people();
        let only_ada = t.filter_rows(&[0]);
        assert_eq!(only_ada.num_rows(), 1);
        let joined = t.cross_join(&only_ada.with_qualifier("x"));
        assert_eq!(joined.num_rows(), 2);
        assert_eq!(joined.num_columns(), 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_is_a_bug() {
        let mut t = people();
        t.push_row(vec![Value::Int(1)]);
    }
}
