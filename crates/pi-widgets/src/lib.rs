//! # pi-widgets — the interaction widget library
//!
//! Widgets are the interface-side of the unified model of §4.3: a widget type `WT` is a pair
//! `(r_WT, c_WT)` of a *rule* that decides which domains (sets of subtrees) the type can
//! express, and a *cost function* that estimates how expensive the widget is to use as a
//! function of its domain size.  A widget *instance* `w` fixes a path `w.p` in the query AST
//! and a domain `w.d` initialised from a subset `w.D` of the diffs table.
//!
//! This crate provides:
//!
//! * the nine HTML widget types of the paper's prototype ([`WidgetType`]),
//! * their rules ([`WidgetType::accepts`]) over [`Domain`]s,
//! * polynomial cost functions `c(n) = a0 + a1·n + a2·n²` ([`CostFunction`]), including the
//!   published constants for drop-downs and text boxes (Example 4.4),
//! * least-squares fitting of cost parameters from interaction timing traces ([`fit`]),
//! * widget instances ([`Widget`]) with domain membership / expressiveness checks, including
//!   the numeric-range extrapolation sliders get (Example 4.3),
//! * a [`WidgetLibrary`] bundling types with cost functions, used by the mapper's
//!   `pickWidget` (Algorithm 2).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cost;
mod domain;
pub mod fit;
mod library;
mod types;
mod widget;

pub use cost::CostFunction;
pub use domain::Domain;
pub use library::WidgetLibrary;
pub use types::WidgetType;
pub use widget::Widget;
