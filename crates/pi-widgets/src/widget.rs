//! Widget instances: a widget type bound to a path and a domain.

use crate::domain::Domain;
use crate::types::WidgetType;
use pi_ast::{Node, Path, PrimitiveType};
use pi_diff::{DiffId, DiffRecord};

/// A widget instance `w`: a widget type instantiated at a path `w.p` with a domain `w.d`
/// initialised from a subset `w.D` of the diffs table (§4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Widget {
    /// The widget type.
    pub ty: WidgetType,
    /// The path in the query AST this widget modifies.
    pub path: Path,
    /// The set of subtrees the widget can place at `path`.
    pub domain: Domain,
    /// The diff record ids used to initialise the widget (`w.D`).
    pub init_diffs: Vec<DiffId>,
    /// The widget's cost `c_WT(|w.d|)` under the library that instantiated it.
    pub cost: f64,
    /// Optional user-facing label (editable in the interface editor, §5.3).
    pub label: Option<String>,
}

impl Widget {
    /// Creates a widget instance.
    pub fn new(
        ty: WidgetType,
        path: Path,
        domain: Domain,
        init_diffs: Vec<DiffId>,
        cost: f64,
    ) -> Self {
        Widget {
            ty,
            path,
            domain,
            init_diffs,
            cost,
            label: None,
        }
    }

    /// Sets a user-facing label (builder style).
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = Some(label.to_string());
        self
    }

    /// Whether this widget can place the given subtree (or absence, for `None`) at its path.
    ///
    /// Enumerating widgets (drop-down, radio, …) only express the exact subtrees in their
    /// domain; sliders extrapolate to the observed numeric range (Example 4.3); text boxes can
    /// express *any* literal value of a compatible primitive type.
    pub fn can_express_subtree(&self, subtree: Option<&Node>) -> bool {
        match subtree {
            None => self.domain.includes_absent(),
            Some(node) => match self.ty {
                WidgetType::Slider | WidgetType::RangeSlider => {
                    self.domain.contains_extrapolated(node)
                }
                WidgetType::Textbox => {
                    node.primitive_type().castable_to(PrimitiveType::Str)
                        || self.domain.contains_exact(node)
                }
                _ => self.domain.contains_exact(node),
            },
        }
    }

    /// The expressiveness check of §4.3: widget `w` expresses diff `d` iff their paths match
    /// and the target subtree `t2` is within the widget's domain.
    pub fn expresses(&self, diff: &DiffRecord) -> bool {
        self.path == diff.path && self.can_express_subtree(diff.after.as_ref())
    }

    /// The display label: the user-provided one, or a generated description of what the
    /// widget modifies.
    pub fn display_label(&self) -> String {
        if let Some(label) = &self.label {
            return label.clone();
        }
        let what = self
            .domain
            .subtrees()
            .first()
            .map(|n| n.label())
            .unwrap_or_else(|| "(empty)".to_string());
        format!("{} @ {} ({})", self.ty, self.path, what)
    }

    /// One-line description used by experiment output (Figure 5/6 widget listings).
    pub fn describe(&self) -> String {
        let opts = self.domain.option_labels();
        let shown: Vec<&str> = opts.iter().map(String::as_str).take(6).collect();
        let suffix = if opts.len() > 6 {
            format!(", … ({} options)", opts.len())
        } else {
            String::new()
        };
        format!(
            "{:>13} @ {:<8} [{}{}]  cost={:.0}",
            self.ty.to_string(),
            self.path.to_string(),
            shown.join(", "),
            suffix,
            self.cost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;
    use pi_diff::{extract_diffs, AncestorPolicy};

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    fn slider_widget() -> Widget {
        let domain = Domain::from_subtrees(vec![Node::int(1), Node::int(100)]);
        let cost = WidgetType::Slider.default_cost().eval(domain.size());
        Widget::new(
            WidgetType::Slider,
            "2/0/1".parse().unwrap(),
            domain,
            vec![],
            cost,
        )
    }

    #[test]
    fn slider_extrapolates_but_dropdown_does_not() {
        let slider = slider_widget();
        assert!(slider.can_express_subtree(Some(&Node::int(42))));
        assert!(!slider.can_express_subtree(Some(&Node::int(1000))));
        assert!(!slider.can_express_subtree(None));

        let domain = Domain::from_subtrees(vec![Node::int(1), Node::int(100)]);
        let dd = Widget::new(
            WidgetType::Dropdown,
            "2/0/1".parse().unwrap(),
            domain,
            vec![],
            0.0,
        );
        assert!(dd.can_express_subtree(Some(&Node::int(1))));
        assert!(!dd.can_express_subtree(Some(&Node::int(42))));
    }

    #[test]
    fn textbox_expresses_any_literal() {
        let domain = Domain::from_subtrees(vec![Node::string("Alice")]);
        let tb = Widget::new(
            WidgetType::Textbox,
            "2/0/1".parse().unwrap(),
            domain,
            vec![],
            4790.0,
        );
        assert!(tb.can_express_subtree(Some(&Node::string("Bob"))));
        assert!(tb.can_express_subtree(Some(&Node::int(7))));
        assert!(!tb.can_express_subtree(Some(&parse("SELECT 1").unwrap())));
    }

    #[test]
    fn expresses_requires_matching_path_and_domain() {
        let q1 = parse("SELECT a FROM t WHERE x = 1").unwrap();
        let q2 = parse("SELECT a FROM t WHERE x = 50").unwrap();
        let q3 = parse("SELECT b FROM t WHERE x = 1").unwrap();
        let d_num = &extract_diffs(&q1, &q2, 0, 1, AncestorPolicy::LcaPruned)[0];
        let d_col = &extract_diffs(&q1, &q3, 0, 2, AncestorPolicy::LcaPruned)[0];

        let slider = slider_widget();
        assert!(slider.expresses(d_num));
        assert!(
            !slider.expresses(d_col),
            "different path must not be expressed"
        );
    }

    #[test]
    fn presence_domains_express_deletions() {
        let q1 = parse("SELECT g FROM t").unwrap();
        let q2 = parse("SELECT TOP 1 g FROM t").unwrap();
        let records = extract_diffs(&q1, &q2, 0, 1, AncestorPolicy::LcaPruned);
        let add = &records[0];
        let domain = Domain::from_diffs(records.iter());
        let toggle = Widget::new(
            WidgetType::ToggleButton,
            add.path.clone(),
            domain,
            vec![],
            335.0,
        );
        assert!(toggle.expresses(add));
        // The inverse direction (deleting the TOP clause) is a diff with after = None.
        let inverse = extract_diffs(&q2, &q1, 1, 0, AncestorPolicy::LcaPruned);
        let del = &inverse[0];
        assert!(toggle.can_express_subtree(del.after.as_ref()));
    }

    #[test]
    fn labels_and_descriptions() {
        let w = slider_widget().with_label("threshold");
        assert_eq!(w.display_label(), "threshold");
        let w2 = slider_widget();
        assert!(w2.display_label().contains("slider"));
        assert!(w2.describe().contains("cost="));
    }
}
