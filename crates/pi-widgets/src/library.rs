//! The widget library: types plus cost functions, and the `pickWidget` primitive.

use crate::cost::CostFunction;
use crate::domain::Domain;
use crate::fit::{fit_cost, TracePoint};
use crate::types::WidgetType;
use crate::widget::Widget;
use pi_ast::Path;
use pi_diff::DiffId;
use std::collections::BTreeMap;

/// A library `L` of widget types with their cost functions.
///
/// The mapper's `pickWidget(W_p, L)` (Algorithm 2) asks the library for the lowest-cost type
/// whose rule accepts a domain; the library is also the place where per-user cost
/// personalisation lives (§4.3 footnote: a strongly preferred widget type can simply be given
/// a very low constant).
#[derive(Debug, Clone)]
pub struct WidgetLibrary {
    costs: BTreeMap<WidgetType, CostFunction>,
}

impl Default for WidgetLibrary {
    fn default() -> Self {
        Self::standard()
    }
}

impl WidgetLibrary {
    /// The standard library: all nine types with their default cost functions.
    pub fn standard() -> Self {
        let costs = WidgetType::all()
            .into_iter()
            .map(|ty| (ty, ty.default_cost()))
            .collect();
        WidgetLibrary { costs }
    }

    /// A library restricted to a subset of widget types (used by ablations and by the
    /// user-study interface which, like the original SDSS form, only offers text boxes).
    pub fn restricted<I: IntoIterator<Item = WidgetType>>(types: I) -> Self {
        let costs = types
            .into_iter()
            .map(|ty| (ty, ty.default_cost()))
            .collect();
        WidgetLibrary { costs }
    }

    /// Overrides the cost function of one widget type.
    pub fn with_cost(mut self, ty: WidgetType, cost: CostFunction) -> Self {
        self.costs.insert(ty, cost);
        self
    }

    /// Re-fits the cost function of one widget type from timing traces.
    pub fn with_fitted_cost(self, ty: WidgetType, trace: &[TracePoint]) -> Self {
        let fitted = fit_cost(trace);
        self.with_cost(ty, fitted)
    }

    /// The cost function of a type (its default if the library does not carry the type).
    pub fn cost_of(&self, ty: WidgetType) -> CostFunction {
        self.costs
            .get(&ty)
            .copied()
            .unwrap_or_else(|| ty.default_cost())
    }

    /// The widget types available in this library.
    pub fn types(&self) -> impl Iterator<Item = WidgetType> + '_ {
        self.costs.keys().copied()
    }

    /// The types whose rules accept the given domain, cheapest first.
    pub fn valid_types(&self, domain: &Domain) -> Vec<(WidgetType, f64)> {
        let mut out: Vec<(WidgetType, f64)> = self
            .costs
            .iter()
            .filter(|(ty, _)| ty.accepts(domain))
            .map(|(ty, cost)| (*ty, cost.eval(domain.size())))
            .collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        out
    }

    /// Algorithm 2 (`pickWidget`): instantiate the lowest-cost widget type that accepts the
    /// domain.  Returns `None` when the domain is empty or no type in the library accepts it.
    pub fn pick(&self, path: Path, domain: Domain, init_diffs: Vec<DiffId>) -> Option<Widget> {
        let (ty, cost) = self.valid_types(&domain).into_iter().next()?;
        Some(Widget::new(ty, path, domain, init_diffs, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;
    use pi_ast::Node;

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    #[test]
    fn pick_selects_slider_for_numeric_literals() {
        let lib = WidgetLibrary::standard();
        let domain = Domain::from_subtrees(vec![Node::int(3), Node::int(9)]);
        let w = lib.pick(Path::root(), domain, vec![]).unwrap();
        assert_eq!(w.ty, WidgetType::Slider);
    }

    #[test]
    fn pick_selects_dropdown_for_small_string_sets_and_textbox_for_large() {
        let lib = WidgetLibrary::standard();
        let small = Domain::from_subtrees((0..4).map(|i| Node::string(&format!("c{i}"))));
        assert_eq!(
            lib.pick(Path::root(), small, vec![]).unwrap().ty,
            WidgetType::Dropdown
        );
        let large = Domain::from_subtrees((0..80).map(|i| Node::string(&format!("c{i}"))));
        assert_eq!(
            lib.pick(Path::root(), large, vec![]).unwrap().ty,
            WidgetType::Textbox
        );
    }

    #[test]
    fn pick_selects_toggle_for_two_trees_and_radio_for_a_few() {
        let lib = WidgetLibrary::standard();
        let two = Domain::from_subtrees(vec![
            parse("SELECT a FROM t").unwrap(),
            parse("SELECT b FROM t").unwrap(),
        ]);
        assert_eq!(
            lib.pick(Path::root(), two, vec![]).unwrap().ty,
            WidgetType::ToggleButton
        );
        let three = Domain::from_subtrees(vec![
            parse("SELECT avg(a)").unwrap(),
            parse("SELECT count(b)").unwrap(),
            parse("SELECT count(c)").unwrap(),
        ]);
        assert_eq!(
            lib.pick(Path::root(), three, vec![]).unwrap().ty,
            WidgetType::RadioButton
        );
    }

    #[test]
    fn pick_selects_a_presence_toggle_for_additions() {
        let lib = WidgetLibrary::standard();
        let mut presence = Domain::from_subtrees(vec![parse("SELECT 1").unwrap()]);
        presence.set_includes_absent(true);
        let w = lib.pick(Path::root(), presence, vec![]).unwrap();
        assert!(
            w.ty == WidgetType::ToggleButton || w.ty == WidgetType::Checkbox,
            "got {:?}",
            w.ty
        );
    }

    #[test]
    fn empty_domains_yield_no_widget() {
        let lib = WidgetLibrary::standard();
        assert!(lib.pick(Path::root(), Domain::new(), vec![]).is_none());
    }

    #[test]
    fn restricted_library_only_offers_its_types() {
        let lib = WidgetLibrary::restricted([WidgetType::Textbox]);
        assert_eq!(lib.types().count(), 1);
        let domain = Domain::from_subtrees(vec![Node::int(3), Node::int(9)]);
        let w = lib.pick(Path::root(), domain, vec![]).unwrap();
        assert_eq!(w.ty, WidgetType::Textbox);
        // a tree domain has no valid widget in this library
        let trees =
            Domain::from_subtrees(vec![parse("SELECT 1").unwrap(), parse("SELECT 2").unwrap()]);
        assert!(lib.pick(Path::root(), trees, vec![]).is_none());
    }

    #[test]
    fn cost_personalisation_changes_the_choice() {
        // §4.3 footnote: a user who strongly prefers text boxes can set its constant very low.
        let lib =
            WidgetLibrary::standard().with_cost(WidgetType::Textbox, CostFunction::constant(1.0));
        let domain = Domain::from_subtrees(vec![Node::string("a"), Node::string("b")]);
        assert_eq!(
            lib.pick(Path::root(), domain, vec![]).unwrap().ty,
            WidgetType::Textbox
        );
    }

    #[test]
    fn fitted_costs_integrate_with_the_library() {
        use crate::fit::TracePoint;
        let trace: Vec<TracePoint> = (1..=30)
            .map(|n| TracePoint {
                n,
                millis: 100.0 + 5.0 * n as f64,
            })
            .collect();
        let lib = WidgetLibrary::standard().with_fitted_cost(WidgetType::Dropdown, &trace);
        let c = lib.cost_of(WidgetType::Dropdown);
        assert!((c.eval(10) - 150.0).abs() < 5.0);
    }

    #[test]
    fn valid_types_are_sorted_by_cost() {
        let lib = WidgetLibrary::standard();
        let domain = Domain::from_subtrees(vec![Node::int(1), Node::int(2)]);
        let types = lib.valid_types(&domain);
        assert!(!types.is_empty());
        for pair in types.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }
}
