//! Least-squares fitting of widget cost functions from interaction timing traces.
//!
//! The paper derives each widget type's cost coefficients by timing interactions with widgets
//! instantiated at different domain sizes and fitting the quadratic model to the traces
//! ("following prior interface personalization literature", §4.3).  We do not have the human
//! traces, so `pi-workloads` *simulates* them (per-widget base times plus scan/search terms
//! with noise), and this module provides the ordinary-least-squares fit used for both
//! simulated and real traces.

use crate::cost::CostFunction;

/// One timing observation: interacting with a widget whose domain held `n` options took
/// `millis` milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Domain size during the interaction.
    pub n: usize,
    /// Observed interaction time in milliseconds.
    pub millis: f64,
}

/// Fits `c(n) = a0 + a1·n + a2·n²` to timing observations by ordinary least squares.
///
/// Negative coefficients (which can arise from noise) are clamped to zero, matching the
/// paper's non-negativity constraint.  Returns a constant zero-cost function for an empty
/// trace.
pub fn fit_cost(points: &[TracePoint]) -> CostFunction {
    // Non-finite timings (NaN/∞ from corrupted or sentinel trace entries) would poison the
    // normal equations and propagate into every coefficient; ignore them up front.
    let points: Vec<TracePoint> = points
        .iter()
        .filter(|p| p.millis.is_finite())
        .copied()
        .collect();
    if points.is_empty() {
        return CostFunction::constant(0.0);
    }
    if points.len() < 3 {
        // Not enough observations to identify three coefficients: fall back to the mean.
        let mean = points.iter().map(|p| p.millis).sum::<f64>() / points.len() as f64;
        return CostFunction::constant(mean);
    }

    // Build the normal equations (XᵀX) a = Xᵀy for the design matrix X = [1, n, n²].
    let mut xtx = [[0.0f64; 3]; 3];
    let mut xty = [0.0f64; 3];
    for p in &points {
        let n = p.n as f64;
        let row = [1.0, n, n * n];
        for i in 0..3 {
            for j in 0..3 {
                xtx[i][j] += row[i] * row[j];
            }
            xty[i] += row[i] * p.millis;
        }
    }

    match solve3(xtx, xty) {
        Some([a0, a1, a2]) => CostFunction::new(a0, a1, a2),
        None => {
            // Singular system (e.g. all observations share one domain size): fit the mean.
            let mean = points.iter().map(|p| p.millis).sum::<f64>() / points.len() as f64;
            CostFunction::constant(mean)
        }
    }
}

/// Solves a 3×3 linear system by Gaussian elimination with partial pivoting.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        // pivot — `total_cmp` so a NaN entry (overflow, corrupt input) orders
        // deterministically instead of panicking the comparator.  `total_cmp` ranks NaN
        // above every finite magnitude, so a NaN column would be chosen as pivot; reject
        // it explicitly and report the system as singular.
        let pivot_row = (col..3)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("pivot search range is non-empty");
        if a[pivot_row][col].is_nan() {
            return None;
        }
        if a[pivot_row][col].abs() < 1e-9 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        // eliminate
        for row in (col + 1)..3 {
            let factor = a[row][col] / a[col][col];
            let pivot = a[col];
            for (dst, src) in a[row].iter_mut().zip(pivot.iter()).skip(col) {
                *dst -= factor * src;
            }
            b[row] -= factor * b[col];
        }
    }
    // back substitution
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut sum = b[row];
        for k in (row + 1)..3 {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// Mean squared error of a cost function against a trace, for goodness-of-fit reporting.
pub fn mse(cost: &CostFunction, points: &[TracePoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points
        .iter()
        .map(|p| {
            let err = cost.eval(p.n) - p.millis;
            err * err
        })
        .sum::<f64>()
        / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(points: &[(usize, f64)]) -> Vec<TracePoint> {
        points
            .iter()
            .map(|&(n, millis)| TracePoint { n, millis })
            .collect()
    }

    #[test]
    fn recovers_exact_quadratic() {
        let truth = CostFunction::new(300.0, 120.0, 0.5);
        let pts: Vec<TracePoint> = (1..=40)
            .map(|n| TracePoint {
                n,
                millis: truth.eval(n),
            })
            .collect();
        let fitted = fit_cost(&pts);
        assert!((fitted.a0 - truth.a0).abs() < 1e-6, "{fitted:?}");
        assert!((fitted.a1 - truth.a1).abs() < 1e-6);
        assert!((fitted.a2 - truth.a2).abs() < 1e-6);
        assert!(mse(&fitted, &pts) < 1e-6);
    }

    #[test]
    fn recovers_constant_model_for_textbox_like_traces() {
        let pts = synth(&[(1, 4800.0), (5, 4770.0), (20, 4810.0), (50, 4780.0)]);
        let fitted = fit_cost(&pts);
        // a constant dominates; linear/quadratic terms are tiny
        assert!(fitted.eval(1) > 4000.0 && fitted.eval(1) < 5500.0);
        assert!(fitted.eval(50) > 4000.0 && fitted.eval(50) < 5500.0);
    }

    #[test]
    fn noisy_fit_stays_close_to_truth() {
        let truth = CostFunction::paper_dropdown();
        // deterministic "noise" of ±40ms
        let pts: Vec<TracePoint> = (1..=60)
            .map(|n| TracePoint {
                n,
                millis: truth.eval(n) + if n % 2 == 0 { 40.0 } else { -40.0 },
            })
            .collect();
        let fitted = fit_cost(&pts);
        for n in [2usize, 10, 30, 60] {
            let rel = (fitted.eval(n) - truth.eval(n)).abs() / truth.eval(n);
            assert!(rel < 0.15, "n={n} rel={rel}");
        }
    }

    #[test]
    fn degenerate_traces_fall_back_gracefully() {
        assert_eq!(fit_cost(&[]).eval(10), 0.0);
        let single = synth(&[(3, 500.0)]);
        assert_eq!(fit_cost(&single).eval(10), 500.0);
        // all observations at the same n -> singular system -> mean
        let same_n = synth(&[(5, 100.0), (5, 200.0), (5, 300.0)]);
        assert!((fit_cost(&same_n).eval(5) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        // Regression: a NaN/∞ timing used to poison the normal equations (every coefficient
        // became NaN).  The fit must equal the fit of the finite observations alone.
        let truth = CostFunction::new(300.0, 120.0, 0.5);
        let clean: Vec<TracePoint> = (1..=40)
            .map(|n| TracePoint {
                n,
                millis: truth.eval(n),
            })
            .collect();
        let mut dirty = clean.clone();
        dirty.insert(
            7,
            TracePoint {
                n: 3,
                millis: f64::NAN,
            },
        );
        dirty.push(TracePoint {
            n: 11,
            millis: f64::INFINITY,
        });
        dirty.push(TracePoint {
            n: 12,
            millis: f64::NEG_INFINITY,
        });
        let fitted = fit_cost(&dirty);
        assert!(fitted.a0.is_finite() && fitted.a1.is_finite() && fitted.a2.is_finite());
        let reference = fit_cost(&clean);
        assert!((fitted.a0 - reference.a0).abs() < 1e-9);
        assert!((fitted.a1 - reference.a1).abs() < 1e-9);
        assert!((fitted.a2 - reference.a2).abs() < 1e-9);
        // A trace of only non-finite observations degrades to the empty-trace fallback.
        let all_bad = synth(&[(1, f64::NAN), (2, f64::INFINITY)]);
        assert_eq!(fit_cost(&all_bad).eval(10), 0.0);
    }

    #[test]
    fn solve3_tolerates_nan_entries() {
        // Regression: pivot selection used `partial_cmp(..).unwrap()`, which panics on NaN.
        let nan = f64::NAN;
        assert_eq!(solve3([[nan; 3]; 3], [1.0, 2.0, 3.0]), None);
        let mut a = [[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]];
        a[1][0] = nan;
        assert_eq!(solve3(a, [1.0, 2.0, 3.0]), None);
        // A NaN right-hand side must not panic either (coefficients may be NaN, but the
        // caller filters non-finite observations before ever building such a system).
        let ok = [[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]];
        let _ = solve3(ok, [nan, 2.0, 3.0]);
    }

    #[test]
    fn clamps_negative_coefficients() {
        // A decreasing trace would fit a negative slope; the constraint clamps it.
        let pts = synth(&[(1, 1000.0), (10, 800.0), (20, 600.0), (30, 400.0)]);
        let fitted = fit_cost(&pts);
        assert!(fitted.a1 >= 0.0);
        assert!(fitted.a2 >= 0.0);
    }
}
