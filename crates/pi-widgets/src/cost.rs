//! Polynomial widget cost functions.
//!
//! Following §4.3, the cost of interacting with a widget is modelled as a low-dimensional
//! polynomial of the domain size, `c(n) = a0 + a1·n + a2·n²`, with non-negative coefficients.
//! The paper fits these from human interaction timing traces (in milliseconds); Example 4.4
//! publishes the fitted constants for drop-downs and text boxes, which are reproduced in
//! [`CostFunction::paper_dropdown`] and [`CostFunction::paper_textbox`].

/// A quadratic cost model `c(n) = a0 + a1·n + a2·n²` (milliseconds as a function of domain
/// size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostFunction {
    /// Constant term (fixed cost of locating and activating the widget).
    pub a0: f64,
    /// Linear term (scanning the options).
    pub a1: f64,
    /// Quadratic term (search difficulty in long lists).
    pub a2: f64,
}

impl CostFunction {
    /// Creates a cost function, clamping coefficients to be non-negative (the paper requires
    /// `a_i ≥ 0` so that cost grows monotonically with domain size).
    pub fn new(a0: f64, a1: f64, a2: f64) -> Self {
        CostFunction {
            a0: a0.max(0.0),
            a1: a1.max(0.0),
            a2: a2.max(0.0),
        }
    }

    /// A constant cost function.
    pub fn constant(a0: f64) -> Self {
        Self::new(a0, 0.0, 0.0)
    }

    /// The drop-down cost function published in Example 4.4: `276 + 125·n + 0.07·n²`.
    pub fn paper_dropdown() -> Self {
        Self::new(276.0, 125.0, 0.07)
    }

    /// The text-box cost function published in Example 4.4: a constant `4790`.
    pub fn paper_textbox() -> Self {
        Self::constant(4790.0)
    }

    /// Evaluates the cost for a domain of size `n`.
    pub fn eval(&self, n: usize) -> f64 {
        let n = n as f64;
        self.a0 + self.a1 * n + self.a2 * n * n
    }

    /// The domain size at which `self` becomes more expensive than `other`, if any
    /// (searched over 1..=10_000).  Used to sanity-check crossover behaviour, e.g. drop-down
    /// vs text box crossing near n ≈ 34.
    pub fn crossover_with(&self, other: &CostFunction) -> Option<usize> {
        (1..=10_000).find(|&n| self.eval(n) > other.eval(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_the_polynomial() {
        let c = CostFunction::new(10.0, 2.0, 0.5);
        assert_eq!(c.eval(0), 10.0);
        assert_eq!(c.eval(2), 10.0 + 4.0 + 2.0);
    }

    #[test]
    fn coefficients_are_clamped_non_negative() {
        let c = CostFunction::new(-5.0, -1.0, 2.0);
        assert_eq!(c.a0, 0.0);
        assert_eq!(c.a1, 0.0);
        assert_eq!(c.a2, 2.0);
    }

    #[test]
    fn paper_constants_match_example_4_4() {
        let d = CostFunction::paper_dropdown();
        assert_eq!(d.eval(1), 276.0 + 125.0 + 0.07);
        let t = CostFunction::paper_textbox();
        assert_eq!(t.eval(1), 4790.0);
        assert_eq!(t.eval(100), 4790.0);
    }

    #[test]
    fn dropdown_beats_textbox_only_for_small_domains() {
        // Example 4.4: a drop-down is cheaper for small domains, a text box for large ones.
        let d = CostFunction::paper_dropdown();
        let t = CostFunction::paper_textbox();
        assert!(d.eval(3) < t.eval(3));
        assert!(d.eval(100) > t.eval(100));
        let crossover = d.crossover_with(&t).unwrap();
        assert!(
            (30..=40).contains(&crossover),
            "crossover at {crossover}, expected ≈ 34-36"
        );
    }

    #[test]
    fn monotone_in_domain_size() {
        let c = CostFunction::paper_dropdown();
        let mut prev = c.eval(0);
        for n in 1..200 {
            let cur = c.eval(n);
            assert!(cur >= prev);
            prev = cur;
        }
    }
}
