//! Widget domains: the set of subtrees a widget can put at its path.

use pi_ast::{Dialect, Node, NodeId, PrimitiveType};
use pi_diff::DiffRecord;
use std::collections::BTreeSet;

/// The domain `w.d` of a widget: the subtrees the widget can substitute at its path, plus
/// metadata the widget rules and cost functions need (primitive type, numeric range,
/// whether "no subtree at all" is one of the options).
///
/// Each subtree carries the [`Dialect`] of the query it was first observed in, so a
/// mixed-log interface can render every option in its originating language.  The tag is
/// presentation metadata only — deduplication, typing, widget rules and domain
/// *equality* never look at it: two domains mining the same subtrees from differently
/// spelled logs compare equal.
#[derive(Debug, Clone)]
pub struct Domain {
    subtrees: Vec<Node>,
    dialects: Vec<Dialect>,
    ids: BTreeSet<NodeId>,
    prim: PrimitiveType,
    includes_absent: bool,
    numeric_range: Option<(f64, f64)>,
}

impl PartialEq for Domain {
    /// Structural equality: member subtrees (in first-seen order) and the "absent"
    /// option.  Dialect tags are deliberately excluded (presentation metadata), and the
    /// remaining fields (`ids`, `prim`, `numeric_range`) are deterministic functions of
    /// the members.
    fn eq(&self, other: &Self) -> bool {
        self.subtrees == other.subtrees && self.includes_absent == other.includes_absent
    }
}

impl Default for Domain {
    fn default() -> Self {
        Domain {
            subtrees: Vec::new(),
            dialects: Vec::new(),
            ids: BTreeSet::new(),
            prim: PrimitiveType::Num,
            includes_absent: false,
            numeric_range: None,
        }
    }
}

impl Domain {
    /// An empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a domain from the diff records of one path partition (the `w.D ⊆ diffs`
    /// initialisation of §4.3): both sides of every record are collected, deduplicated by
    /// structural identity, and typed by the join of the member types.  Every member is
    /// tagged with the default dialect; use [`Domain::from_diffs_tagged`] when the
    /// per-query dialects of the log are known.
    pub fn from_diffs<'a, I: IntoIterator<Item = &'a DiffRecord>>(records: I) -> Self {
        Self::from_diffs_tagged(records, |_| Dialect::default())
    }

    /// [`Domain::from_diffs`] with per-query dialect tags: `tag_of` maps a log index to
    /// the dialect its query arrived in, and each record's `before`/`after` subtree is
    /// tagged with its side's query (`q1` resp. `q2`).  When the same subtree occurs in
    /// several dialects, the first observation wins — "originating dialect" is
    /// well-defined because records arrive in deterministic store order.
    pub fn from_diffs_tagged<'a, I, F>(records: I, tag_of: F) -> Self
    where
        I: IntoIterator<Item = &'a DiffRecord>,
        F: Fn(usize) -> Dialect,
    {
        let mut domain = Domain::new();
        for record in records {
            match &record.before {
                Some(node) => domain.insert_tagged(node.clone(), tag_of(record.q1)),
                None => domain.includes_absent = true,
            }
            match &record.after {
                Some(node) => domain.insert_tagged(node.clone(), tag_of(record.q2)),
                None => domain.includes_absent = true,
            }
        }
        domain
    }

    /// Builds a domain from explicit subtrees (default-dialect tags).
    pub fn from_subtrees<I: IntoIterator<Item = Node>>(subtrees: I) -> Self {
        let mut domain = Domain::new();
        for node in subtrees {
            domain.insert(node);
        }
        domain
    }

    /// Adds one subtree to the domain with the default dialect tag; see
    /// [`Domain::insert_tagged`].
    pub fn insert(&mut self, node: Node) {
        self.insert_tagged(node, Dialect::default());
    }

    /// Adds one subtree to the domain (deduplicated by `NodeId`, which is O(1) thanks to the
    /// memoized structural hash).  `Node` is a copy-on-write handle, so records coming from
    /// the diff layer share their subtree allocation with the domain.  A duplicate insert
    /// keeps the first observation's dialect tag.
    pub fn insert_tagged(&mut self, node: Node, dialect: Dialect) {
        let id = node.id();
        if !self.ids.insert(id) {
            return;
        }
        // Update the primitive type (join over all members) and numeric range.
        self.prim = if self.subtrees.is_empty() {
            node.primitive_type()
        } else {
            self.prim.join(node.primitive_type())
        };
        if let Some(v) = node.numeric_value() {
            self.numeric_range = Some(match self.numeric_range {
                Some((lo, hi)) => (lo.min(v), hi.max(v)),
                None => (v, v),
            });
        }
        self.subtrees.push(node);
        self.dialects.push(dialect);
    }

    /// Marks "absent" (no subtree at the path) as one of the selectable options.
    pub fn set_includes_absent(&mut self, value: bool) {
        self.includes_absent = value;
    }

    /// The explicit subtrees of the domain, in first-seen order.
    pub fn subtrees(&self) -> &[Node] {
        &self.subtrees
    }

    /// The originating dialect of each subtree, parallel to [`Domain::subtrees`].
    pub fn dialects(&self) -> &[Dialect] {
        &self.dialects
    }

    /// The subtrees paired with their originating dialects, in first-seen order.
    pub fn tagged_subtrees(&self) -> impl Iterator<Item = (&Node, Dialect)> + '_ {
        self.subtrees.iter().zip(self.dialects.iter().copied())
    }

    /// Number of selectable options (explicit subtrees, plus one for "absent" when allowed).
    pub fn size(&self) -> usize {
        self.subtrees.len() + usize::from(self.includes_absent)
    }

    /// True when the domain has no options at all.
    pub fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// The primitive type of the domain: the join of all member types (paper: a rule will
    /// "enforce that the elements in a domain d are all of a particular type").
    pub fn primitive(&self) -> PrimitiveType {
        self.prim
    }

    /// True when one of the options is "no subtree at this path" (came from an
    /// addition/deletion diff).
    pub fn includes_absent(&self) -> bool {
        self.includes_absent
    }

    /// The numeric range spanned by the domain's numeric literals, if all values are numeric.
    /// Sliders extrapolate their domain to this full range (Example 4.3).
    pub fn numeric_range(&self) -> Option<(f64, f64)> {
        if self.prim == PrimitiveType::Num {
            self.numeric_range
        } else {
            None
        }
    }

    /// Exact membership: is this subtree one of the explicit options?
    pub fn contains_exact(&self, node: &Node) -> bool {
        self.ids.contains(&node.id())
    }

    /// Membership with numeric-range extrapolation: numeric literals within the domain's range
    /// are considered expressible even if they were never observed (the slider semantics of
    /// Example 4.3).
    pub fn contains_extrapolated(&self, node: &Node) -> bool {
        if self.contains_exact(node) {
            return true;
        }
        match (self.numeric_range(), node.numeric_value()) {
            (Some((lo, hi)), Some(v)) => v >= lo && v <= hi,
            _ => false,
        }
    }

    /// Human-readable option labels, used by the interface editor and the HTML compiler.
    pub fn option_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.subtrees.iter().map(|n| n.label()).collect();
        if self.includes_absent {
            labels.push("(none)".to_string());
        }
        labels
    }

    /// Merges another domain into this one (members keep their dialect tags).
    pub fn merge(&mut self, other: &Domain) {
        for (node, dialect) in other.tagged_subtrees() {
            self.insert_tagged(node.clone(), dialect);
        }
        if other.includes_absent {
            self.includes_absent = true;
        }
    }

    /// Returns a copy of this domain without the subtrees that appear in `other`.
    /// Used by the merging heuristic when overlapping diffs are re-assigned exclusively to the
    /// ancestor or the descendant widgets (Algorithm 3).
    pub fn without(&self, other: &Domain) -> Domain {
        let mut out = Domain::new();
        for (node, dialect) in self.tagged_subtrees() {
            if !other.contains_exact(node) {
                out.insert_tagged(node.clone(), dialect);
            }
        }
        out.includes_absent = self.includes_absent && !other.includes_absent;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;
    use pi_diff::{extract_diffs, AncestorPolicy};

    fn parse(sql: &str) -> Result<Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    #[test]
    fn dedupes_and_types_members() {
        let d = Domain::from_subtrees(vec![
            Node::string("USA"),
            Node::string("EUR"),
            Node::string("USA"),
        ]);
        assert_eq!(d.size(), 2);
        assert_eq!(d.primitive(), PrimitiveType::Str);
        assert!(d.contains_exact(&Node::string("EUR")));
        assert!(!d.contains_exact(&Node::string("CHN")));
    }

    #[test]
    fn numeric_domains_extrapolate_to_a_range() {
        // Example 4.3: a slider initialised with {1, 5, 100} extrapolates to [1, 100].
        let d = Domain::from_subtrees(vec![Node::int(1), Node::int(5), Node::int(100)]);
        assert_eq!(d.numeric_range(), Some((1.0, 100.0)));
        assert!(d.contains_extrapolated(&Node::int(42)));
        assert!(d.contains_extrapolated(&Node::float(99.5)));
        assert!(!d.contains_extrapolated(&Node::int(101)));
        assert!(!d.contains_exact(&Node::int(42)));
    }

    #[test]
    fn mixed_type_domains_join_to_str_or_tree() {
        let d = Domain::from_subtrees(vec![Node::int(1), Node::string("x")]);
        assert_eq!(d.primitive(), PrimitiveType::Str);
        assert_eq!(d.numeric_range(), None);
        let d = Domain::from_subtrees(vec![Node::int(1), parse("SELECT a FROM t").unwrap()]);
        assert_eq!(d.primitive(), PrimitiveType::Tree);
    }

    #[test]
    fn from_diffs_collects_both_sides_and_absence() {
        let q1 = parse("SELECT g FROM t").unwrap();
        let q2 = parse("SELECT TOP 1 g FROM t").unwrap();
        let records = extract_diffs(&q1, &q2, 0, 1, AncestorPolicy::LcaPruned);
        let d = Domain::from_diffs(records.iter());
        assert!(d.includes_absent());
        assert_eq!(d.size(), d.subtrees().len() + 1);
        assert!(d.option_labels().contains(&"(none)".to_string()));
    }

    #[test]
    fn merge_and_without_are_inverses_on_disjoint_domains() {
        let mut a = Domain::from_subtrees(vec![Node::string("x"), Node::string("y")]);
        let b = Domain::from_subtrees(vec![Node::string("z")]);
        a.merge(&b);
        assert_eq!(a.size(), 3);
        let removed = a.without(&b);
        assert_eq!(removed.size(), 2);
        assert!(!removed.contains_exact(&Node::string("z")));
    }

    #[test]
    fn empty_domain_reports_itself() {
        let d = Domain::new();
        assert!(d.is_empty());
        assert_eq!(d.size(), 0);
        assert_eq!(d.option_labels().len(), 0);
    }

    #[test]
    fn members_remember_their_originating_dialect() {
        use pi_ast::Dialect;
        let mut d = Domain::new();
        d.insert_tagged(Node::int(1), Dialect::SQL);
        d.insert_tagged(Node::int(2), Dialect::FRAMES);
        // A duplicate insert keeps the first observation's tag.
        d.insert_tagged(Node::int(1), Dialect::FRAMES);
        assert_eq!(d.dialects(), &[Dialect::SQL, Dialect::FRAMES]);
        let tags: Vec<_> = d.tagged_subtrees().map(|(n, t)| (n.label(), t)).collect();
        assert_eq!(
            tags,
            vec![
                ("1".to_string(), Dialect::SQL),
                ("2".to_string(), Dialect::FRAMES)
            ]
        );
        // merge and without carry tags along with their members.
        let mut m = Domain::new();
        m.insert_tagged(Node::int(3), Dialect::FRAMES);
        m.merge(&d);
        assert_eq!(
            m.dialects(),
            &[Dialect::FRAMES, Dialect::SQL, Dialect::FRAMES]
        );
        let rest = m.without(&Domain::from_subtrees(vec![Node::int(1)]));
        assert_eq!(rest.dialects(), &[Dialect::FRAMES, Dialect::FRAMES]);
        // Untagged construction defaults to the founding dialect.
        assert_eq!(
            Domain::from_subtrees(vec![Node::int(9)]).dialects(),
            &[Dialect::default()]
        );
    }

    #[test]
    fn equality_ignores_dialect_tags() {
        use pi_ast::Dialect;
        // The same analysis mined from a SQL log and from a frames log must yield equal
        // domains — the tags are presentation metadata, not structure.
        let mut sql_origin = Domain::new();
        sql_origin.insert_tagged(Node::int(1), Dialect::SQL);
        sql_origin.insert_tagged(Node::int(2), Dialect::SQL);
        let mut frames_origin = Domain::new();
        frames_origin.insert_tagged(Node::int(1), Dialect::FRAMES);
        frames_origin.insert_tagged(Node::int(2), Dialect::FRAMES);
        assert_eq!(sql_origin, frames_origin);
        // Structure still matters: members, order and the absent option.
        assert_ne!(
            sql_origin,
            Domain::from_subtrees(vec![Node::int(2), Node::int(1)])
        );
        let mut with_absent = sql_origin.clone();
        with_absent.set_includes_absent(true);
        assert_ne!(sql_origin, with_absent);
    }

    #[test]
    fn from_diffs_tagged_tags_each_side_with_its_query() {
        use pi_ast::Dialect;
        let q1 = parse("SELECT a FROM t WHERE x = 1").unwrap();
        let q2 = parse("SELECT a FROM t WHERE x = 2").unwrap();
        let records = extract_diffs(&q1, &q2, 0, 1, AncestorPolicy::LcaPruned);
        let tag_of = |q: usize| {
            if q == 0 {
                Dialect::SQL
            } else {
                Dialect::FRAMES
            }
        };
        let d = Domain::from_diffs_tagged(records.iter(), tag_of);
        // The literal 1 came from q1 (SQL), the literal 2 from q2 (frames).
        for (node, dialect) in d.tagged_subtrees() {
            match node.label().as_str() {
                "1" => assert_eq!(dialect, Dialect::SQL),
                "2" => assert_eq!(dialect, Dialect::FRAMES),
                _ => {}
            }
        }
    }
}
