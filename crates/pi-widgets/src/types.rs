//! The nine widget types of the prototype, their rules and default cost models.
//!
//! The paper's implementation defines nine HTML widget types natively supported by modern
//! browsers (§7 "Implementation"): text box, toggle button, single checkbox, radio button,
//! drop-down list, slider, range slider, checkbox list and drag-and-drop.  Each type has a
//! rule `r_WT(w.d)` deciding whether a domain can be expressed by the type, and a cost
//! function `c_WT(|w.d|)`.  The drop-down and text-box cost constants are published in the
//! paper (Example 4.4); the remaining defaults were chosen so that the qualitative trade-offs
//! reported in §7.1 hold (sliders win numeric literals, toggles win presence/absence, radio
//! buttons win tiny tree domains, decomposition wins once option lists grow).

use crate::cost::CostFunction;
use crate::domain::Domain;
use pi_ast::PrimitiveType;
use std::fmt;

/// One of the widget types in the library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WidgetType {
    /// Free-text entry; can express any literal value at a fixed (high) cost.
    Textbox,
    /// Two-state button swapping between (at most) two alternatives, or toggling presence.
    ToggleButton,
    /// A single checkbox toggling the presence of one specific subtree.
    Checkbox,
    /// A small list of mutually exclusive options; works for arbitrary subtrees.
    RadioButton,
    /// A drop-down list of string-ish options.
    Dropdown,
    /// A numeric slider; extrapolates its domain to the observed numeric range.
    Slider,
    /// A two-ended numeric slider for range predicates.
    RangeSlider,
    /// A list of checkboxes; suited to collections where options toggle independently.
    CheckboxList,
    /// Drag-and-drop reordering / selection of larger structural options.
    DragAndDrop,
}

impl WidgetType {
    /// All widget types, in display order.
    pub fn all() -> [WidgetType; 9] {
        [
            WidgetType::Textbox,
            WidgetType::ToggleButton,
            WidgetType::Checkbox,
            WidgetType::RadioButton,
            WidgetType::Dropdown,
            WidgetType::Slider,
            WidgetType::RangeSlider,
            WidgetType::CheckboxList,
            WidgetType::DragAndDrop,
        ]
    }

    /// The rule `r_WT(w.d)`: can a widget of this type express the given domain?
    ///
    /// Rules are purely syntactic, based on the primitive type of the domain members, the
    /// domain size, and whether "absent" is one of the options — exactly the information the
    /// paper's rules consume.
    pub fn accepts(&self, domain: &Domain) -> bool {
        if domain.is_empty() {
            return false;
        }
        let prim = domain.primitive();
        match self {
            // Free text can express any string or numeric literal, but not whole subtrees,
            // and it has no way to express "remove the subtree".
            WidgetType::Textbox => {
                prim.castable_to(PrimitiveType::Str) && !domain.includes_absent()
            }
            // A toggle needs at most two states.
            WidgetType::ToggleButton => domain.size() <= 2,
            // A single checkbox toggles presence of exactly one subtree.
            WidgetType::Checkbox => domain.includes_absent() && domain.subtrees().len() == 1,
            // Radio buttons enumerate options of any type, but become unusable when long.
            WidgetType::RadioButton => domain.size() <= 12,
            // Drop-downs enumerate string-ish options (numerics cast to strings).
            WidgetType::Dropdown => prim.castable_to(PrimitiveType::Str),
            // Sliders require a purely numeric domain and cannot express absence.
            WidgetType::Slider => {
                prim == PrimitiveType::Num
                    && !domain.includes_absent()
                    && domain.numeric_range().is_some()
            }
            // A range slider additionally needs at least two observed endpoints.
            WidgetType::RangeSlider => {
                prim == PrimitiveType::Num
                    && !domain.includes_absent()
                    && domain.subtrees().len() >= 2
            }
            // Checkbox lists enumerate options of any type, including absence, but like every
            // enumeration control they stop making sense beyond a few dozen options.
            WidgetType::CheckboxList => domain.size() >= 2 && domain.size() <= 40,
            // Drag-and-drop holds arbitrary structural options, up to a usability bound.  A
            // domain too large for *any* enumeration widget simply gets no widget: a selector
            // over hundreds of whole queries is not an interface, it is the log itself.
            WidgetType::DragAndDrop => domain.size() <= 60,
        }
    }

    /// The default cost function for this type (milliseconds as a function of domain size).
    ///
    /// Drop-down and text box use the constants published in Example 4.4; the others are the
    /// defaults our prototype ships with (they can be re-fit from traces via
    /// [`crate::fit::fit_cost`] and [`crate::WidgetLibrary::with_cost`]).
    pub fn default_cost(&self) -> CostFunction {
        match self {
            WidgetType::Textbox => CostFunction::paper_textbox(),
            WidgetType::ToggleButton => CostFunction::new(320.0, 15.0, 0.0),
            WidgetType::Checkbox => CostFunction::new(350.0, 20.0, 0.0),
            WidgetType::RadioButton => CostFunction::new(200.0, 255.0, 2.0),
            WidgetType::Dropdown => CostFunction::paper_dropdown(),
            WidgetType::Slider => CostFunction::new(250.0, 30.0, 0.05),
            WidgetType::RangeSlider => CostFunction::new(420.0, 35.0, 0.05),
            WidgetType::CheckboxList => CostFunction::new(450.0, 260.0, 6.0),
            WidgetType::DragAndDrop => CostFunction::new(2000.0, 260.0, 6.0),
        }
    }

    /// A stable identifier used in HTML generation and experiment output.
    pub fn slug(&self) -> &'static str {
        match self {
            WidgetType::Textbox => "textbox",
            WidgetType::ToggleButton => "toggle",
            WidgetType::Checkbox => "checkbox",
            WidgetType::RadioButton => "radio",
            WidgetType::Dropdown => "dropdown",
            WidgetType::Slider => "slider",
            WidgetType::RangeSlider => "range-slider",
            WidgetType::CheckboxList => "checkbox-list",
            WidgetType::DragAndDrop => "drag-and-drop",
        }
    }
}

impl fmt::Display for WidgetType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;
    use pi_ast::Node;

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    fn numeric_domain() -> Domain {
        Domain::from_subtrees(vec![Node::int(1), Node::int(5), Node::int(100)])
    }

    fn string_domain(n: usize) -> Domain {
        Domain::from_subtrees((0..n).map(|i| Node::string(&format!("opt{i}"))))
    }

    fn tree_domain(n: usize) -> Domain {
        Domain::from_subtrees(
            (0..n).map(|i| parse(&format!("SELECT a FROM t WHERE x = {i}")).unwrap()),
        )
    }

    #[test]
    fn sliders_only_accept_pure_numeric_domains() {
        assert!(WidgetType::Slider.accepts(&numeric_domain()));
        assert!(!WidgetType::Slider.accepts(&string_domain(3)));
        assert!(!WidgetType::Slider.accepts(&tree_domain(3)));
        let mut with_absent = numeric_domain();
        with_absent.set_includes_absent(true);
        assert!(!WidgetType::Slider.accepts(&with_absent));
    }

    #[test]
    fn textbox_accepts_literals_but_not_trees() {
        assert!(WidgetType::Textbox.accepts(&numeric_domain()));
        assert!(WidgetType::Textbox.accepts(&string_domain(40)));
        assert!(!WidgetType::Textbox.accepts(&tree_domain(2)));
    }

    #[test]
    fn toggle_needs_at_most_two_states() {
        assert!(WidgetType::ToggleButton.accepts(&string_domain(2)));
        assert!(WidgetType::ToggleButton.accepts(&tree_domain(2)));
        assert!(!WidgetType::ToggleButton.accepts(&string_domain(3)));
        let mut presence = Domain::from_subtrees(vec![parse("SELECT 1").unwrap()]);
        presence.set_includes_absent(true);
        assert!(WidgetType::ToggleButton.accepts(&presence));
        assert!(WidgetType::Checkbox.accepts(&presence));
    }

    #[test]
    fn dropdown_accepts_strings_and_numbers_but_not_trees() {
        assert!(WidgetType::Dropdown.accepts(&string_domain(10)));
        assert!(WidgetType::Dropdown.accepts(&numeric_domain()));
        assert!(!WidgetType::Dropdown.accepts(&tree_domain(3)));
    }

    #[test]
    fn radio_accepts_small_tree_domains_only() {
        assert!(WidgetType::RadioButton.accepts(&tree_domain(3)));
        assert!(!WidgetType::RadioButton.accepts(&tree_domain(20)));
    }

    #[test]
    fn every_nonempty_domain_has_at_least_one_accepting_type() {
        // The initialisation step must always be able to instantiate *some* widget, otherwise
        // a query in the log could not be expressed at all.
        for domain in [
            numeric_domain(),
            string_domain(1),
            string_domain(50),
            tree_domain(1),
            tree_domain(30),
            {
                let mut d = tree_domain(1);
                d.set_includes_absent(true);
                d
            },
        ] {
            assert!(
                WidgetType::all().iter().any(|t| t.accepts(&domain)),
                "no widget type accepts {domain:?}"
            );
        }
        // ... except the empty domain, which nothing accepts.
        assert!(WidgetType::all().iter().all(|t| !t.accepts(&Domain::new())));
    }

    #[test]
    fn default_costs_reproduce_the_papers_tradeoffs() {
        // Numeric literal changes: slider is the cheapest applicable widget.
        let d = numeric_domain();
        let slider = WidgetType::Slider.default_cost().eval(d.size());
        let dropdown = WidgetType::Dropdown.default_cost().eval(d.size());
        let textbox = WidgetType::Textbox.default_cost().eval(d.size());
        assert!(slider < dropdown && slider < textbox);

        // Small string sets: the drop-down beats the text box; large sets: the text box wins.
        assert!(
            WidgetType::Dropdown.default_cost().eval(4)
                < WidgetType::Textbox.default_cost().eval(4)
        );
        assert!(
            WidgetType::Dropdown.default_cost().eval(60)
                > WidgetType::Textbox.default_cost().eval(60)
        );

        // Presence/absence of a clause: toggling is cheaper than any enumeration widget.
        let toggle = WidgetType::ToggleButton.default_cost().eval(2);
        assert!(toggle < WidgetType::RadioButton.default_cost().eval(2));
        assert!(toggle < WidgetType::DragAndDrop.default_cost().eval(2));
    }

    #[test]
    fn slugs_are_unique() {
        let slugs: std::collections::BTreeSet<&str> =
            WidgetType::all().iter().map(|t| t.slug()).collect();
        assert_eq!(slugs.len(), 9);
        assert_eq!(WidgetType::Slider.to_string(), "slider");
    }
}
