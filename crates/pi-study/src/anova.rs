//! One-way ANOVA F tests over the study trials (§7.4).
//!
//! The paper runs an ANOVA with task, interface, and task order as independent variables and
//! completion time as the dependent variable, finding all three individually significant.  We
//! provide a one-way ANOVA per factor: the F statistic, degrees of freedom, and a significance
//! decision against conservative critical values (α = 0.01).  A full factorial ANOVA with
//! interaction terms is out of scope; the one-way tests are sufficient to check the paper's
//! "all three variables are individually significant" claim on the simulated data.

/// The outcome of a one-way ANOVA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnovaResult {
    /// The F statistic (between-group mean square / within-group mean square).
    pub f: f64,
    /// Between-groups degrees of freedom (k − 1).
    pub df_between: usize,
    /// Within-groups degrees of freedom (N − k).
    pub df_within: usize,
}

impl AnovaResult {
    /// Conservative critical values of the F distribution at α = 0.01 for large within-group
    /// degrees of freedom (the study has 160 trials, so df_within ≫ 30).
    fn critical_value(&self) -> f64 {
        match self.df_between {
            1 => 6.9,
            2 => 4.8,
            3 => 3.95,
            4 => 3.5,
            5 => 3.2,
            _ => 3.0,
        }
    }

    /// Whether the factor is significant at α = 0.01.
    pub fn significant(&self) -> bool {
        self.df_within > 0 && self.f > self.critical_value()
    }
}

/// Computes a one-way ANOVA over groups of observations.
///
/// Returns `None` when fewer than two non-empty groups are provided or when every observation
/// is identical (zero within-group variance and zero between-group variance).
pub fn one_way_anova(groups: &[Vec<f64>]) -> Option<AnovaResult> {
    let groups: Vec<&Vec<f64>> = groups.iter().filter(|g| !g.is_empty()).collect();
    let k = groups.len();
    if k < 2 {
        return None;
    }
    let n: usize = groups.iter().map(|g| g.len()).sum();
    if n <= k {
        return None;
    }
    let grand_mean: f64 = groups.iter().flat_map(|g| g.iter()).sum::<f64>() / n as f64;

    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for group in &groups {
        let mean = group.iter().sum::<f64>() / group.len() as f64;
        ss_between += group.len() as f64 * (mean - grand_mean).powi(2);
        ss_within += group.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
    }
    let df_between = k - 1;
    let df_within = n - k;
    let ms_between = ss_between / df_between as f64;
    let ms_within = ss_within / df_within as f64;
    if ms_between == 0.0 && ms_within == 0.0 {
        return None;
    }
    let f = if ms_within == 0.0 {
        f64::INFINITY
    } else {
        ms_between / ms_within
    };
    Some(AnovaResult {
        f,
        df_between,
        df_within,
    })
}

/// Groups trial completion times by an arbitrary key extractor — convenience for running the
/// per-factor ANOVAs over [`crate::TrialResult`]s.
pub fn group_times<T, K: Ord, F: Fn(&T) -> K, V: Fn(&T) -> f64>(
    items: &[T],
    key: F,
    value: V,
) -> Vec<Vec<f64>> {
    let mut map: std::collections::BTreeMap<K, Vec<f64>> = std::collections::BTreeMap::new();
    for item in items {
        map.entry(key(item)).or_default().push(value(item));
    }
    map.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{run_study, Condition, StudyConfig};

    #[test]
    fn separated_groups_are_significant_and_identical_groups_are_not() {
        let separated = vec![vec![1.0, 1.1, 0.9, 1.05], vec![5.0, 5.2, 4.9, 5.1]];
        let result = one_way_anova(&separated).unwrap();
        assert!(result.f > 100.0);
        assert!(result.significant());

        let overlapping = vec![vec![1.0, 2.0, 3.0, 4.0], vec![1.1, 2.1, 2.9, 4.1]];
        let result = one_way_anova(&overlapping).unwrap();
        assert!(!result.significant());
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(one_way_anova(&[]).is_none());
        assert!(one_way_anova(&[vec![1.0, 2.0]]).is_none());
        assert!(one_way_anova(&[vec![1.0], vec![]]).is_none());
        assert!(one_way_anova(&[vec![2.0, 2.0], vec![2.0, 2.0]]).is_none());
    }

    #[test]
    fn study_factors_are_individually_significant_like_the_paper() {
        let trials = run_study(StudyConfig::default());
        let by_task = group_times(&trials, |t| t.task, |t| t.time_s);
        let by_interface = group_times(
            &trials,
            |t| t.condition == Condition::SdssForm,
            |t| t.time_s,
        );
        let by_order = group_times(&trials, |t| t.order, |t| t.time_s);
        assert!(one_way_anova(&by_task).unwrap().significant());
        assert!(one_way_anova(&by_interface).unwrap().significant());
        // Order has a weaker effect; it is significant in the paper and should at least show a
        // noticeable F value here.
        let order = one_way_anova(&by_order).unwrap();
        assert!(order.f > 1.0, "order effect F={}", order.f);
    }

    #[test]
    fn group_times_partitions_all_observations() {
        let trials = run_study(StudyConfig {
            participants: 10,
            ..StudyConfig::default()
        });
        let groups = group_times(&trials, |t| t.order, |t| t.time_s);
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), trials.len());
        assert_eq!(groups.len(), 4);
    }
}
