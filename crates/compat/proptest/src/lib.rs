//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and the `proptest!` macro surface this workspace's
//! property tests use: range strategies, tuples, `prop_map`, `prop::sample::select`,
//! `prop::option::of`, `prop::bool::ANY` and `prop::collection::vec`.  Cases are generated
//! from a seed derived deterministically from the test name and case index, so failures are
//! reproducible; there is no shrinking — the failing case index is part of the panic message
//! instead.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::Range;

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Builds the deterministic generator for one test case.
#[doc(hidden)]
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// A generator of random values of an output type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform + Copy + PartialOrd> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// The `prop::*` strategy constructors.
pub mod prop {
    /// Strategies drawing from explicit value sets.
    pub mod sample {
        use super::super::*;

        /// A strategy that picks one element of `options` uniformly.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// Picks uniformly from a non-empty vector of options.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut StdRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }
    }

    /// Strategies over `Option<T>`.
    pub mod option {
        use super::super::*;

        /// A strategy producing `None` a quarter of the time and `Some(inner)` otherwise.
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// Wraps a strategy to also produce `None`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
                if rng.gen_bool(0.25) {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// Strategies over `bool`.
    pub mod bool {
        use super::super::*;

        /// The uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.gen_bool(0.5)
            }
        }
    }

    /// Strategies over collections.
    pub mod collection {
        use super::super::*;

        /// A strategy producing vectors with length drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Vectors of `element` values with a length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Asserts a condition inside a property (plain `assert!` under the hood).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` under the hood).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` under the hood).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }` item becomes a
/// `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ( $($strat,)+ );
                for case in 0..config.cases {
                    let mut rng = $crate::test_rng(stringify!($name), case);
                    let ( $($pat,)+ ) = $crate::Strategy::generate(&strategy, &mut rng);
                    // No shrinking: case indices are deterministic, so a failing case number
                    // printed by the panic location reproduces with the same seed.
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = (0i64..100, prop::bool::ANY);
        let a = Strategy::generate(&s, &mut crate::test_rng("t", 3));
        let b = Strategy::generate(&s, &mut crate::test_rng("t", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_values_respect_their_strategies(
            x in 0i64..10,
            opt in prop::option::of(0usize..3),
            v in prop::collection::vec(0i32..5, 2..6),
            pick in prop::sample::select(vec!["a", "b"]),
            flag in prop::bool::ANY,
        ) {
            prop_assert!((0..10).contains(&x));
            if let Some(o) = opt { prop_assert!(o < 3); }
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|e| (0..5).contains(e)));
            prop_assert!(pick == "a" || pick == "b");
            let _ = flag;
        }

        #[test]
        fn prop_map_applies(mut doubled in (0i64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            doubled += 1;
            prop_assert_ne!(doubled % 2, 0);
        }
    }
}
