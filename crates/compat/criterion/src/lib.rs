//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the `Criterion` / benchmark-group / `Bencher` API surface used by this
//! workspace's benches, with a plain wall-clock measurement loop: a short warm-up, then
//! `sample_size` samples, each timing a batch of iterations sized so the whole group stays
//! within `measurement_time`.  Results (mean / min / max per iteration) are printed to
//! stdout, and each run is appended to the in-process report so callers can export JSON.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// One measured benchmark, as captured by the harness.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function` identifier.
    pub id: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample, in nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, in nanoseconds per iteration.
    pub max_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
    /// Worker thread count the measured code ran with, when the bench is one arm of a
    /// scaling curve (`None` for ordinary benches).  Exporters carry it through so
    /// comparisons can match on `(id, threads)` instead of id alone.
    pub threads: Option<u64>,
}

/// Drives benchmark execution and collects [`Measurement`]s.
#[derive(Debug, Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// A fresh harness.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Benches a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }

    /// All measurements captured so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Records an externally timed measurement, printing it like a harness-run bench.
    ///
    /// An extension over the real criterion API (like [`Criterion::measurements`]): it lets
    /// a bench binary implement *paired* A/B comparisons — alternating samples between two
    /// variants so slow frequency drift cancels out — and still publish both arms through
    /// the same report/JSON pipeline as ordinary benches.
    pub fn record(&mut self, m: Measurement) {
        print_measurement(&m);
        self.measurements.push(m);
    }
}

/// A named parameterised benchmark id.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered from one parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Benches a closure under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = self.full_id(id);
        let m = run_bench(
            &full,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            |b| f(b),
        );
        self.criterion.measurements.push(m);
        self
    }

    /// Benches a closure that receives an input value, under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = self.full_id(&id.label);
        let m = run_bench(
            &full,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            |b| f(b, input),
        );
        self.criterion.measurements.push(m);
        self
    }

    /// Ends the group (kept for API compatibility; measurements are already recorded).
    pub fn finish(&mut self) {}

    fn full_id(&self, id: &str) -> String {
        if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        }
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `self.iters` times and records the total elapsed time.
    ///
    /// The returned value is dropped *inside* the timed window (as in real criterion's
    /// `iter`); benches whose output is large enough for its drop to distort the
    /// measurement should use [`Bencher::iter_with_large_drop`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Like [`Bencher::iter`], but the returned value's drop runs *outside* the timed
    /// window — mirroring real criterion's `iter_with_large_drop`, for benches that build
    /// large structures (a million-record diff store) where deallocation would otherwise
    /// be a fixed tax on every variant being compared.
    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = black_box(f());
            elapsed += start.elapsed();
            drop(out);
        }
        self.elapsed = elapsed;
    }
}

/// An identity function that defeats constant-propagation of benchmark results.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: F,
) -> Measurement {
    // Warm up while estimating the per-iteration cost.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < warm_up_time {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1));
    }

    // Size each sample's batch so all samples fit in the measurement budget.
    let budget_per_sample = measurement_time.as_secs_f64() / sample_size as f64;
    let iters_per_sample =
        ((budget_per_sample / per_iter.as_secs_f64()).floor() as u64).clamp(1, 1_000_000);

    let mut total_iters = 0u64;
    let mut total = Duration::ZERO;
    let mut min_ns = f64::INFINITY;
    let mut max_ns = 0.0f64;
    let overall = Instant::now();
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / iters_per_sample as f64;
        min_ns = min_ns.min(ns);
        max_ns = max_ns.max(ns);
        total += b.elapsed;
        total_iters += iters_per_sample;
        // Never exceed twice the budget even when the warm-up estimate was off.
        if overall.elapsed() > measurement_time * 2 {
            break;
        }
    }

    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let m = Measurement {
        id: id.to_string(),
        mean_ns,
        min_ns,
        max_ns,
        iterations: total_iters,
        threads: None,
    };
    print_measurement(&m);
    m
}

fn print_measurement(m: &Measurement) {
    let id = match m.threads {
        Some(t) => format!("{} [threads={t}]", m.id),
        None => m.id.clone(),
    };
    println!(
        "bench {id:<50} mean {:>12}  (min {}, max {}, {} iters)",
        fmt_ns(m.mean_ns),
        fmt_ns(m.min_ns),
        fmt_ns(m.max_ns),
        m.iterations
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::new();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_records() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert_eq!(c.measurements().len(), 2);
        assert_eq!(c.measurements()[0].id, "g/noop");
        assert_eq!(c.measurements()[1].id, "g/7");
        assert!(c.measurements().iter().all(|m| m.mean_ns > 0.0));
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
    }
}
