//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships the slice of the
//! `rand` 0.8 API it actually uses: [`Rng::gen_range`] / [`Rng::gen_bool`] over the standard
//! numeric types, [`SeedableRng::seed_from_u64`], a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via splitmix64), and [`seq::SliceRandom::shuffle`].  All generators in
//! this workspace are seeded explicitly, so determinism — not cryptographic quality — is the
//! contract that matters.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`.
    fn sample_closed(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with an empty range");
        T::sample_closed(rng, lo, hi)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
            fn sample_closed(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + (hi - lo) * unit
            }
            fn sample_closed(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform draw from `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u128(rng: &mut dyn RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        // Largest multiple of span that fits in u64.
        let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    } else {
        loop {
            let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if v < span * (u128::MAX / span) {
                return v % span;
            }
        }
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value uniformly from the given range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
            let v = rng.gen_range(3..=9i64);
            assert!((3..=9).contains(&v));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<i32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle virtually never fixes order"
        );
        assert!([1, 2, 3].choose(&mut rng).is_some());
        assert!(Vec::<i32>::new().choose(&mut rng).is_none());
    }
}
