//! # pi-core — Precision Interfaces: interface generation from query logs
//!
//! This crate implements the paper's primary contribution on top of the substrate crates:
//!
//! * the **interface model** (§4.4): an interface is a set of widgets plus an initial query;
//!   its cost is the sum of widget costs; its *closure* is the set of queries reachable by
//!   widget interactions, and expressiveness/recall/precision are all defined against that
//!   closure ([`Interface`]);
//! * the **interface generation problem** (§4.5) and its graph-contraction heuristic (§5):
//!   initialisation (Algorithm 1 / 2) and iterative merging of redundant ancestor/descendant
//!   widgets (Algorithm 3) ([`InteractionMapper`]);
//! * the **end-to-end pipeline** (§3.2, §6): parse a query log, mine the interaction graph
//!   (with the sliding-window and LCA-pruning optimisations), map it to widgets, and report
//!   stage timings ([`PrecisionInterfaces`], [`GeneratedInterface`]);
//! * **streaming ingestion** ([`Session`]): queries are appended one at a time, each new
//!   query is diffed only against the predecessors the window strategy admits, and versioned
//!   snapshots are byte-identical to batch builds of the same prefix — the one-shot entry
//!   points are thin wrappers over a session;
//! * **pluggable front-ends**: sessions route text through a
//!   [`Frontends`](pi_ast::Frontends) registry ([`standard_frontends`] bundles SQL and the
//!   dataframe dialect), tag every query with its [`Dialect`](pi_ast::Dialect), and thread
//!   the tags into the generated interface so mixed-language logs mine into one interface
//!   whose options render in their originating language;
//! * the **evaluation utilities** used throughout §7: hold-out recall curves
//!   ([`recall`]) and closure precision against a database schema with and without the
//!   column→table filter of Appendix D ([`precision`]).
//!
//! ```
//! use pi_core::PrecisionInterfaces;
//!
//! let log = "
//!     SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState;
//!     SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 8 GROUP BY DestState;
//!     SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 3 GROUP BY DestState;
//! ";
//! let generated = PrecisionInterfaces::default().from_sql_log(log).unwrap();
//! assert!(generated.interface.expressiveness(&generated.queries) >= 1.0);
//! // The month literal maps to a single numeric widget.
//! assert_eq!(generated.interface.widgets().len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod frontends;
mod interface;
mod mapper;
mod pipeline;
pub mod precision;
pub mod recall;
pub mod session;

pub use frontends::standard_frontends;
pub use interface::Interface;
pub use mapper::{InteractionMapper, MapperOptions};
pub use pipeline::{GeneratedInterface, PiOptions, PrecisionInterfaces, StageTimings};
pub use session::{RebuildOutcome, Session, SNAPSHOT_VERSION};

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;
    use pi_widgets::WidgetType;

    fn parse_result(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    fn generate(log: &str) -> GeneratedInterface {
        PrecisionInterfaces::default().from_sql_log(log).unwrap()
    }

    // ---------------------------------------------------------------- §7.1 trade-off examples

    #[test]
    fn listing4_parameter_changes_yield_dropdown_and_slider() {
        // Figure 5a: customer-name drop-down + spec_ts slider for Listing 4's template.
        let log = "
          SELECT spec_ts, sum(price) FROM (SELECT action, sum(customer) FROM t WHERE spec_ts > now AND spec_ts < now + 3) WHERE cust = 'Alice' AND country = 'China' GROUP BY spec_ts;
          SELECT spec_ts, sum(price) FROM (SELECT action, sum(customer) FROM t WHERE spec_ts > now AND spec_ts < now + 5) WHERE cust = 'Bob' AND country = 'China' GROUP BY spec_ts;
          SELECT spec_ts, sum(price) FROM (SELECT action, sum(customer) FROM t WHERE spec_ts > now AND spec_ts < now + 9) WHERE cust = 'Carol' AND country = 'China' GROUP BY spec_ts;
          SELECT spec_ts, sum(price) FROM (SELECT action, sum(customer) FROM t WHERE spec_ts > now AND spec_ts < now + 7) WHERE cust = 'Alice' AND country = 'China' GROUP BY spec_ts;
        ";
        let generated = generate(log);
        let widgets = generated.interface.widgets();
        assert_eq!(widgets.len(), 2, "{}", generated.interface.describe());
        let types: Vec<WidgetType> = widgets.iter().map(|w| w.ty).collect();
        assert!(types.contains(&WidgetType::Slider));
        assert!(types.contains(&WidgetType::Dropdown));
        // Generalisation: combinations never observed together are still expressible
        // (cust='Bob' with +9 appears in no log entry).
        let unseen = parse_result(
            "SELECT spec_ts, sum(price) FROM (SELECT action, sum(customer) FROM t WHERE spec_ts > now AND spec_ts < now + 9) WHERE cust = 'Bob' AND country = 'China' GROUP BY spec_ts",
        )
        .unwrap();
        assert!(generated.interface.can_express(&unseen));
        // But changes never observed at all (the country) are not expressible.
        let off_script = parse_result(
            "SELECT spec_ts, sum(price) FROM (SELECT action, sum(customer) FROM t WHERE spec_ts > now AND spec_ts < now + 3) WHERE cust = 'Alice' AND country = 'France' GROUP BY spec_ts",
        )
        .unwrap();
        assert!(!generated.interface.can_express(&off_script));
    }

    #[test]
    fn listing5_small_log_maps_to_a_single_choice_widget() {
        // Figure 5b: with three queries it is cheapest to pick the whole query directly from a
        // single choice widget.  (Like the paper's experiment this compares every query pair.)
        let log = "SELECT avg(a); SELECT count(b); SELECT count(c);";
        let options = PiOptions {
            window: pi_graph::WindowStrategy::AllPairs,
            ..PiOptions::default()
        };
        let generated = PrecisionInterfaces::new(options).from_sql_log(log).unwrap();
        assert_eq!(
            generated.interface.widgets().len(),
            1,
            "{}",
            generated.interface.describe()
        );
        let w = &generated.interface.widgets()[0];
        assert!(matches!(
            w.ty,
            WidgetType::RadioButton | WidgetType::Dropdown
        ));
        assert!(generated.interface.expressiveness(&generated.queries) >= 1.0);
    }

    #[test]
    fn listing5_larger_log_decomposes_into_per_component_widgets() {
        // Figure 5c: with more queries, per-component widgets (function name + argument)
        // become cheaper than one long list of whole queries.
        let log = "
          SELECT avg(a); SELECT count(b); SELECT count(c); SELECT avg(b); SELECT count(a);
          SELECT avg(c); SELECT avg(d); SELECT avg(e); SELECT count(d); SELECT count(e);
          SELECT count(b); SELECT count(c); SELECT avg(a);
        ";
        let generated = generate(log);
        let widgets = generated.interface.widgets();
        assert!(
            widgets.len() >= 2,
            "expected decomposition, got {}",
            generated.interface.describe()
        );
        assert!(widgets.iter().all(|w| !w.path.is_root()));
        // All 13 log queries stay expressible.
        assert!(generated.interface.expressiveness(&generated.queries) >= 1.0);
    }

    #[test]
    fn listing6_top_clause_gets_a_toggle_and_a_slider() {
        // Figure 5d: a Toggle-TOP button plus a slider for the limit.
        let log = "
          SELECT g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID;
          SELECT TOP 1 g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID;
          SELECT TOP 10 g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID;
          SELECT TOP 5 g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID;
        ";
        let generated = generate(log);
        let types: Vec<WidgetType> = generated.interface.widgets().iter().map(|w| w.ty).collect();
        assert!(
            types
                .iter()
                .any(|t| matches!(t, WidgetType::ToggleButton | WidgetType::Checkbox)),
            "no toggle in {}",
            generated.interface.describe()
        );
        assert!(
            types.contains(&WidgetType::Slider),
            "no slider in {}",
            generated.interface.describe()
        );
        // A TOP value never seen (e.g. 7) is expressible thanks to slider extrapolation.
        let unseen = parse_result(
            "SELECT TOP 7 g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID",
        )
        .unwrap();
        assert!(generated.interface.can_express(&unseen));
    }

    #[test]
    fn listing7_subquery_toggle_with_inner_widgets() {
        // Figure 5e: toggle between table and subquery, then modify the subquery's parts.
        let log = "
          SELECT * FROM T;
          SELECT * FROM (SELECT a FROM T WHERE b > 10);
          SELECT * FROM (SELECT a FROM T WHERE b > 20);
          SELECT * FROM (SELECT b FROM T WHERE b > 20);
        ";
        let generated = generate(log);
        let widgets = generated.interface.widgets();
        assert!(widgets.len() >= 2, "{}", generated.interface.describe());
        assert!(generated.interface.expressiveness(&generated.queries) >= 1.0);
        // The unseen combination (SELECT b ... > 10) is expressible via the cross-product.
        let unseen = parse_result("SELECT * FROM (SELECT b FROM T WHERE b > 10)").unwrap();
        assert!(generated.interface.can_express(&unseen));
    }

    // ---------------------------------------------------------------- pipeline invariants

    #[test]
    fn full_log_coverage_holds_for_every_policy_combination() {
        use pi_diff::AncestorPolicy;
        use pi_graph::WindowStrategy;
        let log = "
          SELECT * FROM SpecLineIndex WHERE specObjId = 0x400;
          SELECT * FROM XCRedshift WHERE specObjId = 0x199;
          SELECT * FROM SpecLineIndex WHERE specObjId = 0x3;
          SELECT * FROM XCRedshift WHERE specObjId = 0x42;
        ";
        for window in [WindowStrategy::AllPairs, WindowStrategy::Sliding(2)] {
            for policy in [AncestorPolicy::Full, AncestorPolicy::LcaPruned] {
                let options = PiOptions {
                    window,
                    policy,
                    ..PiOptions::default()
                };
                let generated = PrecisionInterfaces::new(options).from_sql_log(log).unwrap();
                assert!(
                    generated.interface.expressiveness(&generated.queries) >= 1.0,
                    "coverage violated for {window:?}/{policy:?}: {}",
                    generated.interface.describe()
                );
            }
        }
    }

    #[test]
    fn optimisations_do_not_change_the_generated_interface() {
        // Appendix B: "the optimizations improve the runtime, but do not affect the resulting
        // interfaces".
        use pi_diff::AncestorPolicy;
        use pi_graph::WindowStrategy;
        let log = "
          SELECT * FROM SpecLineIndex WHERE specObjId = 0x400;
          SELECT * FROM SpecLineIndex WHERE specObjId = 0x199;
          SELECT * FROM XCRedshift WHERE specObjId = 0x199;
          SELECT * FROM XCRedshift WHERE specObjId = 0x3;
        ";
        let baseline = PrecisionInterfaces::new(PiOptions {
            window: WindowStrategy::AllPairs,
            policy: AncestorPolicy::Full,
            ..PiOptions::default()
        })
        .from_sql_log(log)
        .unwrap();
        let optimised = PrecisionInterfaces::new(PiOptions {
            window: WindowStrategy::Sliding(2),
            policy: AncestorPolicy::LcaPruned,
            ..PiOptions::default()
        })
        .from_sql_log(log)
        .unwrap();
        let summarise = |g: &GeneratedInterface| {
            let mut v: Vec<(String, String)> = g
                .interface
                .widgets()
                .iter()
                .map(|w| (w.path.to_string(), w.ty.to_string()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(summarise(&baseline), summarise(&optimised));
    }

    #[test]
    fn merging_reduces_interface_cost() {
        let log = "
          SELECT sales, day FROM t WHERE cty = 'USA';
          SELECT costs, day FROM t WHERE cty = 'EUR';
          SELECT sales, day FROM t WHERE cty = 'EUR';
          SELECT costs, day FROM t WHERE cty = 'CHN';
        ";
        let no_merge = PrecisionInterfaces::new(PiOptions {
            mapper: MapperOptions {
                enable_merging: false,
                ..MapperOptions::default()
            },
            ..PiOptions::default()
        })
        .from_sql_log(log)
        .unwrap();
        let merged = generate(log);
        assert!(merged.interface.cost() <= no_merge.interface.cost());
        assert!(merged.interface.expressiveness(&merged.queries) >= 1.0);
    }
}
