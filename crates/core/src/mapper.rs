//! The interaction mapper: the graph-contraction heuristic of §5.
//!
//! The interface generation problem (§4.5) is NP-hard, so the mapper uses the two-phase
//! heuristic from the paper:
//!
//! 1. **Initialisation** (Algorithm 1/2): partition the diff records by path, and instantiate
//!    for every partition the lowest-cost widget type whose rule accepts the partition's
//!    domain.  The resulting interface expresses every query in the log but usually contains
//!    redundant widgets.
//! 2. **Merging** (Algorithm 3): repeatedly compare an ancestor widget against the set of its
//!    descendant widgets; the diff records whose incident queries are expressed by both sides
//!    are assigned exclusively to whichever side yields the larger cost reduction, and widgets
//!    whose record set becomes empty are dropped.  We additionally guard every contraction
//!    with an explicit log-coverage check so the `g = 1` constraint of the problem statement
//!    can never be violated by the greedy choice.

use crate::interface::Interface;
use pi_ast::{Dialect, Node, NodeKind, Path};
use pi_diff::{DiffId, DiffStore};
use pi_graph::InteractionGraph;
use pi_widgets::{Domain, Widget, WidgetLibrary};
use std::collections::{BTreeMap, BTreeSet};

/// Knobs controlling the mapper (exposed for the ablation experiments).
#[derive(Debug, Clone, Copy)]
pub struct MapperOptions {
    /// Run the merging phase (disable to measure the cost reduction merging provides).
    pub enable_merging: bool,
    /// Upper bound on merge passes; each pass sweeps every ancestor widget once.
    pub max_merge_passes: usize,
}

impl Default for MapperOptions {
    fn default() -> Self {
        MapperOptions {
            enable_merging: true,
            max_merge_passes: 10,
        }
    }
}

/// Maps interaction graphs to interfaces.
#[derive(Debug, Clone, Default)]
pub struct InteractionMapper {
    library: WidgetLibrary,
    options: MapperOptions,
}

impl InteractionMapper {
    /// A mapper over the given widget library with default options.
    pub fn new(library: WidgetLibrary) -> Self {
        InteractionMapper {
            library,
            options: MapperOptions::default(),
        }
    }

    /// Sets the mapper options (builder style).
    pub fn with_options(mut self, options: MapperOptions) -> Self {
        self.options = options;
        self
    }

    /// Maps an interaction graph to an interface, tagging every widget option and the
    /// initial query with the default dialect.  Use [`InteractionMapper::map_tagged`] when
    /// the per-query dialects of the log are known (mixed-front-end sessions).
    pub fn map(&self, graph: &InteractionGraph) -> Interface {
        self.map_tagged(graph, &[])
    }

    /// Maps an interaction graph to an interface, threading per-query [`Dialect`] tags
    /// (parallel to the graph's query log; missing entries default) into the widget
    /// domains and the initial query, so the interface remembers which front-end every
    /// rendered fragment originated in.
    pub fn map_tagged(&self, graph: &InteractionGraph, dialects: &[Dialect]) -> Interface {
        let initial_query = graph
            .initial_query()
            .cloned()
            .unwrap_or_else(|| Node::new(NodeKind::Select));
        let initial_dialect = dialects.first().copied().unwrap_or_default();

        let mut widgets = self.initialize(graph, dialects);
        if self.options.enable_merging {
            let pairs = PairIndex::build(graph.store());
            for _ in 0..self.options.max_merge_passes {
                if !self.merge_pass(&mut widgets, graph.store(), &pairs, dialects) {
                    break;
                }
            }
        }
        widgets.retain(|w| !w.domain.is_empty());
        Interface::new(initial_query, widgets).with_initial_dialect(initial_dialect)
    }

    /// Algorithm 1: one widget per path partition, instantiated by `pickWidget`.
    fn initialize(&self, graph: &InteractionGraph, dialects: &[Dialect]) -> Vec<Widget> {
        let mut widgets = Vec::new();
        for (path, ids) in graph.store().partition_by_path() {
            let domain = Domain::from_diffs_tagged(
                ids.iter().map(|id| graph.store().get(*id)),
                dialect_of(dialects),
            );
            if let Some(widget) = self.library.pick(path, domain, ids) {
                widgets.push(widget);
            }
        }
        widgets
    }

    /// Rebuilds a widget from a reduced set of initialising diffs (Algorithm 2 re-applied
    /// after a merge decision).  Returns `None` when no diffs remain.
    fn repick(
        &self,
        path: &Path,
        ids: Vec<DiffId>,
        store: &DiffStore,
        dialects: &[Dialect],
    ) -> Option<Widget> {
        if ids.is_empty() {
            return None;
        }
        let domain =
            Domain::from_diffs_tagged(ids.iter().map(|id| store.get(*id)), dialect_of(dialects));
        self.library.pick(path.clone(), domain, ids)
    }

    /// One sweep of Algorithm 3 over every ancestor widget, deepest first.  Returns whether
    /// the total interface cost decreased.
    fn merge_pass(
        &self,
        widgets: &mut [Widget],
        store: &DiffStore,
        pairs: &PairIndex,
        dialects: &[Dialect],
    ) -> bool {
        let mut improved = false;

        // Deepest ancestors first: this collapses widget chains bottom-up so that the cost of
        // intermediate redundant widgets does not distort the ancestor/descendant comparison.
        let mut order: Vec<usize> = (0..widgets.len()).collect();
        order.sort_by(|&a, &b| {
            widgets[b]
                .path
                .depth()
                .cmp(&widgets[a].path.depth())
                .then_with(|| widgets[a].path.cmp(&widgets[b].path))
        });

        for a_idx in order {
            if widgets[a_idx].domain.is_empty() {
                continue;
            }
            let a_path = widgets[a_idx].path.clone();
            let descendant_idxs: Vec<usize> = (0..widgets.len())
                .filter(|&j| {
                    j != a_idx
                        && !widgets[j].domain.is_empty()
                        && a_path.is_strict_prefix_of(&widgets[j].path)
                })
                .collect();
            if descendant_idxs.is_empty() {
                continue;
            }

            // Vertices incident to the two widget groups' diffs, and their intersection V.
            let vertices_of = |ids: &[DiffId]| -> BTreeSet<usize> {
                ids.iter()
                    .flat_map(|id| {
                        let r = store.get(*id);
                        [r.q1, r.q2]
                    })
                    .collect()
            };
            let va = vertices_of(&widgets[a_idx].init_diffs);
            let vd: BTreeSet<usize> = descendant_idxs
                .iter()
                .flat_map(|&j| vertices_of(&widgets[j].init_diffs))
                .collect();
            let v: BTreeSet<usize> = va.intersection(&vd).copied().collect();
            if v.is_empty() {
                continue;
            }
            let in_v = |id: &DiffId| {
                let r = store.get(*id);
                v.contains(&r.q1) && v.contains(&r.q2)
            };

            // ga / gd: overlapping records whose incident queries both lie in V.
            let ga: Vec<DiffId> = widgets[a_idx]
                .init_diffs
                .iter()
                .copied()
                .filter(in_v)
                .collect();
            let gd: BTreeMap<usize, Vec<DiffId>> = descendant_idxs
                .iter()
                .map(|&j| {
                    (
                        j,
                        widgets[j].init_diffs.iter().copied().filter(in_v).collect(),
                    )
                })
                .collect();
            if ga.is_empty() && gd.values().all(Vec::is_empty) {
                continue;
            }

            // Candidate A: remove the overlap from the ancestor.
            let ancestor_kept: Vec<DiffId> = widgets[a_idx]
                .init_diffs
                .iter()
                .copied()
                .filter(|id| !ga.contains(id))
                .collect();
            let new_ancestor = self.repick(&a_path, ancestor_kept, store, dialects);
            let sa = widgets[a_idx].cost - new_ancestor.as_ref().map(|w| w.cost).unwrap_or(0.0);

            // Candidate B: remove the overlap from every descendant.
            let mut new_descendants: BTreeMap<usize, Option<Widget>> = BTreeMap::new();
            let mut sd = 0.0;
            for &j in &descendant_idxs {
                let removed = &gd[&j];
                let kept: Vec<DiffId> = widgets[j]
                    .init_diffs
                    .iter()
                    .copied()
                    .filter(|id| !removed.contains(id))
                    .collect();
                let replacement = self.repick(&widgets[j].path, kept, store, dialects);
                sd += widgets[j].cost - replacement.as_ref().map(|w| w.cost).unwrap_or(0.0);
                new_descendants.insert(j, replacement);
            }

            // Affected pairs: only queries touched by the removed records need re-checking.
            let affected_pairs: BTreeSet<(usize, usize)> = ga
                .iter()
                .chain(gd.values().flatten())
                .map(|id| {
                    let r = store.get(*id);
                    (r.q1, r.q2)
                })
                .collect();

            // Prefer the larger cost reduction; on a tie keep the fine-grained descendants
            // (removing from the ancestor), which also preserves generalisation.
            let try_order: [bool; 2] = if sa >= sd {
                [true, false] // true = apply candidate A (shrink the ancestor)
            } else {
                [false, true]
            };

            for apply_ancestor_shrink in try_order {
                let reduction = if apply_ancestor_shrink { sa } else { sd };
                if reduction <= 0.0 {
                    continue;
                }
                // Build the hypothetical widget set.
                let mut candidate: Vec<Widget> = Vec::with_capacity(widgets.len());
                for (idx, w) in widgets.iter().enumerate() {
                    if apply_ancestor_shrink && idx == a_idx {
                        if let Some(newer) = &new_ancestor {
                            candidate.push(newer.clone());
                        }
                    } else if !apply_ancestor_shrink && descendant_idxs.contains(&idx) {
                        if let Some(Some(newer)) = new_descendants.get(&idx) {
                            candidate.push(newer.clone());
                        }
                    } else if !w.domain.is_empty() {
                        candidate.push(w.clone());
                    }
                }
                if affected_pairs
                    .iter()
                    .all(|pair| pairs.pair_expressible(*pair, &candidate, store))
                {
                    // Commit.
                    if apply_ancestor_shrink {
                        match &new_ancestor {
                            Some(newer) => widgets[a_idx] = newer.clone(),
                            None => widgets[a_idx] = empty_widget(&widgets[a_idx]),
                        }
                    } else {
                        for &j in &descendant_idxs {
                            match new_descendants.get(&j) {
                                Some(Some(newer)) => widgets[j] = newer.clone(),
                                _ => widgets[j] = empty_widget(&widgets[j]),
                            }
                        }
                    }
                    improved = true;
                    break;
                }
            }
        }
        improved
    }
}

/// A placeholder for a widget whose record set became empty (filtered out at the end).
fn empty_widget(old: &Widget) -> Widget {
    Widget::new(old.ty, old.path.clone(), Domain::new(), Vec::new(), 0.0)
}

/// Per-query dialect lookup over a (possibly empty) tag vector: queries the log never
/// tagged fall back to the default dialect.
fn dialect_of(dialects: &[Dialect]) -> impl Fn(usize) -> Dialect + '_ {
    move |q| dialects.get(q).copied().unwrap_or_default()
}

/// Per-pair view of the diff store, used to verify that a merge never makes a compared query
/// pair inexpressible.
struct PairIndex {
    pairs: BTreeMap<(usize, usize), Vec<DiffId>>,
}

impl PairIndex {
    fn build(store: &DiffStore) -> Self {
        let mut pairs: BTreeMap<(usize, usize), Vec<DiffId>> = BTreeMap::new();
        for (id, record) in store.iter() {
            pairs.entry((record.q1, record.q2)).or_default().push(id);
        }
        PairIndex { pairs }
    }

    /// A pair stays expressible when every one of its leaf-diff paths is covered: either the
    /// leaf record itself is expressed by a widget, or an ancestor record of the pair whose
    /// path is a prefix of the leaf path is expressed by a widget (replacing the larger region
    /// also realises the leaf change).
    fn pair_expressible(
        &self,
        pair: (usize, usize),
        widgets: &[Widget],
        store: &DiffStore,
    ) -> bool {
        let Some(ids) = self.pairs.get(&pair) else {
            return true;
        };
        let expressed_paths: Vec<&Path> = ids
            .iter()
            .filter(|id| {
                let record = store.get(**id);
                widgets.iter().any(|w| w.expresses(record))
            })
            .map(|id| &store.get(*id).path)
            .collect();
        ids.iter()
            .map(|id| store.get(*id))
            .filter(|r| r.is_leaf)
            .all(|leaf| expressed_paths.iter().any(|p| p.is_prefix_of(&leaf.path)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;
    use pi_graph::{GraphBuilder, WindowStrategy};

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }
    use pi_widgets::WidgetType;

    fn graph(queries: &[&str], window: WindowStrategy) -> InteractionGraph {
        let parsed: Vec<Node> = queries.iter().map(|q| parse(q).unwrap()).collect();
        GraphBuilder::new().window(window).build(&parsed)
    }

    #[test]
    fn initialization_covers_every_query_before_merging() {
        let g = graph(
            &[
                "SELECT sales FROM t WHERE cty = 'USA'",
                "SELECT costs FROM t WHERE cty = 'EUR'",
                "SELECT sales FROM t WHERE cty = 'CHN'",
            ],
            WindowStrategy::AllPairs,
        );
        let mapper =
            InteractionMapper::new(WidgetLibrary::standard()).with_options(MapperOptions {
                enable_merging: false,
                ..MapperOptions::default()
            });
        let iface = mapper.map(&g);
        assert!(
            iface.expressiveness(g.queries()) >= 1.0,
            "{}",
            iface.describe()
        );
        // Initialization instantiates one widget per path partition.
        assert!(iface.widgets().len() >= 2);
    }

    #[test]
    fn merging_removes_the_redundant_whole_query_widget() {
        // Figure 4's situation: per-literal widgets plus a whole-query widget.  Merging keeps
        // the fine-grained pair and drops the expensive whole-query options.
        let g = graph(
            &[
                "SELECT sales FROM t WHERE cty = 'USA'",
                "SELECT costs FROM t WHERE cty = 'EUR'",
                "SELECT sales FROM t WHERE cty = 'CHN'",
                "SELECT costs FROM t WHERE cty = 'USA'",
            ],
            WindowStrategy::AllPairs,
        );
        let mapper = InteractionMapper::new(WidgetLibrary::standard());
        let iface = mapper.map(&g);
        assert!(
            iface.expressiveness(g.queries()) >= 1.0,
            "{}",
            iface.describe()
        );
        assert_eq!(iface.widgets().len(), 2, "{}", iface.describe());
        assert!(iface.widgets().iter().all(|w| !w.path.is_root()));
        // Both widgets operate on string literals.
        assert!(iface
            .widgets()
            .iter()
            .all(|w| matches!(w.ty, WidgetType::Dropdown | WidgetType::ToggleButton)));
    }

    #[test]
    fn merging_never_reduces_coverage() {
        let logs: Vec<Vec<&str>> = vec![
            vec![
                "SELECT avg(a)",
                "SELECT count(b)",
                "SELECT count(c)",
                "SELECT avg(d)",
            ],
            vec![
                "SELECT * FROM T",
                "SELECT * FROM (SELECT a FROM T WHERE b > 10)",
                "SELECT * FROM (SELECT a FROM T WHERE b > 20)",
                "SELECT * FROM (SELECT b FROM T WHERE b > 20)",
            ],
            vec![
                "SELECT * FROM SpecLineIndex WHERE specObjId = 0x400",
                "SELECT * FROM XCRedshift WHERE specObjId = 0x199",
                "SELECT * FROM SpecLineIndex WHERE specObjId = 0x3",
            ],
        ];
        for log in logs {
            for window in [WindowStrategy::AllPairs, WindowStrategy::Sliding(2)] {
                let g = graph(&log, window);
                let iface = InteractionMapper::new(WidgetLibrary::standard()).map(&g);
                assert!(
                    iface.expressiveness(g.queries()) >= 1.0,
                    "window {window:?}, log {log:?}:\n{}",
                    iface.describe()
                );
            }
        }
    }

    #[test]
    fn merging_is_monotone_in_cost() {
        let g = graph(
            &[
                "SELECT sales, day FROM t WHERE cty = 'USA' AND y = 1",
                "SELECT costs, day FROM t WHERE cty = 'EUR' AND y = 2",
                "SELECT sales, day FROM t WHERE cty = 'EUR' AND y = 3",
            ],
            WindowStrategy::AllPairs,
        );
        let merged = InteractionMapper::new(WidgetLibrary::standard()).map(&g);
        let unmerged = InteractionMapper::new(WidgetLibrary::standard())
            .with_options(MapperOptions {
                enable_merging: false,
                ..MapperOptions::default()
            })
            .map(&g);
        assert!(merged.cost() <= unmerged.cost());
        assert!(merged.widgets().len() <= unmerged.widgets().len());
    }

    #[test]
    fn empty_graph_maps_to_an_empty_interface() {
        let g = GraphBuilder::new().build(&[]);
        let iface = InteractionMapper::new(WidgetLibrary::standard()).map(&g);
        assert!(iface.widgets().is_empty());
        assert_eq!(iface.cost(), 0.0);
    }

    #[test]
    fn single_query_log_needs_no_widgets() {
        let g = graph(&["SELECT a FROM t"], WindowStrategy::AllPairs);
        let iface = InteractionMapper::new(WidgetLibrary::standard()).map(&g);
        assert!(iface.widgets().is_empty());
        assert!(iface.can_express(&g.queries()[0]));
    }
}
