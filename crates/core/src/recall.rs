//! Hold-out recall: how well an interface generated from training queries expresses unseen
//! queries from the same (or a different) analysis (§7.2).
//!
//! For an input log the experiments split off the last `n_holdout` queries, generate an
//! interface from a growing prefix of the remaining training queries, and report the fraction
//! of hold-out queries within the interface's closure ("recall").

use crate::pipeline::{GeneratedInterface, PiOptions, PrecisionInterfaces};
use pi_ast::Node;

/// One point of a recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecallPoint {
    /// Number of training queries used to generate the interface.
    pub training: usize,
    /// Fraction of hold-out queries the interface can express.
    pub recall: f64,
}

/// A train/hold-out split of a query log.
#[derive(Debug, Clone)]
pub struct Split<'a> {
    /// The training portion (interface generation input).
    pub train: &'a [Node],
    /// The hold-out portion (evaluation only).
    pub holdout: &'a [Node],
}

/// Splits a log into training and hold-out portions: the last `n_holdout` queries are held
/// out, everything before them is available for training.
pub fn split_log(log: &[Node], n_holdout: usize) -> Split<'_> {
    let n_holdout = n_holdout.min(log.len());
    let cut = log.len() - n_holdout;
    Split {
        train: &log[..cut],
        holdout: &log[cut..],
    }
}

/// Generates an interface from the training queries and measures recall on the hold-out set.
///
/// Returns the recall together with the generated interface so callers can also inspect the
/// widgets (Figures 6b and 6d show the interfaces themselves).
pub fn holdout_recall(
    train: &[Node],
    holdout: &[Node],
    options: &PiOptions,
) -> (f64, GeneratedInterface) {
    let generated = PrecisionInterfaces::new(options.clone()).from_queries(train.to_vec());
    let recall = if holdout.is_empty() {
        1.0
    } else {
        generated.interface.expressiveness(holdout)
    };
    (recall, generated)
}

/// Computes a recall curve: for each training size, generate an interface from that prefix of
/// the training queries and evaluate it on the hold-out set.
pub fn recall_curve(
    log: &[Node],
    training_sizes: &[usize],
    n_holdout: usize,
    options: &PiOptions,
) -> Vec<RecallPoint> {
    let split = split_log(log, n_holdout);
    training_sizes
        .iter()
        .map(|&n| {
            let n = n.min(split.train.len());
            let (recall, _) = holdout_recall(&split.train[..n], split.holdout, options);
            RecallPoint {
                training: n,
                recall,
            }
        })
        .collect()
}

/// The smallest training size (among the given candidates) whose recall reaches `target`,
/// if any — the "rate that the recall reaches 100%" summary the paper reports.
pub fn training_size_reaching(curve: &[RecallPoint], target: f64) -> Option<usize> {
    curve
        .iter()
        .find(|p| p.recall >= target)
        .map(|p| p.training)
}

/// Cross-client recall (§7.2.4): generate an interface from one client's log and measure how
/// much of *another* client's log it expresses.
pub fn cross_recall(train_log: &[Node], other_log: &[Node], options: &PiOptions) -> f64 {
    let (_, generated) = holdout_recall(train_log, &[], options);
    if other_log.is_empty() {
        return 1.0;
    }
    generated.interface.expressiveness(other_log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    fn structured_log(n: usize) -> Vec<Node> {
        // An SDSS-style log: the table alternates, the id literal keeps changing.
        (0..n)
            .map(|i| {
                let table = if i % 2 == 0 {
                    "SpecLineIndex"
                } else {
                    "XCRedshift"
                };
                parse(&format!(
                    "SELECT * FROM {table} WHERE specObjId = {}",
                    100 + (i as i64 % 7) * 5
                ))
                .unwrap()
            })
            .collect()
    }

    fn adhoc_log(n: usize) -> Vec<Node> {
        // Every query has a different structure: recall should stay low.
        (0..n)
            .map(|i| match i % 5 {
                0 => parse(&format!("SELECT a{i} FROM t{i}")).unwrap(),
                1 => parse(&format!("SELECT SUM(b{i}) FROM u GROUP BY c{i}")).unwrap(),
                2 => parse(&format!("SELECT * FROM v WHERE d{i} > {i} ORDER BY e{i}")).unwrap(),
                3 => parse(&format!(
                    "SELECT CAST(f{i}) AS x FROM w HAVING SUM(g) > {i}"
                ))
                .unwrap(),
                _ => parse(&format!(
                    "SELECT CASE WHEN h{i} = 1 THEN 'a' ELSE 'b' END FROM z"
                ))
                .unwrap(),
            })
            .collect()
    }

    #[test]
    fn split_respects_sizes_and_degenerate_inputs() {
        let log = structured_log(10);
        let split = split_log(&log, 4);
        assert_eq!(split.train.len(), 6);
        assert_eq!(split.holdout.len(), 4);
        let all_holdout = split_log(&log, 100);
        assert_eq!(all_holdout.train.len(), 0);
        assert_eq!(all_holdout.holdout.len(), 10);
    }

    #[test]
    fn structured_logs_reach_full_recall_with_few_training_queries() {
        let log = structured_log(60);
        let curve = recall_curve(&log, &[2, 5, 10, 20, 40], 20, &PiOptions::default());
        assert_eq!(curve.len(), 5);
        // Recall is (weakly) increasing for this log and reaches 1.0 well before the full
        // training set (paper: "10 queries is sufficient ... for the majority of client logs").
        for pair in curve.windows(2) {
            assert!(pair[1].recall >= pair[0].recall - 1e-9);
        }
        let reached = training_size_reaching(&curve, 1.0);
        assert!(reached.is_some(), "{curve:?}");
        assert!(reached.unwrap() <= 20, "{curve:?}");
    }

    #[test]
    fn adhoc_logs_have_low_recall() {
        let log = adhoc_log(60);
        let curve = recall_curve(&log, &[10, 30, 40], 20, &PiOptions::default());
        let last = curve.last().unwrap();
        assert!(
            last.recall < 0.5,
            "ad-hoc logs should not generalise: {curve:?}"
        );
    }

    #[test]
    fn cross_recall_is_high_for_similar_clients_and_low_for_different_ones() {
        let a = structured_log(40);
        let b = structured_log(30); // same analysis archetype
        let c = adhoc_log(30); // completely different
        let options = PiOptions::default();
        assert!(cross_recall(&a, &b, &options) > 0.9);
        assert!(cross_recall(&a, &c, &options) < 0.2);
    }

    #[test]
    fn empty_holdout_counts_as_perfect_recall() {
        let log = structured_log(5);
        let (recall, generated) = holdout_recall(&log, &[], &PiOptions::default());
        assert_eq!(recall, 1.0);
        assert_eq!(generated.queries.len(), 5);
    }
}
