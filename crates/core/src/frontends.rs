//! The workspace's standard front-end registry.
//!
//! `pi-core` is the only crate that knows every bundled front-end; everything else
//! (sessions, the UI compiler, examples) asks for this registry — or builds its own
//! [`Frontends`] when embedding a custom language.

use pi_ast::Frontends;

/// The bundled front-ends: SQL (`pi-sql`, the default) and the method-chain dataframe
/// dialect (`pi-frames`).
///
/// The default front-end — the first registered — handles untagged text
/// ([`Session::push_text`](crate::Session::push_text)) and is the rendering fallback for
/// unknown dialects.
pub fn standard_frontends() -> Frontends {
    Frontends::new()
        .with(pi_sql::SqlFrontend)
        .with(pi_frames::FramesFrontend)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Dialect;

    #[test]
    fn standard_registry_bundles_sql_and_frames_with_sql_default() {
        let frontends = standard_frontends();
        assert_eq!(frontends.dialects(), vec![Dialect::SQL, Dialect::FRAMES]);
        assert_eq!(frontends.default_dialect(), Some(Dialect::SQL));
        // The two front-ends target the same tree shapes: one analysis, one tree.
        let sql = frontends
            .get(Dialect::SQL)
            .unwrap()
            .parse_one(
                "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState",
            )
            .unwrap();
        let frames = frontends
            .get(Dialect::FRAMES)
            .unwrap()
            .parse_one("ontime.filter(Month == 9).groupby(DestState).agg(COUNT(Delay))")
            .unwrap();
        assert_eq!(sql, frames);
    }
}
