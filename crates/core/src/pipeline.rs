//! The end-to-end Precision Interfaces pipeline (Figure 2a).
//!
//! `query log → parse → interaction mining (graph) → interaction mapping (widgets) → interface`
//!
//! The pipeline reports per-stage wall-clock timings and graph statistics because the runtime
//! experiments (Figures 11 and 12, Appendix B) are defined in exactly those terms: number of
//! interaction-graph edges, interaction mining time, and interface mapping time.

use crate::interface::Interface;
use crate::mapper::{InteractionMapper, MapperOptions};
use crate::session::Session;
use pi_ast::Dialect;
use pi_diff::AncestorPolicy;
use pi_graph::{
    GraphBuilder, GraphStats, InteractionGraph, IntoQueryLog, QueryLog, WindowStrategy,
};
use pi_widgets::WidgetLibrary;
use std::fmt;

/// Configuration of the end-to-end pipeline.
#[derive(Debug, Clone)]
pub struct PiOptions {
    /// Pair enumeration strategy (sliding window vs all pairs, §6.1).
    pub window: WindowStrategy,
    /// Ancestor materialisation policy (LCA pruning, §6.2).
    pub policy: AncestorPolicy,
    /// Parallelise pairwise diffing across cores.
    pub parallel: bool,
    /// Worker-thread override for parallel mining (default `0` = automatic).
    ///
    /// `0` resolves to the `PI_THREADS` environment variable if set to a positive integer,
    /// else to every available core when [`PiOptions::parallel`] is on, else serial.  An
    /// explicit `n ≥ 1` wins over both: `1` forces the serial path, `n > 1` enables the
    /// work-stealing scheduler with exactly `n` workers even when `parallel` is off.  The
    /// mined graph is byte-identical at every setting — worker count only redistributes the
    /// work.
    pub threads: usize,
    /// Test-only hook: seeds a deterministic perturbation of the work-stealing schedule and
    /// bypasses the scheduler's cost gate, so property tests can drive tiny logs through
    /// steal interleavings a natural run would rarely produce.  `None` (the default) in
    /// production.  Snapshots are byte-identical for every seed — the scheduler merges
    /// results in block order, never steal order (property-tested).
    pub steal_seed: Option<u64>,
    /// Collapse duplicate queries and memoize pairwise alignments per distinct tree pair
    /// (on by default; beyond the paper's optimisations).  The mined graph is
    /// byte-identical either way — this knob exists for A/B measurement of the memo.
    pub memoize: bool,
    /// The widget type library (and cost functions) available to the mapper.
    pub library: WidgetLibrary,
    /// Mapper options (merging on/off, pass budget).
    pub mapper: MapperOptions,
}

impl Default for PiOptions {
    fn default() -> Self {
        PiOptions {
            window: WindowStrategy::Sliding(2),
            policy: AncestorPolicy::LcaPruned,
            parallel: false,
            threads: 0,
            steal_seed: None,
            memoize: true,
            library: WidgetLibrary::standard(),
            mapper: MapperOptions::default(),
        }
    }
}

impl PiOptions {
    /// The unoptimised baseline configuration: all pairs, full ancestor closure.
    pub fn baseline() -> Self {
        PiOptions {
            window: WindowStrategy::AllPairs,
            policy: AncestorPolicy::Full,
            ..PiOptions::default()
        }
    }
}

/// Wall-clock timings of the pipeline stages, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Parsing the SQL text into ASTs (zero when the input was already parsed).
    pub parse_ms: f64,
    /// Interaction mining: pairwise tree alignment and interaction-graph construction.
    pub mining_ms: f64,
    /// Interaction mapping: widget initialisation and merging.
    pub mapping_ms: f64,
}

impl StageTimings {
    /// Total end-to-end latency.
    pub fn total_ms(&self) -> f64 {
        self.parse_ms + self.mining_ms + self.mapping_ms
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse {:.1}ms, mining {:.1}ms, mapping {:.1}ms (total {:.1}ms)",
            self.parse_ms,
            self.mining_ms,
            self.mapping_ms,
            self.total_ms()
        )
    }
}

/// Errors the pipeline can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The log contained no parsable queries at all.
    EmptyLog,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::EmptyLog => write!(f, "the query log contains no parsable queries"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// The output of a pipeline run: the interface plus everything the experiments report.
///
/// Versioned: `version` is the number of queries the producing [`Session`] had ingested at
/// snapshot time, and snapshots with equal versions have identical graphs, stats and
/// interfaces (only the bookkeeping differs: `skipped` counts unparseable statements, which
/// don't bump the version, and `timings` keep accumulating).  A batch build of `n` queries
/// is the snapshot at version `n`.
#[derive(Debug, Clone)]
pub struct GeneratedInterface {
    /// The generated interactive interface.
    pub interface: Interface,
    /// The parsed queries that were used (unparseable log entries are dropped and counted),
    /// shared with the interaction graph rather than cloned out of it.
    pub queries: QueryLog,
    /// The mined interaction graph the interface was mapped from (shares `queries`).
    pub graph: InteractionGraph,
    /// The dialect each query arrived in, parallel to `queries`.  Batch entry points tag
    /// every query with the front-end they parsed with; mixed-front-end sessions carry one
    /// tag per push.
    pub dialects: Vec<Dialect>,
    /// Number of log entries that failed to parse and were skipped.
    pub skipped: usize,
    /// Interaction-graph statistics (edge and record counts).
    pub graph_stats: GraphStats,
    /// Per-stage timings.  For a streaming session every stage *accumulates* — parse over
    /// all `push_sql` calls, mining over all pushes, mapping over all snapshot refreshes —
    /// so this is the only field of a snapshot that is not batch-identical.
    pub timings: StageTimings,
    /// The number of queries ingested when this snapshot was taken.
    pub version: u64,
}

/// The Precision Interfaces system: configure once, run over query logs.
#[derive(Debug, Clone, Default)]
pub struct PrecisionInterfaces {
    options: PiOptions,
}

impl PrecisionInterfaces {
    /// Creates a pipeline with the given options.
    pub fn new(options: PiOptions) -> Self {
        PrecisionInterfaces { options }
    }

    /// The options this pipeline runs with.
    pub fn options(&self) -> &PiOptions {
        &self.options
    }

    /// Opens a streaming [`Session`] with this pipeline's options.
    ///
    /// The one-shot entry points below are thin wrappers over such a session — a session
    /// snapshot after `n` pushes is identical to a batch run over those `n` queries.
    pub fn session(&self) -> Session {
        Session::new(self.options.clone())
    }

    /// Runs the pipeline over a textual query log (statements separated by semicolons) in
    /// the given dialect, parsed by the matching front-end of the standard registry.
    ///
    /// Unparseable statements are skipped (and counted in
    /// [`GeneratedInterface::skipped`]) rather than aborting the run — real query logs contain
    /// typos and statements in unsupported dialects.
    pub fn from_text(
        &self,
        dialect: Dialect,
        log: &str,
    ) -> Result<GeneratedInterface, PipelineError> {
        let mut session = self.session();
        session.push_text_as(dialect, log);
        if session.is_empty() {
            return Err(PipelineError::EmptyLog);
        }
        Ok(session.into_snapshot())
    }

    /// Runs the pipeline over a textual SQL log.
    ///
    /// A SQL-dialect convenience kept for the workspace's founding front-end: exactly
    /// `from_text(Dialect::SQL, log)`, with no behaviour of its own (pinned by a unit
    /// test).  Prefer [`PrecisionInterfaces::from_text`] when the dialect is a parameter.
    pub fn from_sql_log(&self, log: &str) -> Result<GeneratedInterface, PipelineError> {
        self.from_text(Dialect::SQL, log)
    }

    /// Runs the pipeline over an already-parsed query log by streaming it through a
    /// [`Session`] — batch and streaming deliberately share one code path.  The wrapper
    /// stays cheap: owned `Vec<Node>` logs *move* into the session
    /// ([`IntoQueryLog::into_query_vec`]) and the consuming [`Session::into_snapshot`]
    /// moves the graph back out, so the only copy is for `Arc`'d inputs whose caller keeps
    /// sharing the nodes.
    pub fn from_queries(&self, queries: impl IntoQueryLog) -> GeneratedInterface {
        let mut session = self.session();
        session.push_all(queries.into_query_vec());
        session.into_snapshot()
    }

    /// The interaction-mining stage alone (exposed for the runtime experiments).
    pub fn mine(&self, queries: impl IntoQueryLog) -> InteractionGraph {
        GraphBuilder::new()
            .window(self.options.window)
            .policy(self.options.policy)
            .parallel(self.options.parallel)
            .threads(self.options.threads)
            .steal_seed(self.options.steal_seed)
            .memoize(self.options.memoize)
            .build(queries)
    }

    /// The interaction-mapping stage alone (exposed for the runtime experiments).
    /// Widget options get default dialect tags; use
    /// [`InteractionMapper::map_tagged`] directly when per-query dialects matter.
    pub fn map(&self, graph: &InteractionGraph) -> Interface {
        map_graph(&self.options, graph, &[])
    }
}

/// Maps a mined graph to an interface under the given options — the single mapping entry
/// point shared by batch runs and session snapshots.  `dialects` carries the per-query
/// front-end tags (parallel to the graph's log; missing entries default).
pub(crate) fn map_graph(
    options: &PiOptions,
    graph: &InteractionGraph,
    dialects: &[Dialect],
) -> Interface {
    InteractionMapper::new(options.library.clone())
        .with_options(options.mapper)
        .map_tagged(graph, dialects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::{Frontend as _, Node};

    fn parse(sql: &str) -> Node {
        pi_sql::SqlFrontend.parse_one(sql).unwrap()
    }

    #[test]
    fn pipeline_reports_timings_and_stats() {
        let log = "
            SELECT a FROM t WHERE x = 1;
            SELECT a FROM t WHERE x = 2;
            SELECT a FROM t WHERE x = 3;
        ";
        let out = PrecisionInterfaces::default().from_sql_log(log).unwrap();
        assert_eq!(out.queries.len(), 3);
        assert_eq!(out.skipped, 0);
        assert_eq!(out.version, 3);
        assert!(out.graph_stats.edges >= 2);
        // The result carries the mined graph itself, sharing the query log.
        assert_eq!(out.graph.stats(), out.graph_stats);
        assert!(std::sync::Arc::ptr_eq(out.graph.queries(), &out.queries));
        assert!(out.timings.total_ms() >= 0.0);
        assert!(out.timings.to_string().contains("total"));
    }

    #[test]
    fn unparseable_statements_are_skipped_not_fatal() {
        let log = "
            SELECT a FROM t WHERE x = 1;
            THIS IS NOT SQL AT ALL;
            SELECT a FROM t WHERE x = 2;
        ";
        let out = PrecisionInterfaces::default().from_sql_log(log).unwrap();
        assert_eq!(out.queries.len(), 2);
        assert_eq!(out.skipped, 1);
    }

    #[test]
    fn an_empty_log_is_an_error() {
        let err = PrecisionInterfaces::default()
            .from_sql_log("   ")
            .unwrap_err();
        assert_eq!(err, PipelineError::EmptyLog);
        assert!(err.to_string().contains("no parsable"));
        let err = PrecisionInterfaces::default()
            .from_sql_log("completely broken;")
            .unwrap_err();
        assert_eq!(err, PipelineError::EmptyLog);
    }

    #[test]
    fn from_sql_log_is_a_pinned_alias_of_the_generic_path() {
        // Deprecation hygiene: the SQL convenience must stay byte-identical to
        // from_text(Dialect::SQL, …) — same queries, same dialect tags, same interface.
        let log = "
            SELECT a FROM t WHERE x = 1;
            SELECT a FROM t WHERE x = 2;
            BROKEN STATEMENT;
        ";
        let via_alias = PrecisionInterfaces::default().from_sql_log(log).unwrap();
        let via_generic = PrecisionInterfaces::default()
            .from_text(Dialect::SQL, log)
            .unwrap();
        assert_eq!(via_alias.version, via_generic.version);
        assert_eq!(via_alias.skipped, via_generic.skipped);
        assert_eq!(via_alias.graph, via_generic.graph);
        assert_eq!(via_alias.dialects, via_generic.dialects);
        assert_eq!(via_alias.dialects, vec![Dialect::SQL; 2]);
        assert_eq!(
            via_alias.interface.widgets(),
            via_generic.interface.widgets()
        );
        assert_eq!(via_alias.interface.initial_dialect(), Dialect::SQL);
    }

    #[test]
    fn from_text_routes_through_the_matching_frontend() {
        let frames_log = "
            ontime.filter(Month == 9).groupby(DestState).agg(COUNT(Delay));
            ontime.filter(Month == 3).groupby(DestState).agg(COUNT(Delay));
        ";
        let generated = PrecisionInterfaces::default()
            .from_text(Dialect::FRAMES, frames_log)
            .unwrap();
        assert_eq!(generated.version, 2);
        assert_eq!(generated.dialects, vec![Dialect::FRAMES; 2]);
        assert_eq!(generated.interface.initial_dialect(), Dialect::FRAMES);
        assert_eq!(generated.interface.widgets().len(), 1);
        // The frames log mines exactly like the equivalent SQL log — one tree model.
        let sql_log = "
            SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState;
            SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 3 GROUP BY DestState;
        ";
        let sql = PrecisionInterfaces::default()
            .from_sql_log(sql_log)
            .unwrap();
        assert_eq!(generated.graph, sql.graph);
        assert_eq!(generated.interface.describe(), sql.interface.describe());
    }

    #[test]
    fn baseline_options_use_all_pairs_and_full_ancestors() {
        let options = PiOptions::baseline();
        assert_eq!(options.window, WindowStrategy::AllPairs);
        assert_eq!(options.policy, AncestorPolicy::Full);
    }

    #[test]
    fn baseline_has_more_edges_and_records_than_the_optimised_pipeline() {
        let queries: Vec<Node> = (0..20)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {i}")))
            .collect();
        let optimised = PrecisionInterfaces::default().from_queries(queries.clone());
        let baseline = PrecisionInterfaces::new(PiOptions::baseline()).from_queries(queries);
        assert!(baseline.graph_stats.edges > optimised.graph_stats.edges);
        assert!(baseline.graph_stats.diff_records > optimised.graph_stats.diff_records);
    }
}
