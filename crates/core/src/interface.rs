//! The interface model: widgets + initial query, cost, closure and expressiveness (§4.4).

use pi_ast::{Dialect, Node, NodeId, Path};
use pi_widgets::Widget;
use std::collections::BTreeSet;

/// An interactive interface `I = (W_I, q⁰_I)`: a set of widgets and an initial query.
///
/// Users interact with the widgets to transform the initial query into other queries of the
/// analysis; the set of all reachable queries is the interface's *closure*, and expressiveness,
/// recall and precision are all defined against it.
#[derive(Debug, Clone)]
pub struct Interface {
    widgets: Vec<Widget>,
    initial_query: Node,
    initial_dialect: Dialect,
}

impl Interface {
    /// Creates an interface from an initial query and a widget set.
    ///
    /// Widgets are kept sorted by path (shallowest first) so that closure-membership checks and
    /// closure enumeration apply whole-query substitutions before refining subtrees.
    /// The initial query is tagged with the default dialect; use
    /// [`Interface::with_initial_dialect`] when the originating front-end is known.
    pub fn new(initial_query: Node, mut widgets: Vec<Widget>) -> Self {
        widgets.sort_by(|a, b| {
            a.path
                .depth()
                .cmp(&b.path.depth())
                .then_with(|| a.path.cmp(&b.path))
        });
        Interface {
            widgets,
            initial_query,
            initial_dialect: Dialect::default(),
        }
    }

    /// Tags the initial query with the dialect of the front-end it arrived through
    /// (builder style).  Rendering layers use this to show `q⁰_I` in its own language.
    pub fn with_initial_dialect(mut self, dialect: Dialect) -> Self {
        self.initial_dialect = dialect;
        self
    }

    /// The interface's widgets.
    pub fn widgets(&self) -> &[Widget] {
        &self.widgets
    }

    /// Mutable access to the widgets (used by the interface editor to relabel them).
    pub fn widgets_mut(&mut self) -> &mut Vec<Widget> {
        &mut self.widgets
    }

    /// The initial query `q⁰_I` rendered when the interface loads.
    pub fn initial_query(&self) -> &Node {
        &self.initial_query
    }

    /// The dialect the initial query was written in.
    pub fn initial_dialect(&self) -> Dialect {
        self.initial_dialect
    }

    /// The interface cost: the sum of its widgets' costs (§4.4).
    pub fn cost(&self) -> f64 {
        self.widgets.iter().map(|w| w.cost).sum()
    }

    /// Whether a target query is in the interface's closure.
    ///
    /// The check simulates the only operation the interface supports — substituting, at each
    /// widget's path, a subtree the widget can express — starting from the initial query and
    /// processing widgets from shallowest to deepest (so a whole-query widget fires before the
    /// widgets that refine parts of it).  A widget fires when the current query disagrees with
    /// the target at the widget's path; if the widget cannot express the target's subtree
    /// exactly it places its closest domain member, letting deeper widgets finish the job
    /// (e.g. a TOP-clause toggle inserts `TOP 1`, then a slider moves the 1 to 10).
    pub fn can_express(&self, target: &Node) -> bool {
        if *target == self.initial_query {
            return true;
        }
        let mut current = self.initial_query.clone();
        for widget in &self.widgets {
            let target_sub = target.get(&widget.path);
            let current_sub = current.get(&widget.path);
            match target_sub {
                None => {
                    // The target has nothing at this path: remove the subtree if the widget
                    // offers an "absent" option.
                    if current_sub.is_some()
                        && widget.domain.includes_absent()
                        && current.remove_at(&widget.path).is_ok()
                    {
                        continue;
                    }
                }
                Some(t_sub) => {
                    if current_sub == Some(t_sub) {
                        continue;
                    }
                    // When the widget came from addition/deletion diffs the substitution may be
                    // an *insertion*: the target's parent has more children than the current
                    // query's parent (e.g. a WHERE clause slotted in before the GROUP BY).
                    let insert = widget.domain.includes_absent()
                        && widget
                            .path
                            .parent()
                            .map(|parent| {
                                let target_arity =
                                    target.get(&parent).map(Node::arity).unwrap_or(0);
                                let current_arity =
                                    current.get(&parent).map(Node::arity).unwrap_or(0);
                                target_arity > current_arity
                            })
                            .unwrap_or(false);
                    if widget.can_express_subtree(Some(t_sub)) {
                        if insert {
                            let _ = insert_at(&mut current, &widget.path, t_sub.clone());
                        } else {
                            let _ = place(&mut current, &widget.path, t_sub.clone());
                        }
                    } else if let Some(best) = closest_member(widget, t_sub, current_sub) {
                        // The widget cannot produce the target subtree on its own.  If deeper
                        // widgets exist under this path they may finish the job (e.g. a toggle
                        // inserts `TOP 1`, a slider then moves the 1 to 10), so place the
                        // closest domain member; otherwise only place it when it strictly
                        // reduces the remaining difference.
                        let has_deeper_widgets = self
                            .widgets
                            .iter()
                            .any(|other| widget.path.is_strict_prefix_of(&other.path));
                        let before = current_sub
                            .map(|c| difference_size(c, t_sub))
                            .unwrap_or(usize::MAX);
                        let after = difference_size(&best, t_sub);
                        if has_deeper_widgets || after < before {
                            let _ = place(&mut current, &widget.path, best);
                        }
                    }
                }
            }
        }
        current == *target
    }

    /// Expressiveness with respect to a log: `|closure ∩ Q| / |Q|` (§4.4).
    pub fn expressiveness(&self, log: &[Node]) -> f64 {
        if log.is_empty() {
            return 1.0;
        }
        let hits = log.iter().filter(|q| self.can_express(q)).count();
        hits as f64 / log.len() as f64
    }

    /// Enumerates (a bounded prefix of) the interface's closure: the cross-product of the
    /// widgets' explicit options applied to the initial query.  Numeric extrapolation is not
    /// enumerated (sliders contribute only their observed values).  Used by the precision
    /// experiment of Appendix D.
    ///
    /// One global [`NodeId`]-keyed memo is shared across all widget passes (the ROADMAP's
    /// "closure dedup at scale" item): `results` is append-only and pass `k` scans the
    /// queries known so far, appending only never-seen trees.  The previous per-pass
    /// structural-hash dedup rebuilt its set every pass, re-cloning and re-inserting every
    /// base query each time — O(|closure|) redundant set work per widget; the shared memo
    /// pays one O(1) `NodeId` probe per *candidate* instead (`enumerate_closure_512` in
    /// `BENCH_mining.json` tracks the win).
    pub fn enumerate_closure(&self, limit: usize) -> Vec<Node> {
        if limit == 0 {
            return Vec::new();
        }
        let mut results: Vec<Node> = vec![self.initial_query.clone()];
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        seen.insert(self.initial_query.id());

        'widgets: for widget in &self.widgets {
            // Apply every option of this widget to every query reachable so far; a base
            // query itself stays reachable ("leave as is") simply by staying in `results`.
            let known = results.len();
            for base in 0..known {
                for option in widget.domain.subtrees() {
                    if results.len() >= limit {
                        break 'widgets;
                    }
                    let mut candidate = results[base].clone();
                    if place(&mut candidate, &widget.path, option.clone()).is_ok()
                        && seen.insert(candidate.id())
                    {
                        results.push(candidate);
                    }
                }
                if widget.domain.includes_absent() {
                    if results.len() >= limit {
                        break 'widgets;
                    }
                    let mut candidate = results[base].clone();
                    if candidate.remove_at(&widget.path).is_ok() && seen.insert(candidate.id()) {
                        results.push(candidate);
                    }
                }
            }
            if results.len() >= limit {
                break;
            }
        }
        debug_assert!(results.len() <= limit);
        results
    }

    /// A multi-line description of the interface (widget types, paths, domains, costs),
    /// matching the widget listings shown for Figures 5, 6b and 6d.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "interface: {} widgets, cost {:.0}\n",
            self.widgets.len(),
            self.cost()
        ));
        for w in &self.widgets {
            out.push_str("  ");
            out.push_str(&w.describe());
            out.push('\n');
        }
        out
    }
}

/// Inserts `subtree` at `path`, shifting later siblings right (addition semantics).  Indices
/// past the end of the parent's child list clamp to an append.
fn insert_at(query: &mut Node, path: &Path, subtree: Node) -> Result<(), pi_ast::ReplaceError> {
    let Some(parent_path) = path.parent() else {
        return query.replace_at(path, subtree);
    };
    let idx = path.last().expect("non-root path");
    match query.get(&parent_path) {
        Some(parent) => {
            let slot = parent_path.child(idx.min(parent.arity()));
            query.insert_at(&slot, subtree)
        }
        None => Err(pi_ast::ReplaceError::PathNotFound { path: path.clone() }),
    }
}

/// Replaces the subtree at `path` (or appends/inserts when the slot does not exist yet).
fn place(query: &mut Node, path: &Path, subtree: Node) -> Result<(), pi_ast::ReplaceError> {
    if query.get(path).is_some() {
        return query.replace_at(path, subtree);
    }
    // The path does not exist: insert at the parent if possible (addition semantics).
    insert_at(query, path, subtree)
}

/// The widget's domain member closest to the target subtree (fewest differing leaf regions).
/// Members equal to the subtree currently at the widget's path are skipped — placing them
/// would be a no-op, and when the distances tie we want the option that makes progress.
fn closest_member(widget: &Widget, target: &Node, current: Option<&Node>) -> Option<Node> {
    widget
        .domain
        .subtrees()
        .iter()
        .filter(|&member| current != Some(member))
        .min_by_key(|member| difference_size(member, target))
        .cloned()
}

/// Number of minimal changed subtrees between two trees (0 when equal).
fn difference_size(a: &Node, b: &Node) -> usize {
    if a.same_tree(b) {
        0
    } else {
        pi_diff::leaf_changes(a, b).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }
    use pi_widgets::{Domain, WidgetLibrary};

    fn widget_for(path: &str, subtrees: Vec<Node>) -> Widget {
        let lib = WidgetLibrary::standard();
        lib.pick(
            path.parse().unwrap(),
            Domain::from_subtrees(subtrees),
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn empty_interface_expresses_only_its_initial_query() {
        let q0 = parse("SELECT a FROM t").unwrap();
        let iface = Interface::new(q0.clone(), vec![]);
        assert!(iface.can_express(&q0));
        assert!(!iface.can_express(&parse("SELECT b FROM t").unwrap()));
        assert_eq!(iface.cost(), 0.0);
        assert_eq!(iface.expressiveness(&[q0]), 1.0);
    }

    #[test]
    fn single_widget_substitution_and_cross_product() {
        let q0 = parse("SELECT a FROM t WHERE x = 1 AND c = 'US'").unwrap();
        let num = widget_for("2/0/0/1", vec![Node::int(1), Node::int(9)]);
        let cty = widget_for("2/0/1/1", vec![Node::string("US"), Node::string("EU")]);
        let iface = Interface::new(q0, vec![num, cty]);
        // Every combination of the two widgets' options is expressible, including pairs that
        // never co-occurred in any log entry.
        for (n, c) in [(1, "US"), (1, "EU"), (9, "US"), (9, "EU"), (5, "EU")] {
            let q = parse(&format!("SELECT a FROM t WHERE x = {n} AND c = '{c}'")).unwrap();
            assert!(iface.can_express(&q), "n={n} c={c}");
        }
        // Unknown strings are not expressible (the widget is a drop-down, not a text box).
        let q = parse("SELECT a FROM t WHERE x = 1 AND c = 'CN'").unwrap();
        assert!(!iface.can_express(&q));
        // Changes at paths without widgets are not expressible.
        let q = parse("SELECT b FROM t WHERE x = 1 AND c = 'US'").unwrap();
        assert!(!iface.can_express(&q));
    }

    #[test]
    fn whole_query_widget_expresses_its_domain_members() {
        let q0 = parse("SELECT avg(a)").unwrap();
        let q1 = parse("SELECT count(b)").unwrap();
        let q2 = parse("SELECT count(c)").unwrap();
        let root = widget_for("/", vec![q0.clone(), q1.clone(), q2.clone()]);
        let iface = Interface::new(q0, vec![root]);
        assert!(iface.can_express(&q1));
        assert!(iface.can_express(&q2));
        assert!(!iface.can_express(&parse("SELECT count(z)").unwrap()));
    }

    #[test]
    fn enumerate_closure_is_the_cross_product() {
        let q0 = parse("SELECT a FROM t WHERE x = 1 AND c = 'US'").unwrap();
        let num = widget_for("2/0/0/1", vec![Node::int(1), Node::int(9)]);
        let cty = widget_for("2/0/1/1", vec![Node::string("US"), Node::string("EU")]);
        let iface = Interface::new(q0, vec![num, cty]);
        let closure = iface.enumerate_closure(100);
        // 2 numeric options × 2 country options = 4 distinct queries.
        assert_eq!(closure.len(), 4);
        for q in &closure {
            assert!(iface.can_express(q));
        }
        // The limit is honoured — a hard upper bound, including the degenerate ends.
        assert_eq!(iface.enumerate_closure(2).len(), 2);
        assert_eq!(iface.enumerate_closure(1).len(), 1);
        assert_eq!(iface.enumerate_closure(3).len(), 3);
        assert!(iface.enumerate_closure(0).is_empty());
        for limit in 1..6 {
            assert!(iface.enumerate_closure(limit).len() <= limit);
        }
    }

    #[test]
    fn describe_lists_every_widget() {
        let q0 = parse("SELECT a FROM t WHERE x = 1").unwrap();
        let w = widget_for("2/0/1", vec![Node::int(1), Node::int(2)]);
        let iface = Interface::new(q0, vec![w]);
        let text = iface.describe();
        assert!(text.contains("1 widgets"));
        assert!(text.contains("slider"));
    }
}
