//! Streaming ingestion: a stateful [`Session`] that grows the interaction graph as queries
//! arrive and serves interface snapshots on demand.
//!
//! The paper's interaction graph is defined over a log that grows as the analyst works, and
//! the sliding-window optimisation (§6.1) means an appended query only ever pairs with its
//! `w` predecessors.  A `Session` exploits exactly that: [`Session::push`] runs only the new
//! alignments the window admits (`O(w)` for a sliding window, independent of how long the
//! log already is), appending their records to the session's [`pi_diff::DiffStore`] at
//! stable `DiffId` offsets, while [`Session::snapshot`] lazily re-runs the interaction
//! mapper and returns a versioned [`GeneratedInterface`].
//!
//! The load-bearing invariant — property-tested in `tests/properties.rs` and relied on by
//! the one-shot [`PrecisionInterfaces`](crate::PrecisionInterfaces) entry points, which are
//! thin wrappers over a `Session` — is **batch identity**: a snapshot after `n` pushes is
//! identical (same graph edges, same diff records in the same order, same widgets, same
//! rendered interface) to a batch build of those same `n` queries.
//!
//! Sessions are front-end pluggable: [`Session::push_text_as`] routes text through any
//! front-end of the session's [`Frontends`] registry, and every query carries its
//! originating [`Dialect`] into the snapshot.  Here the same analysis streams in through
//! *both* bundled front-ends — SQL and the dataframe dialect — and mines into one
//! interface because both parsers target one tree model:
//!
//! ```
//! use pi_ast::Dialect;
//! use pi_core::{PiOptions, Session};
//!
//! let mut session = Session::new(PiOptions::default());
//! session.push_sql("SELECT a FROM t WHERE x = 1");
//! session.push_text_as(Dialect::FRAMES, "t.filter(x == 2).select(a)");
//! let v2 = session.snapshot();
//! assert_eq!(v2.version, 2);
//! assert_eq!(v2.dialects, vec![Dialect::SQL, Dialect::FRAMES]);
//! assert_eq!(v2.interface.widgets().len(), 1);
//!
//! session.push_text_as(Dialect::FRAMES, "t.filter(x == 9).select(a)");
//! let v3 = session.snapshot();
//! assert_eq!(v3.version, 3);
//! assert!(v3.interface.expressiveness(&v3.queries) >= 1.0);
//! ```

use crate::interface::Interface;
use crate::pipeline::{GeneratedInterface, PiOptions, StageTimings};
use pi_ast::codec;
use pi_ast::{CodecError, Dialect, ErrorSample, FrontendError, Frontends, Node};
use pi_graph::{GraphAccumulator, GraphBuilder, GraphStats, InteractionGraph, WindowStrategy};
use std::collections::HashMap;
use std::time::Instant;

/// Leading bytes of every session snapshot — a cheap "is this even ours?" gate before any
/// structured decoding runs.
const SNAPSHOT_MAGIC: &[u8; 6] = b"PISNAP";

/// The snapshot format version this build writes and the single version it reads.
///
/// Any change to the wire layout — section order, kind table order, primitive encodings —
/// must bump this; the golden-fixture compatibility test exists to catch layout drift that
/// forgot to.  Snapshots from other versions fail restore with [`CodecError::Version`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// A memoised snapshot, reused until the next push invalidates it.
#[derive(Debug, Clone)]
struct CachedSnapshot {
    version: u64,
    graph: InteractionGraph,
    stats: GraphStats,
    interface: Interface,
}

/// How many parsed queries a streaming push buffers before handing them to the graph
/// builder in one `extend_batch` call.  Large enough to amortise per-batch overhead and let
/// parallel mining fan out; small enough that a streaming session never materialises more
/// than a sliver of the trace.
const STREAM_CHUNK: usize = 1024;

/// Estimated footprint cap for the parse cache; reaching it clears the cache (generational
/// eviction — the hot fragments of a repetitive trace repopulate it within one chunk).
const PARSE_CACHE_MAX_BYTES: usize = 16 << 20;

/// A hash-keyed, collision-safe cache of parsed text fragments.
///
/// Query logs are overwhelmingly repetitive — the same statement text arrives thousands of
/// times — and parsing is the streaming bottleneck (~8µs per SQL statement vs ~100ns for a
/// dedup hash lookup).  The cache maps `(dialect, fragment text)` to the parsed statements,
/// keyed by a 64-bit hash but verified by exact text + dialect comparison (a colliding
/// fragment can never serve another's trees).  Cache hits clone the cached trees, which is
/// a refcount bump per statement; the dedup arena then recognises the duplicate shape and
/// drops the clone, so a cached hit allocates nothing.
///
/// Only fragments that parse *cleanly* are cached: a fragment with garbage statements is
/// re-parsed on every occurrence so its failures keep counting (each occurrence of a bad
/// line is one skipped statement, cached or not).
#[derive(Debug, Clone, Default)]
struct ParseCache {
    entries: HashMap<u64, Vec<CachedFragment>>,
    bytes: usize,
}

#[derive(Debug, Clone)]
struct CachedFragment {
    dialect: Dialect,
    text: Box<str>,
    statements: Vec<Node>,
}

impl ParseCache {
    fn key(dialect: Dialect, text: &str) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        dialect.name().hash(&mut h);
        text.hash(&mut h);
        h.finish()
    }

    fn get(&self, dialect: Dialect, text: &str) -> Option<&[Node]> {
        self.entries
            .get(&Self::key(dialect, text))?
            .iter()
            .find(|f| f.dialect == dialect && &*f.text == text)
            .map(|f| f.statements.as_slice())
    }

    fn insert(&mut self, dialect: Dialect, text: &str, statements: Vec<Node>) {
        // Entry estimate: the owned text, the statement handles, map/bucket overhead.  The
        // trees themselves are shared with the dedup arena (the arena's representative is
        // physically the tree parsed here), so they are accounted there, not twice.
        let cost = text.len() + statements.len() * std::mem::size_of::<Node>() + 96;
        if self.bytes + cost > PARSE_CACHE_MAX_BYTES {
            self.entries.clear();
            self.bytes = 0;
        }
        self.bytes += cost;
        self.entries
            .entry(Self::key(dialect, text))
            .or_default()
            .push(CachedFragment {
                dialect,
                text: text.into(),
                statements,
            });
    }

    /// Estimated bytes retained (text + handles + overhead; shared subtrees excluded).
    fn footprint_bytes(&self) -> usize {
        self.bytes
    }
}

/// Result of [`Session::rebuild_quarantining`]: the rebuilt session plus the statements
/// that had to be excluded to complete the rebuild.
#[derive(Debug)]
pub struct RebuildOutcome {
    /// The session rebuilt from the base with every surviving statement replayed in order.
    pub session: Session,
    /// `(history index, panic message)` for each quarantined statement, in the order they
    /// were discovered.  Empty when the whole history replayed cleanly.
    pub quarantined: Vec<(usize, String)>,
}

/// Best-effort extraction of a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A stateful, append-only ingestion session over one analysis's query stream.
///
/// Sessions are **front-end pluggable**: text arrives through [`Session::push_text`] (the
/// default front-end) or [`Session::push_text_as`] (any registered dialect), every query
/// carries the [`Dialect`] it arrived in, and the tags thread through the mined widget
/// domains into the snapshot so the UI can render each closure query in its originating
/// language.  Mining itself is dialect-blind — the front-ends target one tree model, so a
/// mixed SQL + dataframe log diffs into one interaction graph.
///
/// Sessions exploit log repetition the same way batch builds do: the duplicate-collapsing
/// alignment memo (`pi_graph::DiffMemo`) lives in the session's accumulator and persists
/// across pushes, so re-pushing an already-seen query shape costs hash lookups — the
/// expensive tree alignments ran when its shape first paired with the others.  The memo is
/// invisible in snapshots (byte-identical graphs with [`PiOptions::memoize`] on or off).
///
/// Cloning a session forks it: both halves share the diff subtrees accumulated so far
/// (records are `Arc`-shared) but evolve independently from the clone point.
///
/// Sessions are `Send` (asserted by a compile-time test): a multi-tenant host like
/// `pi-server`'s `SessionPool` can move each tenant's session behind its own lock and
/// apply pushes from whichever worker thread picks the tenant up.  They are *not* designed
/// for shared mutation — one session, one writer at a time.
#[derive(Debug, Clone)]
pub struct Session {
    options: PiOptions,
    frontends: Frontends,
    default_dialect: Dialect,
    builder: GraphBuilder,
    acc: GraphAccumulator,
    /// A restored-but-not-yet-expanded pair table ([`Session::restore`] defers store and
    /// edge materialization; any graph access or push hydrates it first).  `None` for
    /// live sessions.
    latent: Option<pi_graph::codec::LatentPairs>,
    /// Distinct dialects seen so far, in first-push order (a handful of entries).
    dialect_table: Vec<Dialect>,
    /// Per-row dialect tag: one byte indexing [`Session::dialect_table`], instead of a
    /// 16-byte `Dialect` per row — at trace scale the difference is megabytes.
    dialect_tags: Vec<u8>,
    skipped: usize,
    errors: ErrorSample,
    parse_cache: ParseCache,
    parse_ms: f64,
    mining_ms: f64,
    mapping_ms: f64,
    cache: Option<CachedSnapshot>,
}

impl Session {
    /// Opens an empty session with the given pipeline options and the standard front-end
    /// registry (SQL as the default dialect, frames alongside).
    pub fn new(options: PiOptions) -> Self {
        Session::with_frontends(options, crate::frontends::standard_frontends())
    }

    /// Opens an empty session over a custom front-end registry.  The registry's first
    /// front-end becomes the session's default dialect (empty registries default to SQL,
    /// leaving the session usable for pre-parsed pushes only).
    pub fn with_frontends(options: PiOptions, frontends: Frontends) -> Self {
        let builder = GraphBuilder::new()
            .window(options.window)
            .policy(options.policy)
            .parallel(options.parallel)
            .threads(options.threads)
            .steal_seed(options.steal_seed)
            .memoize(options.memoize);
        let default_dialect = frontends.default_dialect().unwrap_or_default();
        Session {
            options,
            frontends,
            default_dialect,
            builder,
            acc: GraphAccumulator::new(),
            latent: None,
            dialect_table: Vec::new(),
            dialect_tags: Vec::new(),
            skipped: 0,
            errors: ErrorSample::new(ErrorSample::DEFAULT_CAPACITY),
            parse_cache: ParseCache::default(),
            parse_ms: 0.0,
            mining_ms: 0.0,
            mapping_ms: 0.0,
            cache: None,
        }
    }

    /// The table index for `dialect`, minting a new slot on first sight.
    fn tag_for(&mut self, dialect: Dialect) -> u8 {
        match self.dialect_table.iter().position(|d| *d == dialect) {
            Some(i) => i as u8,
            None => {
                assert!(
                    self.dialect_table.len() < 256,
                    "a session supports at most 256 distinct dialects"
                );
                self.dialect_table.push(dialect);
                (self.dialect_table.len() - 1) as u8
            }
        }
    }

    /// Changes which dialect handles untagged pushes (builder style).  The dialect should
    /// name a registered front-end for [`Session::push_text`] to parse anything.
    pub fn with_default_dialect(mut self, dialect: Dialect) -> Self {
        self.default_dialect = dialect;
        self
    }

    /// The options this session runs with.
    pub fn options(&self) -> &PiOptions {
        &self.options
    }

    /// The front-end registry this session routes text through.
    pub fn frontends(&self) -> &Frontends {
        &self.frontends
    }

    /// The dialect untagged pushes are attributed to.
    pub fn default_dialect(&self) -> Dialect {
        self.default_dialect
    }

    /// The dialect each ingested query arrived in, parallel to the log rows (row `i` was
    /// pushed in `dialects()[i]`).
    ///
    /// Materialised on demand: internally the session stores one *byte* per row (an index
    /// into a tiny table of distinct dialects), so this allocates `O(n)`.  Poll
    /// [`Session::len`]/[`Session::skipped`] for gauges instead.
    pub fn dialects(&self) -> Vec<Dialect> {
        self.dialect_tags
            .iter()
            .map(|&t| self.dialect_table[t as usize])
            .collect()
    }

    /// Appends one parsed query tagged with the default dialect; see
    /// [`Session::push_tagged`].
    pub fn push(&mut self, query: Node) -> usize {
        self.push_tagged(self.default_dialect, query)
    }

    /// Appends one parsed query, incrementally extending the interaction graph: only the
    /// `(i, n)` alignments the window strategy admits are run, so for a sliding window of
    /// `w` this is `O(w)` work however long the log already is.  The query is tagged as
    /// originating in `dialect` (presentation metadata — mining never looks at it).
    /// Returns the query's log index.
    pub fn push_tagged(&mut self, dialect: Dialect, query: Node) -> usize {
        self.ensure_hydrated();
        let tag = self.tag_for(dialect);
        let start = Instant::now();
        let index = self.builder.extend(&mut self.acc, query);
        self.mining_ms += start.elapsed().as_secs_f64() * 1e3;
        self.dialect_tags.push(tag);
        index
    }

    /// Appends every query of an iterator with the default dialect tag; see
    /// [`Session::push_all_tagged`].
    ///
    /// Uniform tags keep the batch fast path: the iterator flows straight into the graph
    /// builder (no per-item tag pairing) and the tag vector extends by count.
    pub fn push_all<I: IntoIterator<Item = Node>>(&mut self, queries: I) -> usize {
        self.ensure_hydrated();
        let tag = self.tag_for(self.default_dialect);
        let start = Instant::now();
        let appended = self.builder.extend_batch(&mut self.acc, queries);
        self.mining_ms += start.elapsed().as_secs_f64() * 1e3;
        self.dialect_tags
            .resize(self.dialect_tags.len() + appended.len(), tag);
        appended.len()
    }

    /// Appends every `(dialect, query)` pair of an iterator, returning how many were
    /// appended.
    ///
    /// Unlike per-query [`Session::push`], a bulk append with enough new alignments fans
    /// them out across cores when the session's options ask for parallel mining — so the
    /// one-shot batch entry points, which are wrappers over this, keep their multi-core
    /// path.  The resulting graph is byte-identical either way.
    pub fn push_all_tagged<I: IntoIterator<Item = (Dialect, Node)>>(
        &mut self,
        queries: I,
    ) -> usize {
        self.ensure_hydrated();
        let (tags, nodes): (Vec<Dialect>, Vec<Node>) = queries.into_iter().unzip();
        let tags: Vec<u8> = tags.into_iter().map(|d| self.tag_for(d)).collect();
        let start = Instant::now();
        let appended = self.builder.extend_batch(&mut self.acc, nodes);
        self.mining_ms += start.elapsed().as_secs_f64() * 1e3;
        debug_assert_eq!(appended.len(), tags.len());
        self.dialect_tags.extend(tags);
        appended.len()
    }

    /// Parses a fragment of text (one or more `;`-separated statements) with the default
    /// front-end and appends every statement that parses; see [`Session::push_text_as`].
    pub fn push_text(&mut self, text: &str) -> Vec<usize> {
        self.push_text_as(self.default_dialect, text)
    }

    /// Parses a fragment of text with the front-end registered for `dialect` and appends
    /// every statement that parses, returning the appended log indices.
    ///
    /// Unparseable statements are skipped and counted in [`Session::skipped`] rather than
    /// aborting the stream — live query logs contain typos and statements in unsupported
    /// dialects, and one of them must not wedge the session.  A dialect with no registered
    /// front-end skips the whole fragment (counted once).
    pub fn push_text_as(&mut self, dialect: Dialect, text: &str) -> Vec<usize> {
        let Some(frontend) = self.frontends.get(dialect).cloned() else {
            self.skipped += 1;
            self.errors.offer_with(|| {
                FrontendError::new(dialect, "no front-end registered for this dialect")
            });
            return Vec::new();
        };
        let start = Instant::now();
        let mut parsed = Vec::new();
        let skipped = frontend.parse_statements_lossy(text, &mut parsed, &mut self.errors);
        self.parse_ms += start.elapsed().as_secs_f64() * 1e3;
        self.skipped += skipped;
        parsed
            .into_iter()
            .map(|query| self.push_tagged(dialect, query))
            .collect()
    }

    /// Rebuilds a session by replaying a statement history over a fresh base, quarantining
    /// every statement whose replay panics instead of letting it poison the session.
    ///
    /// This is the supervisor's recovery primitive: when a worker panics mid-mining, the
    /// accumulator it was extending may be half-mutated, so the only safe state to return
    /// to is *base + replay of the surviving history*.  A panic mid-`push` can likewise
    /// leave the partially rebuilt session inconsistent, so rather than skipping the bad
    /// statement and continuing in place, the rebuild **restarts from a fresh base** with
    /// the offender excluded — `base` is a factory, called once per attempt.  The loop
    /// terminates after at most `statements.len() + 1` attempts (each restart quarantines
    /// one more statement).
    ///
    /// `push` applies one statement to the session (the plain form is
    /// `|s, d, t| { s.push_text_as(d, t); }`); callers with fault-injection or
    /// instrumentation hooks interpose here, and any panic it raises — organic or
    /// injected — is caught.  Returns the rebuilt session plus `(index, panic message)`
    /// for each quarantined statement, in quarantine order.
    ///
    /// Replaying one statement at a time is byte-identical to the streaming ingest path
    /// (the `push_stream_tagged` equivalence property), so a rebuilt session with nothing
    /// quarantined matches the session it replaces exactly.
    pub fn rebuild_quarantining<S, B, P>(
        base: B,
        statements: &[(Dialect, S)],
        mut push: P,
    ) -> RebuildOutcome
    where
        S: AsRef<str>,
        B: Fn() -> Session,
        P: FnMut(&mut Session, Dialect, &str),
    {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut quarantined: Vec<(usize, String)> = Vec::new();
        'attempt: loop {
            let mut session = base();
            for (i, (dialect, text)) in statements.iter().enumerate() {
                if quarantined.iter().any(|(q, _)| *q == i) {
                    continue;
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    push(&mut session, *dialect, text.as_ref());
                }));
                if let Err(payload) = outcome {
                    quarantined.push((i, panic_message(payload.as_ref())));
                    continue 'attempt;
                }
            }
            return RebuildOutcome {
                session,
                quarantined,
            };
        }
    }

    /// Streams text fragments tagged with the default dialect; see
    /// [`Session::push_stream_tagged`].
    pub fn push_stream<I>(&mut self, lines: I) -> usize
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let dialect = self.default_dialect;
        self.push_stream_tagged(lines.into_iter().map(move |line| (dialect, line)))
    }

    /// Streams an arbitrarily long sequence of `(dialect, text)` fragments through the
    /// session in bounded memory, returning how many statements were appended.
    ///
    /// This is the trace-scale ingest path.  Three things distinguish it from looping over
    /// [`Session::push_text_as`]:
    ///
    /// * **the trace is never materialised** — fragments are parsed as they arrive and
    ///   buffered in fixed-size chunks (1024 parsed queries), each handed to the graph
    ///   builder in one batch (which also lets parallel mining fan out when the options ask
    ///   for it); peak transient state is one chunk, however long the stream;
    /// * **repeated text parses once** — a collision-safe cache maps `(dialect, text)` to
    ///   its parsed statements, so the duplicate-heavy steady state of a real query log
    ///   costs a hash lookup and a refcount bump per repeat instead of a full parse;
    /// * **garbage is skip-and-count** — malformed statements increment
    ///   [`Session::skipped`] and feed the bounded [`Session::parse_errors`] sample without
    ///   allocating per failure, and never abort the stream.
    ///
    /// Combined with the accumulator's distinct-tree arena (duplicate shapes share one
    /// retained tree), session memory grows with the number of *distinct* statements `d`
    /// plus ~5 bytes per row — see [`Session::memory_footprint`] — not with total trace
    /// volume.  The graph, snapshots and widgets are byte-identical to pushing the same
    /// statements one at a time.
    pub fn push_stream_tagged<I, S>(&mut self, lines: I) -> usize
    where
        I: IntoIterator<Item = (Dialect, S)>,
        S: AsRef<str>,
    {
        let mut appended = 0usize;
        let mut chunk: Vec<Node> = Vec::with_capacity(STREAM_CHUNK);
        let mut chunk_tags: Vec<u8> = Vec::with_capacity(STREAM_CHUNK);
        let mut scratch: Vec<Node> = Vec::new();
        for (dialect, line) in lines {
            let text = line.as_ref();
            let tag = self.tag_for(dialect);
            if let Some(statements) = self.parse_cache.get(dialect, text) {
                chunk.extend(statements.iter().cloned());
                chunk_tags.resize(chunk.len(), tag);
            } else {
                let Some(frontend) = self.frontends.get(dialect).cloned() else {
                    self.skipped += 1;
                    self.errors.offer_with(|| {
                        FrontendError::new(dialect, "no front-end registered for this dialect")
                    });
                    continue;
                };
                let start = Instant::now();
                let skipped = frontend.parse_statements_lossy(text, &mut scratch, &mut self.errors);
                self.parse_ms += start.elapsed().as_secs_f64() * 1e3;
                self.skipped += skipped;
                if skipped == 0 {
                    // Clean fragments are cached; the cached handles share the trees the
                    // dedup arena will retain, so this pins no extra tree memory.
                    self.parse_cache.insert(dialect, text, scratch.clone());
                }
                chunk.append(&mut scratch);
                chunk_tags.resize(chunk.len(), tag);
            }
            if chunk.len() >= STREAM_CHUNK {
                appended += self.flush_chunk(&mut chunk, &mut chunk_tags);
            }
        }
        appended += self.flush_chunk(&mut chunk, &mut chunk_tags);
        appended
    }

    /// Hands one buffered chunk of parsed queries to the graph builder.
    fn flush_chunk(&mut self, chunk: &mut Vec<Node>, tags: &mut Vec<u8>) -> usize {
        if chunk.is_empty() {
            return 0;
        }
        self.ensure_hydrated();
        let start = Instant::now();
        let appended = self.builder.extend_batch(&mut self.acc, chunk.drain(..));
        self.mining_ms += start.elapsed().as_secs_f64() * 1e3;
        debug_assert_eq!(appended.len(), tags.len());
        self.dialect_tags.append(tags);
        appended.len()
    }

    /// Parses a fragment of SQL text and appends every statement that parses.
    ///
    /// A SQL-dialect convenience kept for the workspace's founding front-end: exactly
    /// `push_text_as(Dialect::SQL, sql)`, with no behaviour of its own (pinned by a unit
    /// test).  Prefer [`Session::push_text_as`] when the dialect is a parameter.
    pub fn push_sql(&mut self, sql: &str) -> Vec<usize> {
        self.push_text_as(Dialect::SQL, sql)
    }

    /// Number of queries ingested so far.
    ///
    /// Cheap (a field read, no snapshot) — this is what occupancy gauges poll, e.g. the
    /// per-tenant `queries` figure in `pi-server`'s `/stats`, without forcing the mapper
    /// to run.  Equals [`Session::version`].
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// True when no query has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Number of unparseable (or unregistered-dialect) statements skipped so far by the
    /// text entry points — [`Session::push_text`], [`Session::push_text_as`] and the
    /// [`Session::push_sql`] alias.
    ///
    /// Cheap (a field read, no snapshot), so health endpoints can report parse-garbage
    /// rates per poll without re-deriving them from [`GeneratedInterface::skipped`].
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// A bounded sample of recent parse failures (plus an exact total in
    /// [`ErrorSample::seen`]), for `/stats`-style health endpoints.  Retention is capped:
    /// streaming a garbage-heavy trace keeps a recent-ish window of
    /// [`ErrorSample::DEFAULT_CAPACITY`] errors, not one per failure.
    pub fn parse_errors(&self) -> &ErrorSample {
        &self.errors
    }

    /// Estimated bytes of query-log storage this session retains, live (no snapshot).
    ///
    /// Counts the distinct-tree arena (~128 bytes per retained tree node, one tree per
    /// *distinct* query shape), per-class bookkeeping, the per-row class id (4 bytes) and
    /// dialect tag (1 byte), the parse cache (fragment text + handles; its trees are the
    /// arena's, not double-counted) and the bounded error sample.  For a repetitive trace
    /// the estimate is dominated by the `d` distinct shapes and grows only ~5 bytes per
    /// additional duplicate row — the property the trace-scale smoke test asserts.
    ///
    /// Mined state is counted too: the `DiffStore`'s record rows (whose shared change
    /// payloads alias the arena and are not double-counted) and the alignment memo's
    /// per-pair bookkeeping — the two structures a persisted snapshot must carry, so this
    /// figure is also the right capacity gauge for eviction-to-snapshot hosts.  Record rows
    /// grow with mining volume (each admitted pair appends its records), while the memo
    /// grows only with *distinct shape pairs* — duplicate-heavy streams keep it flat.
    ///
    /// Deliberately excluded: the edge list (observable via [`Session::graph_stats`]) and
    /// any cached snapshot (dropped/refreshed per version).  The figure is an estimate from
    /// documented per-node constants, not an allocator measurement, so it is stable across
    /// platforms and suitable for assertions and gauges.
    pub fn memory_footprint(&self) -> usize {
        // While a restored pair table is still latent, its compact bytes stand in for the
        // store it will expand into (the memo and arena are already live).
        let store_bytes = match &self.latent {
            Some(latent) => latent.byte_len(),
            None => self.acc.store().footprint_bytes(),
        };
        self.acc.log_footprint_bytes()
            + store_bytes
            + self.acc.memo().footprint_bytes()
            + self.dialect_tags.len()
            + self.dialect_table.len() * std::mem::size_of::<Dialect>()
            + self.parse_cache.footprint_bytes()
            + self.errors.len() * 96
    }

    /// The session version: the number of queries ingested so far.  Bumps on every
    /// successful append, so two snapshots with the same version have identical graphs,
    /// stats and interfaces — and a snapshot at version `n` is identical to a batch build
    /// of the session's first `n` queries.  (Only the bookkeeping fields differ: `skipped`
    /// counts unparseable statements, which don't bump the version, and timings keep
    /// accumulating.)
    pub fn version(&self) -> u64 {
        self.acc.len() as u64
    }

    /// The number of distinct tree shapes among the ingested queries (`d ≤ n`): the size of
    /// the arena the session actually retains trees in.  Cheap (a field read).
    pub fn distinct(&self) -> usize {
        self.acc.distinct()
    }

    /// The query at log row `idx` — the retained representative of its shape class,
    /// structurally identical to the query pushed at that row.  The full row-indexed log is
    /// available from [`Session::snapshot`] (`queries`), which materialises it once per
    /// version.
    pub fn query(&self, idx: usize) -> &Node {
        self.acc.query(idx)
    }

    /// Eagerly expands a restored session's latent pair table into the live store and
    /// edge list (a no-op on live sessions).
    ///
    /// Restore defers this expansion — and the pair table's full validation scan — so
    /// rehydrating a pooled tenant costs distinct-state-scale milliseconds; it otherwise
    /// runs implicitly on the first graph access, push or re-persist.  Hosts that want the
    /// cost paid at a restore boundary rather than on the first request call this.
    pub fn hydrate(&mut self) {
        self.ensure_hydrated();
    }

    fn ensure_hydrated(&mut self) {
        if let Some(latent) = self.latent.take() {
            // Deliberately not folded into `mining_ms`: hydration replays already-mined
            // state, and the persisted timings must stay byte-stable across
            // persist ∘ restore ∘ persist.
            //
            // The expansion scan can only fail on bytes the checksummed frame accepted —
            // i.e. an encoder bug, not storage corruption — so a panic (not a mangled
            // graph) is the right failure mode here.
            pi_graph::codec::hydrate_pairs(&mut self.acc, latent)
                .expect("checksummed pair table failed its hydration scan");
        }
    }

    /// Summary statistics of the graph mined so far (cheap; does not run the mapper —
    /// though the first call on a freshly restored session expands its latent pair table).
    pub fn graph_stats(&mut self) -> GraphStats {
        self.ensure_hydrated();
        self.acc.stats()
    }

    /// A frozen copy of the interaction graph mined so far (cheap relative to mining:
    /// record subtrees are `Arc`-shared, only the log's nodes are cloned into the shared
    /// allocation).
    pub fn graph(&mut self) -> InteractionGraph {
        self.ensure_hydrated();
        self.acc.to_graph()
    }

    /// Returns the generated interface for everything ingested so far.
    ///
    /// Lazy: the interaction mapper only re-runs when queries were pushed since the last
    /// snapshot; repeated snapshots at the same version are served from cache.  The result
    /// is versioned ([`GeneratedInterface::version`]) and **batch-identical**: its graph,
    /// stats and interface are exactly what
    /// [`PrecisionInterfaces::from_queries`](crate::PrecisionInterfaces::from_queries)
    /// would produce for the same query prefix.  Only the timings differ — a session
    /// reports its *accumulated* per-stage cost across all pushes and re-maps.
    ///
    /// Cost: pushes are `O(w)`, but a *refreshed* snapshot is not — it clones the log into
    /// a shared allocation (`O(n)` node clones; diff subtrees stay `Arc`-shared) and re-runs
    /// the mapper.  Snapshot at the cadence the interface refreshes, not per append; the
    /// `session_refresh_sliding16` bench tracks this cost honestly.
    pub fn snapshot(&mut self) -> GeneratedInterface {
        let version = self.version();
        let dialects = self.dialects();
        let stale = !matches!(&self.cache, Some(c) if c.version == version);
        if stale {
            self.ensure_hydrated();
            let graph = self.acc.to_graph();
            let start = Instant::now();
            let interface = crate::pipeline::map_graph(&self.options, &graph, &dialects);
            self.mapping_ms += start.elapsed().as_secs_f64() * 1e3;
            self.cache = Some(CachedSnapshot {
                version,
                stats: graph.stats(),
                graph,
                interface,
            });
        }
        let cached = self.cache.as_ref().expect("snapshot cache just refreshed");
        GeneratedInterface {
            interface: cached.interface.clone(),
            queries: cached.graph.queries().clone(),
            graph: cached.graph.clone(),
            dialects,
            skipped: self.skipped,
            graph_stats: cached.stats,
            timings: self.timings(),
            version,
        }
    }

    /// Consumes the session, producing its final snapshot without retaining a cache.
    ///
    /// Identical output to [`Session::snapshot`], but the accumulated log, store and edges
    /// are *moved* into the result instead of cloned — no `O(n)` node copies, no store
    /// clone.  This is what the one-shot batch entry points use: ingest everything, then
    /// take the single snapshot for free.
    pub fn into_snapshot(mut self) -> GeneratedInterface {
        self.ensure_hydrated();
        let version = self.version();
        let dialects = self.dialects();
        // A fresh cache already holds the mapped interface and frozen graph — move them out.
        let (graph, stats, interface) = match self.cache.take() {
            Some(c) if c.version == version => (c.graph, c.stats, c.interface),
            _ => {
                let graph = std::mem::take(&mut self.acc).into_graph();
                let start = Instant::now();
                let interface = crate::pipeline::map_graph(&self.options, &graph, &dialects);
                self.mapping_ms += start.elapsed().as_secs_f64() * 1e3;
                let stats = graph.stats();
                (graph, stats, interface)
            }
        };
        GeneratedInterface {
            interface,
            queries: graph.queries().clone(),
            graph,
            dialects,
            skipped: self.skipped,
            graph_stats: stats,
            timings: self.timings(),
            version,
        }
    }

    /// The per-stage wall-clock cost accumulated so far (parse across all `push_sql` calls,
    /// mining across all pushes, mapping across all snapshot refreshes).
    pub fn timings(&self) -> StageTimings {
        StageTimings {
            parse_ms: self.parse_ms,
            mining_ms: self.mining_ms,
            mapping_ms: self.mapping_ms,
        }
    }

    /// Writes the session's full mining state as a compact, versioned binary snapshot.
    ///
    /// The snapshot captures everything [`Session::restore`] needs to continue the stream
    /// exactly where this session stands: the mined accumulator (distinct-tree arena, diff
    /// store, edges and the warm alignment memo), the per-row dialect tags, the skip/error
    /// bookkeeping, accumulated stage timings and the option scalars that shape mining
    /// (window, policy, parallelism, memoization).  Shared subtrees and interned strings
    /// serialize once — payloads are deduplicated by structural identity, so snapshot size
    /// scales with *distinct* state, not log length — and the whole payload rides inside a
    /// checksummed frame, so a flipped bit or truncated file fails restore cleanly instead
    /// of producing a silently different graph.
    ///
    /// Deterministic: equal sessions persist to identical bytes, and
    /// `persist ∘ restore ∘ persist` is byte-stable (pinned by the persistence tests).
    ///
    /// Not captured: the widget library and mapper options (code-like configuration,
    /// re-supplied by [`Session::restore_with`]), the front-end registry (ditto), the parse
    /// cache (a performance artifact that repopulates within one streamed chunk) and any
    /// cached snapshot (recomputed on the first [`Session::snapshot`] after restore).
    ///
    /// Takes `&mut self` only to expand a still-latent pair table first (a session that
    /// was restored and never touched): the run encoder walks the live store.  Persisting
    /// a restored session — before or after hydration — reproduces the original bytes.
    pub fn persist<W: std::io::Write>(&mut self, w: &mut W) -> Result<(), CodecError> {
        self.ensure_hydrated();
        w.write_all(SNAPSHOT_MAGIC).map_err(CodecError::Io)?;
        codec::put_u32(w, SNAPSHOT_VERSION)?;
        let mut cw = codec::ChecksumWriter::new(w);
        self.write_envelope(&mut cw)?;
        let sum = cw.sum();
        codec::put_u64(cw.into_inner(), sum)
    }

    /// [`Session::persist`] into a fresh buffer — the archival convenience used by
    /// eviction-to-snapshot hosts.
    pub fn persist_to_vec(&mut self) -> Result<Vec<u8>, CodecError> {
        let mut buf = Vec::new();
        self.persist(&mut buf)?;
        Ok(buf)
    }

    /// Restores a session persisted by [`Session::persist`] with default options as the
    /// base; see [`Session::restore_with`].
    pub fn restore<R: std::io::Read>(r: &mut R) -> Result<Session, CodecError> {
        Session::restore_with(r, PiOptions::default())
    }

    /// Restores a session from a snapshot, taking library-like configuration from `base`.
    ///
    /// The snapshot's own option *scalars* (window, policy, parallel, threads, steal seed,
    /// memoize) win — they shaped the mined state and must keep shaping it — while the
    /// widget library, mapper options and front-end registry come from `base` and the
    /// standard registry respectively, because closures and trait objects don't serialize.
    ///
    /// The restored session is **byte-identical** to the persisted one where it counts:
    /// same graph, same `DiffId`s, same versions, same snapshot output — and its alignment
    /// memo is warm, so the next push only aligns genuinely new shape pairs.  Restoring is
    /// a deserialization pass over *distinct* state: milliseconds for a trace that took
    /// seconds to mine (the `persist` bench pins the ratio).  The mined pair table is
    /// checksum-verified here but scanned and expanded lazily — the first graph access,
    /// push or re-persist materializes the store and edge list from the compact runs.
    ///
    /// Any corruption — truncation, bit flips, a foreign file — fails with a clean
    /// [`CodecError`]; a snapshot written by a different format version fails with
    /// [`CodecError::Version`] rather than being misread.
    pub fn restore_with<R: std::io::Read>(
        r: &mut R,
        base: PiOptions,
    ) -> Result<Session, CodecError> {
        let mut magic = [0u8; SNAPSHOT_MAGIC.len()];
        r.read_exact(&mut magic).map_err(CodecError::Io)?;
        if &magic != SNAPSHOT_MAGIC {
            return Err(codec::corrupt("not a session snapshot (bad magic)"));
        }
        let found = codec::take_u32(r)?;
        if found != SNAPSHOT_VERSION {
            return Err(CodecError::Version {
                found,
                supported: SNAPSHOT_VERSION,
            });
        }
        // Buffer the rest of the frame and verify the checksum in one pass over the
        // slice — folding per `read` call through a `ChecksumReader` costs real
        // milliseconds against the ms-scale restore budget — then parse the envelope
        // straight from the verified bytes.
        let mut frame = Vec::new();
        r.read_to_end(&mut frame).map_err(CodecError::Io)?;
        let Some(payload_len) = frame.len().checked_sub(8) else {
            return Err(codec::corrupt("snapshot truncated before its checksum"));
        };
        let (payload, mut tail) = frame.split_at(payload_len);
        let sum = codec::checksum(payload);
        let stored = codec::take_u64(&mut tail)?;
        if stored != sum {
            return Err(codec::corrupt(format!(
                "checksum mismatch (stored {stored:#018x}, computed {sum:#018x})"
            )));
        }
        let mut payload = payload;
        let session = Session::read_envelope(&mut payload, base)?;
        if !payload.is_empty() {
            return Err(codec::corrupt("trailing bytes inside the snapshot frame"));
        }
        Ok(session)
    }

    /// Writes everything inside the checksummed frame: option scalars, dialect state,
    /// skip/error bookkeeping, timings, then the mined accumulator.
    fn write_envelope<W: std::io::Write>(&self, w: &mut W) -> Result<(), CodecError> {
        match self.options.window {
            WindowStrategy::AllPairs => codec::put_u8(w, 0)?,
            WindowStrategy::Sliding(width) => {
                codec::put_u8(w, 1)?;
                codec::put_varint(w, width as u64)?;
            }
        }
        match self.options.policy {
            pi_diff::AncestorPolicy::Full => codec::put_u8(w, 0)?,
            pi_diff::AncestorPolicy::LcaPruned => codec::put_u8(w, 1)?,
        }
        codec::put_bool(w, self.options.parallel)?;
        codec::put_varint(w, self.options.threads as u64)?;
        match self.options.steal_seed {
            None => codec::put_bool(w, false)?,
            Some(seed) => {
                codec::put_bool(w, true)?;
                codec::put_u64(w, seed)?;
            }
        }
        codec::put_bool(w, self.options.memoize)?;

        codec::put_str(w, self.default_dialect.name())?;
        codec::put_varint(w, self.dialect_table.len() as u64)?;
        for dialect in &self.dialect_table {
            codec::put_str(w, dialect.name())?;
        }
        codec::put_varint(w, self.dialect_tags.len() as u64)?;
        w.write_all(&self.dialect_tags).map_err(CodecError::Io)?;

        codec::put_varint(w, self.skipped as u64)?;
        codec::put_varint(w, self.errors.capacity() as u64)?;
        codec::put_varint(w, self.errors.seen() as u64)?;
        codec::put_varint(w, self.errors.len() as u64)?;
        for error in self.errors.entries() {
            codec::put_str(w, error.dialect.name())?;
            codec::put_str(w, &error.message)?;
        }

        codec::put_f64(w, self.parse_ms)?;
        codec::put_f64(w, self.mining_ms)?;
        codec::put_f64(w, self.mapping_ms)?;

        pi_graph::codec::write_accumulator(w, &self.acc)
    }

    /// Reads the checksummed frame written by [`Session::write_envelope`], from the
    /// already-verified in-memory payload.
    fn read_envelope(r: &mut &[u8], base: PiOptions) -> Result<Session, CodecError> {
        let window = match codec::take_u8(r)? {
            0 => WindowStrategy::AllPairs,
            1 => WindowStrategy::Sliding(codec::take_varint(r)? as usize),
            tag => return Err(codec::corrupt(format!("invalid window tag {tag}"))),
        };
        let policy = match codec::take_u8(r)? {
            0 => pi_diff::AncestorPolicy::Full,
            1 => pi_diff::AncestorPolicy::LcaPruned,
            tag => return Err(codec::corrupt(format!("invalid policy tag {tag}"))),
        };
        let parallel = codec::take_bool(r)?;
        let threads = codec::take_varint(r)? as usize;
        let steal_seed = if codec::take_bool(r)? {
            Some(codec::take_u64(r)?)
        } else {
            None
        };
        let memoize = codec::take_bool(r)?;
        let options = PiOptions {
            window,
            policy,
            parallel,
            threads,
            steal_seed,
            memoize,
            ..base
        };

        let restore_dialect = |name: String| Dialect::new(pi_ast::IStr::intern(&name).as_str());
        let default_dialect = restore_dialect(codec::take_str(r)?);
        let table_len = codec::take_count(r)?;
        if table_len > 256 {
            return Err(codec::corrupt(format!(
                "dialect table holds {table_len} entries, sessions cap at 256"
            )));
        }
        let mut dialect_table = Vec::with_capacity(table_len);
        for _ in 0..table_len {
            dialect_table.push(restore_dialect(codec::take_str(r)?));
        }
        let tag_count = codec::take_count(r)?;
        let mut dialect_tags = vec![0u8; tag_count];
        std::io::Read::read_exact(r, &mut dialect_tags).map_err(CodecError::Io)?;
        if let Some(&bad) = dialect_tags
            .iter()
            .find(|&&t| usize::from(t) >= dialect_table.len())
        {
            return Err(codec::corrupt(format!(
                "row tag {bad} exceeds the {}-entry dialect table",
                dialect_table.len()
            )));
        }

        let skipped = codec::take_varint(r)? as usize;
        let error_cap = codec::take_count(r)?;
        let error_seen = codec::take_varint(r)? as usize;
        let error_count = codec::take_count(r)?;
        if error_count > error_cap {
            return Err(codec::corrupt(format!(
                "error sample holds {error_count} entries over a cap of {error_cap}"
            )));
        }
        let mut error_entries = Vec::with_capacity(error_count);
        for _ in 0..error_count {
            let dialect = restore_dialect(codec::take_str(r)?);
            let message = codec::take_str(r)?;
            error_entries.push(FrontendError::new(dialect, message));
        }

        let parse_ms = codec::take_f64(r)?;
        let mining_ms = codec::take_f64(r)?;
        let mapping_ms = codec::take_f64(r)?;

        let (acc, latent) = pi_graph::codec::read_accumulator_deferred(r)?;
        if dialect_tags.len() != acc.len() {
            return Err(codec::corrupt(format!(
                "{} dialect tags for {} log rows",
                dialect_tags.len(),
                acc.len()
            )));
        }

        let mut session = Session::with_frontends(options, crate::frontends::standard_frontends());
        session.default_dialect = default_dialect;
        session.dialect_table = dialect_table;
        session.dialect_tags = dialect_tags;
        session.skipped = skipped;
        session.errors = ErrorSample::from_parts(error_cap, error_seen, error_entries);
        session.parse_ms = parse_ms;
        session.mining_ms = mining_ms;
        session.mapping_ms = mapping_ms;
        session.acc = acc;
        session.latent = Some(latent);
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PrecisionInterfaces;
    use pi_ast::Frontend as _;
    use pi_graph::WindowStrategy;

    fn parse(sql: &str) -> Node {
        pi_sql::SqlFrontend.parse_one(sql).unwrap()
    }

    fn log(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", i % 5)))
            .collect()
    }

    fn assert_batch_identical(snap: &GeneratedInterface, batch: &GeneratedInterface) {
        assert_eq!(snap.version, batch.version);
        assert_eq!(snap.graph_stats, batch.graph_stats);
        assert_eq!(snap.graph, batch.graph);
        assert_eq!(snap.interface.widgets(), batch.interface.widgets());
        assert_eq!(snap.interface.describe(), batch.interface.describe());
    }

    #[test]
    fn interleaved_pushes_and_snapshots_match_batch_builds() {
        for window in [WindowStrategy::AllPairs, WindowStrategy::sliding(3)] {
            let options = PiOptions {
                window,
                ..PiOptions::default()
            };
            let queries = log(9);
            let mut session = Session::new(options.clone());
            for (k, q) in queries.iter().enumerate() {
                assert_eq!(session.push(q.clone()), k);
                let snap = session.snapshot();
                let batch =
                    PrecisionInterfaces::new(options.clone()).from_queries(queries[..=k].to_vec());
                assert_batch_identical(&snap, &batch);
            }
        }
    }

    #[test]
    fn parallel_sessions_match_serial_and_the_batch_path() {
        // push_all under parallel options must match serial sessions and one-shot builds —
        // and the batch wrappers must keep honouring `parallel` (it routes through
        // extend_batch, not the per-query path).
        let queries = log(48);
        let parallel_options = PiOptions {
            window: WindowStrategy::AllPairs,
            parallel: true,
            ..PiOptions::default()
        };
        let serial_options = PiOptions {
            parallel: false,
            ..parallel_options.clone()
        };
        let mut par = Session::new(parallel_options.clone());
        let mut ser = Session::new(serial_options);
        par.push_all(queries.clone());
        ser.push_all(queries.clone());
        assert_eq!(par.graph(), ser.graph());
        let batch = PrecisionInterfaces::new(parallel_options).from_queries(queries);
        assert_batch_identical(&par.snapshot(), &batch);
    }

    #[test]
    fn rebuild_quarantining_excludes_panicking_statements() {
        let statements: Vec<(Dialect, &str)> = vec![
            (Dialect::SQL, "SELECT a FROM t WHERE x = 1"),
            (Dialect::SQL, "SELECT poison FROM t"),
            (Dialect::SQL, "SELECT a FROM t WHERE x = 2"),
            (Dialect::SQL, "SELECT poison2 FROM t"),
            (Dialect::SQL, "SELECT a FROM t WHERE x = 3"),
        ];
        // Suppress the default panic hook's stderr noise for the injected panics.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = Session::rebuild_quarantining(
            || Session::new(PiOptions::default()),
            &statements,
            |session, dialect, text| {
                if text.contains("poison") {
                    panic!("injected miner panic: {text}");
                }
                session.push_text_as(dialect, text);
            },
        );
        std::panic::set_hook(prev);
        let indices: Vec<usize> = outcome.quarantined.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, vec![1, 3]);
        assert!(outcome.quarantined[0].1.contains("injected miner panic"));

        // The rebuilt session equals a clean replay of the surviving statements.
        let mut clean = Session::new(PiOptions::default());
        for (i, (dialect, text)) in statements.iter().enumerate() {
            if !indices.contains(&i) {
                clean.push_text_as(*dialect, text);
            }
        }
        let mut rebuilt = outcome.session;
        assert_eq!(rebuilt.len(), clean.len());
        assert_batch_identical(&rebuilt.snapshot(), &clean.snapshot());

        // A fully clean history quarantines nothing.
        let clean_history = [(Dialect::SQL, "SELECT a FROM t")];
        let outcome = Session::rebuild_quarantining(
            || Session::new(PiOptions::default()),
            &clean_history,
            |session, dialect, text| {
                session.push_text_as(dialect, text);
            },
        );
        assert!(outcome.quarantined.is_empty());
        assert_eq!(outcome.session.len(), 1);
    }

    #[test]
    fn into_snapshot_matches_snapshot() {
        let queries = log(7);
        let mut kept = Session::new(PiOptions::default());
        let mut consumed = Session::new(PiOptions::default());
        kept.push_all(queries.clone());
        consumed.push_all(queries);
        assert_batch_identical(&kept.snapshot(), &consumed.into_snapshot());
    }

    #[test]
    fn snapshots_are_cached_until_the_next_push() {
        let mut session = Session::new(PiOptions::default());
        session.push_all(log(4));
        let first = session.snapshot();
        let second = session.snapshot();
        assert_eq!(first.version, second.version);
        assert_eq!(first.interface.describe(), second.interface.describe());
        session.push(log(1).pop().unwrap());
        assert_eq!(session.snapshot().version, first.version + 1);
    }

    #[test]
    fn push_sql_skips_garbage_and_keeps_streaming() {
        let mut session = Session::new(PiOptions::default());
        let a = session.push_sql("SELECT a FROM t WHERE x = 1; THIS IS NOT SQL;");
        let b = session.push_sql("ALSO NOT SQL; SELECT a FROM t WHERE x = 2;");
        assert_eq!((a, b), (vec![0], vec![1]));
        assert_eq!(session.skipped(), 2);
        assert_eq!(session.version(), 2);
        let snap = session.snapshot();
        assert_eq!(snap.skipped, 2);
        assert_eq!(snap.interface.widgets().len(), 1);
    }

    #[test]
    fn an_empty_session_snapshots_to_an_empty_interface() {
        let mut session = Session::new(PiOptions::default());
        assert!(session.is_empty());
        let snap = session.snapshot();
        assert_eq!(snap.version, 0);
        assert!(snap.interface.widgets().is_empty());
        assert_eq!(snap.graph_stats.queries, 0);
    }

    #[test]
    fn appended_records_keep_stable_diff_ids_across_snapshots() {
        let mut session = Session::new(PiOptions {
            window: WindowStrategy::sliding(4),
            ..PiOptions::default()
        });
        session.push_all(log(6));
        let early = session.snapshot();
        session.push_all(log(6));
        let late = session.snapshot();
        // The early snapshot's store is a prefix of the late one's: same ids, same records.
        assert!(early.graph.store().len() <= late.graph.store().len());
        for ((ia, ra), (ib, rb)) in early.graph.store().iter().zip(late.graph.store().iter()) {
            assert_eq!(ia, ib);
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn push_sql_is_a_pinned_alias_of_push_text_as_sql() {
        // Deprecation hygiene: the SQL convenience must stay byte-identical to the generic
        // path — same indices, same skip count, same dialect tags, same snapshot.
        let fragments = [
            "SELECT a FROM t WHERE x = 1; GARBAGE;",
            "SELECT a FROM t WHERE x = 2",
        ];
        let mut via_alias = Session::new(PiOptions::default());
        let mut via_generic = Session::new(PiOptions::default());
        for fragment in fragments {
            assert_eq!(
                via_alias.push_sql(fragment),
                via_generic.push_text_as(Dialect::SQL, fragment)
            );
        }
        assert_eq!(via_alias.skipped(), via_generic.skipped());
        assert_eq!(via_alias.dialects(), via_generic.dialects());
        assert_eq!(via_alias.dialects(), &[Dialect::SQL, Dialect::SQL]);
        assert_batch_identical(&via_alias.snapshot(), &via_generic.snapshot());
        // push_text uses the default dialect, which the standard registry sets to SQL.
        let mut via_default = Session::new(PiOptions::default());
        for fragment in fragments {
            via_default.push_text(fragment);
        }
        assert_batch_identical(&via_alias.snapshot(), &via_default.snapshot());
    }

    #[test]
    fn mixed_dialect_streams_mine_into_one_interface() {
        // The same analysis alternates between SQL and the dataframe dialect; the session
        // tags each query and mines them into ONE widget because the trees are identical.
        let mut session = Session::new(PiOptions::default());
        session.push_sql("SELECT a FROM t WHERE x = 1");
        session.push_text_as(Dialect::FRAMES, "t.filter(x == 2).select(a)");
        session.push_sql("SELECT a FROM t WHERE x = 3");
        session.push_text_as(Dialect::FRAMES, "t.filter(x == 9).select(a)");
        let snap = session.snapshot();
        assert_eq!(snap.version, 4);
        assert_eq!(
            snap.dialects,
            vec![Dialect::SQL, Dialect::FRAMES, Dialect::SQL, Dialect::FRAMES]
        );
        assert_eq!(snap.interface.widgets().len(), 1);
        assert_eq!(snap.interface.initial_dialect(), Dialect::SQL);
        assert!(snap.interface.expressiveness(&snap.queries) >= 1.0);
        // The widget's options remember which front-end each value arrived through:
        // 1 and 3 from SQL queries, 2 and 9 from frames queries.
        let domain = &snap.interface.widgets()[0].domain;
        for (node, dialect) in domain.tagged_subtrees() {
            match node.label().as_str() {
                "1" | "3" => assert_eq!(dialect, Dialect::SQL),
                "2" | "9" => assert_eq!(dialect, Dialect::FRAMES),
                other => panic!("unexpected option {other}"),
            }
        }
        // Mining is dialect-blind: the graph equals an all-SQL build of the same trees.
        let all_sql = PrecisionInterfaces::default().from_queries(snap.queries.clone());
        assert_eq!(snap.graph, all_sql.graph);
    }

    #[test]
    fn unregistered_dialects_skip_and_count() {
        let mut session = Session::new(PiOptions::default());
        let indices = session.push_text_as(Dialect::new("sparql"), "SELECT ?s WHERE { }");
        assert!(indices.is_empty());
        assert_eq!(session.skipped(), 1);
        assert_eq!(session.version(), 0);
        // The session keeps streaming afterwards.
        session.push_text("SELECT a FROM t WHERE x = 1");
        assert_eq!(session.version(), 1);
    }

    #[test]
    fn custom_registries_change_the_default_frontend() {
        use pi_ast::Frontends;
        // A frames-first session: untagged text parses as the dataframe dialect.
        let registry = Frontends::new().with(pi_frames::FramesFrontend);
        let mut session = Session::with_frontends(PiOptions::default(), registry);
        assert_eq!(session.default_dialect(), Dialect::FRAMES);
        session.push_text("t.filter(x == 1)");
        session.push_text("t.filter(x == 2)");
        assert_eq!(session.dialects(), &[Dialect::FRAMES, Dialect::FRAMES]);
        // SQL is not registered in this session: push_sql skips.
        assert!(session.push_sql("SELECT a FROM t").is_empty());
        assert_eq!(session.skipped(), 1);
        let snap = session.snapshot();
        assert_eq!(snap.interface.initial_dialect(), Dialect::FRAMES);
        assert_eq!(snap.interface.widgets().len(), 1);
        // with_default_dialect re-routes untagged pushes.
        let rerouted = Session::new(PiOptions::default()).with_default_dialect(Dialect::FRAMES);
        assert_eq!(rerouted.default_dialect(), Dialect::FRAMES);
    }

    #[test]
    fn sessions_are_send_and_cheap_accessors_track_state() {
        // The pool-facing audit: a SessionPool moves sessions across worker threads, so
        // Session (and a generated snapshot) must stay Send — if a future change smuggles
        // in an Rc or a non-Send trait object, this stops compiling.
        fn assert_send<T: Send>() {}
        assert_send::<Session>();
        assert_send::<GeneratedInterface>();
        // len()/skipped() are the no-snapshot accessors /stats-style gauges poll.
        let mut session = Session::new(PiOptions::default());
        assert_eq!((session.len(), session.skipped()), (0, 0));
        session.push_sql("SELECT a FROM t WHERE x = 1; NOT SQL;");
        assert_eq!((session.len(), session.skipped()), (1, 1));
        assert_eq!(session.len() as u64, session.version());
    }

    #[test]
    fn push_stream_matches_per_fragment_pushes() {
        // Chunked, cache-served streaming must be invisible: same graph, same widgets,
        // same dialect tags as pushing each fragment through push_sql.
        let lines: Vec<String> = (0..300)
            .map(|i| format!("SELECT a FROM t WHERE x = {}", i % 7))
            .collect();
        let options = PiOptions {
            window: WindowStrategy::sliding(8),
            ..PiOptions::default()
        };
        let mut streamed = Session::new(options.clone());
        let mut pushed = Session::new(options);
        assert_eq!(streamed.push_stream(&lines), 300);
        for line in &lines {
            pushed.push_sql(line);
        }
        assert_batch_identical(&streamed.snapshot(), &pushed.snapshot());
        assert_eq!(streamed.dialects(), pushed.dialects());
    }

    #[test]
    fn push_stream_mixed_dialects_and_garbage() {
        let mut session = Session::new(PiOptions::default());
        let appended = session.push_stream_tagged([
            (Dialect::SQL, "SELECT a FROM t WHERE x = 1"),
            (Dialect::SQL, "THIS IS NOT SQL"),
            (Dialect::FRAMES, "t.filter(x == 2).select(a)"),
            (Dialect::new("sparql"), "SELECT ?s WHERE { }"),
            (Dialect::SQL, "SELECT a FROM t WHERE x = 3"),
        ]);
        assert_eq!(appended, 3);
        assert_eq!(session.len(), 3);
        assert_eq!(session.skipped(), 2);
        assert_eq!(session.parse_errors().seen(), 2);
        assert!(session.parse_errors().entries().count() >= 1);
        assert_eq!(
            session.dialects(),
            vec![Dialect::SQL, Dialect::FRAMES, Dialect::SQL]
        );
    }

    #[test]
    fn streamed_duplicates_cost_per_row_bookkeeping_not_trees() {
        // 8 distinct shapes repeated 10k times: after the shapes are warm, each further
        // row may only add per-row bookkeeping (4-byte class id + 1-byte dialect tag) and
        // its mined record rows to the footprint — no new trees, no new parse-cache
        // entries, and (key to the memo's scaling) no new memo pairs: every admitted pair
        // re-hits a shape pair already aligned during warm-up.
        let shapes: Vec<String> = (0..8)
            .map(|i| format!("SELECT a FROM t WHERE x = {i}"))
            .collect();
        let mut session = Session::new(PiOptions {
            window: WindowStrategy::sliding(4),
            ..PiOptions::default()
        });
        session.push_stream(shapes.iter().cycle().take(1000));
        let warm = session.memory_footprint();
        let warm_store = session.acc.store().footprint_bytes();
        let warm_memo = session.acc.memo().footprint_bytes();
        assert_eq!(session.distinct(), 8);
        session.push_stream(shapes.iter().cycle().take(9000));
        assert_eq!(session.len(), 10_000);
        assert_eq!(session.distinct(), 8);
        let grown = session.memory_footprint();
        let mined_growth = session.acc.store().footprint_bytes() - warm_store;
        assert_eq!(
            session.acc.memo().footprint_bytes(),
            warm_memo,
            "duplicate-only rows must not grow the alignment memo"
        );
        assert!(
            grown - warm - mined_growth <= 6 * 9000,
            "footprint grew {warm} -> {grown} ({mined_growth} of it mined records) for duplicate-only rows"
        );
    }

    #[test]
    fn timings_accumulate_across_pushes() {
        let mut session = Session::new(PiOptions::default());
        session.push_sql("SELECT a FROM t WHERE x = 1; SELECT a FROM t WHERE x = 2;");
        let snap = session.snapshot();
        assert!(snap.timings.parse_ms >= 0.0);
        assert!(snap.timings.mining_ms >= 0.0);
        assert!(snap.timings.total_ms() >= snap.timings.mapping_ms);
    }
}
