//! Streaming ingestion: a stateful [`Session`] that grows the interaction graph as queries
//! arrive and serves interface snapshots on demand.
//!
//! The paper's interaction graph is defined over a log that grows as the analyst works, and
//! the sliding-window optimisation (§6.1) means an appended query only ever pairs with its
//! `w` predecessors.  A `Session` exploits exactly that: [`Session::push`] runs only the new
//! alignments the window admits (`O(w)` for a sliding window, independent of how long the
//! log already is), appending their records to the session's [`pi_diff::DiffStore`] at
//! stable `DiffId` offsets, while [`Session::snapshot`] lazily re-runs the interaction
//! mapper and returns a versioned [`GeneratedInterface`].
//!
//! The load-bearing invariant — property-tested in `tests/properties.rs` and relied on by
//! the one-shot [`PrecisionInterfaces`](crate::PrecisionInterfaces) entry points, which are
//! thin wrappers over a `Session` — is **batch identity**: a snapshot after `n` pushes is
//! identical (same graph edges, same diff records in the same order, same widgets, same
//! rendered interface) to a batch build of those same `n` queries.
//!
//! Sessions are front-end pluggable: [`Session::push_text_as`] routes text through any
//! front-end of the session's [`Frontends`] registry, and every query carries its
//! originating [`Dialect`] into the snapshot.  Here the same analysis streams in through
//! *both* bundled front-ends — SQL and the dataframe dialect — and mines into one
//! interface because both parsers target one tree model:
//!
//! ```
//! use pi_ast::Dialect;
//! use pi_core::{PiOptions, Session};
//!
//! let mut session = Session::new(PiOptions::default());
//! session.push_sql("SELECT a FROM t WHERE x = 1");
//! session.push_text_as(Dialect::FRAMES, "t.filter(x == 2).select(a)");
//! let v2 = session.snapshot();
//! assert_eq!(v2.version, 2);
//! assert_eq!(v2.dialects, vec![Dialect::SQL, Dialect::FRAMES]);
//! assert_eq!(v2.interface.widgets().len(), 1);
//!
//! session.push_text_as(Dialect::FRAMES, "t.filter(x == 9).select(a)");
//! let v3 = session.snapshot();
//! assert_eq!(v3.version, 3);
//! assert!(v3.interface.expressiveness(&v3.queries) >= 1.0);
//! ```

use crate::interface::Interface;
use crate::pipeline::{GeneratedInterface, PiOptions, StageTimings};
use pi_ast::{Dialect, Frontends, Node};
use pi_graph::{GraphAccumulator, GraphBuilder, GraphStats, InteractionGraph};
use std::time::Instant;

/// A memoised snapshot, reused until the next push invalidates it.
#[derive(Debug, Clone)]
struct CachedSnapshot {
    version: u64,
    graph: InteractionGraph,
    stats: GraphStats,
    interface: Interface,
}

/// A stateful, append-only ingestion session over one analysis's query stream.
///
/// Sessions are **front-end pluggable**: text arrives through [`Session::push_text`] (the
/// default front-end) or [`Session::push_text_as`] (any registered dialect), every query
/// carries the [`Dialect`] it arrived in, and the tags thread through the mined widget
/// domains into the snapshot so the UI can render each closure query in its originating
/// language.  Mining itself is dialect-blind — the front-ends target one tree model, so a
/// mixed SQL + dataframe log diffs into one interaction graph.
///
/// Sessions exploit log repetition the same way batch builds do: the duplicate-collapsing
/// alignment memo (`pi_graph::DiffMemo`) lives in the session's accumulator and persists
/// across pushes, so re-pushing an already-seen query shape costs hash lookups — the
/// expensive tree alignments ran when its shape first paired with the others.  The memo is
/// invisible in snapshots (byte-identical graphs with [`PiOptions::memoize`] on or off).
///
/// Cloning a session forks it: both halves share the diff subtrees accumulated so far
/// (records are `Arc`-shared) but evolve independently from the clone point.
///
/// Sessions are `Send` (asserted by a compile-time test): a multi-tenant host like
/// `pi-server`'s `SessionPool` can move each tenant's session behind its own lock and
/// apply pushes from whichever worker thread picks the tenant up.  They are *not* designed
/// for shared mutation — one session, one writer at a time.
#[derive(Debug, Clone)]
pub struct Session {
    options: PiOptions,
    frontends: Frontends,
    default_dialect: Dialect,
    builder: GraphBuilder,
    acc: GraphAccumulator,
    dialects: Vec<Dialect>,
    skipped: usize,
    parse_ms: f64,
    mining_ms: f64,
    mapping_ms: f64,
    cache: Option<CachedSnapshot>,
}

impl Session {
    /// Opens an empty session with the given pipeline options and the standard front-end
    /// registry (SQL as the default dialect, frames alongside).
    pub fn new(options: PiOptions) -> Self {
        Session::with_frontends(options, crate::frontends::standard_frontends())
    }

    /// Opens an empty session over a custom front-end registry.  The registry's first
    /// front-end becomes the session's default dialect (empty registries default to SQL,
    /// leaving the session usable for pre-parsed pushes only).
    pub fn with_frontends(options: PiOptions, frontends: Frontends) -> Self {
        let builder = GraphBuilder::new()
            .window(options.window)
            .policy(options.policy)
            .parallel(options.parallel)
            .threads(options.threads)
            .steal_seed(options.steal_seed)
            .memoize(options.memoize);
        let default_dialect = frontends.default_dialect().unwrap_or_default();
        Session {
            options,
            frontends,
            default_dialect,
            builder,
            acc: GraphAccumulator::new(),
            dialects: Vec::new(),
            skipped: 0,
            parse_ms: 0.0,
            mining_ms: 0.0,
            mapping_ms: 0.0,
            cache: None,
        }
    }

    /// Changes which dialect handles untagged pushes (builder style).  The dialect should
    /// name a registered front-end for [`Session::push_text`] to parse anything.
    pub fn with_default_dialect(mut self, dialect: Dialect) -> Self {
        self.default_dialect = dialect;
        self
    }

    /// The options this session runs with.
    pub fn options(&self) -> &PiOptions {
        &self.options
    }

    /// The front-end registry this session routes text through.
    pub fn frontends(&self) -> &Frontends {
        &self.frontends
    }

    /// The dialect untagged pushes are attributed to.
    pub fn default_dialect(&self) -> Dialect {
        self.default_dialect
    }

    /// The dialect each ingested query arrived in, parallel to [`Session::queries`].
    pub fn dialects(&self) -> &[Dialect] {
        &self.dialects
    }

    /// Appends one parsed query tagged with the default dialect; see
    /// [`Session::push_tagged`].
    pub fn push(&mut self, query: Node) -> usize {
        self.push_tagged(self.default_dialect, query)
    }

    /// Appends one parsed query, incrementally extending the interaction graph: only the
    /// `(i, n)` alignments the window strategy admits are run, so for a sliding window of
    /// `w` this is `O(w)` work however long the log already is.  The query is tagged as
    /// originating in `dialect` (presentation metadata — mining never looks at it).
    /// Returns the query's log index.
    pub fn push_tagged(&mut self, dialect: Dialect, query: Node) -> usize {
        let start = Instant::now();
        let index = self.builder.extend(&mut self.acc, query);
        self.mining_ms += start.elapsed().as_secs_f64() * 1e3;
        self.dialects.push(dialect);
        index
    }

    /// Appends every query of an iterator with the default dialect tag; see
    /// [`Session::push_all_tagged`].
    ///
    /// Uniform tags keep the batch fast path: the iterator flows straight into the graph
    /// builder (no per-item tag pairing) and the tag vector extends by count.
    pub fn push_all<I: IntoIterator<Item = Node>>(&mut self, queries: I) -> usize {
        let start = Instant::now();
        let appended = self.builder.extend_batch(&mut self.acc, queries);
        self.mining_ms += start.elapsed().as_secs_f64() * 1e3;
        self.dialects
            .resize(self.dialects.len() + appended.len(), self.default_dialect);
        appended.len()
    }

    /// Appends every `(dialect, query)` pair of an iterator, returning how many were
    /// appended.
    ///
    /// Unlike per-query [`Session::push`], a bulk append with enough new alignments fans
    /// them out across cores when the session's options ask for parallel mining — so the
    /// one-shot batch entry points, which are wrappers over this, keep their multi-core
    /// path.  The resulting graph is byte-identical either way.
    pub fn push_all_tagged<I: IntoIterator<Item = (Dialect, Node)>>(
        &mut self,
        queries: I,
    ) -> usize {
        let (tags, nodes): (Vec<Dialect>, Vec<Node>) = queries.into_iter().unzip();
        let start = Instant::now();
        let appended = self.builder.extend_batch(&mut self.acc, nodes);
        self.mining_ms += start.elapsed().as_secs_f64() * 1e3;
        debug_assert_eq!(appended.len(), tags.len());
        self.dialects.extend(tags);
        appended.len()
    }

    /// Parses a fragment of text (one or more `;`-separated statements) with the default
    /// front-end and appends every statement that parses; see [`Session::push_text_as`].
    pub fn push_text(&mut self, text: &str) -> Vec<usize> {
        self.push_text_as(self.default_dialect, text)
    }

    /// Parses a fragment of text with the front-end registered for `dialect` and appends
    /// every statement that parses, returning the appended log indices.
    ///
    /// Unparseable statements are skipped and counted in [`Session::skipped`] rather than
    /// aborting the stream — live query logs contain typos and statements in unsupported
    /// dialects, and one of them must not wedge the session.  A dialect with no registered
    /// front-end skips the whole fragment (counted once).
    pub fn push_text_as(&mut self, dialect: Dialect, text: &str) -> Vec<usize> {
        let Some(frontend) = self.frontends.get(dialect).cloned() else {
            self.skipped += 1;
            return Vec::new();
        };
        let start = Instant::now();
        let parsed = frontend.parse_statements(text);
        self.parse_ms += start.elapsed().as_secs_f64() * 1e3;
        let mut indices = Vec::new();
        for result in parsed {
            match result {
                Ok(query) => indices.push(self.push_tagged(dialect, query)),
                Err(_) => self.skipped += 1,
            }
        }
        indices
    }

    /// Parses a fragment of SQL text and appends every statement that parses.
    ///
    /// A SQL-dialect convenience kept for the workspace's founding front-end: exactly
    /// `push_text_as(Dialect::SQL, sql)`, with no behaviour of its own (pinned by a unit
    /// test).  Prefer [`Session::push_text_as`] when the dialect is a parameter.
    pub fn push_sql(&mut self, sql: &str) -> Vec<usize> {
        self.push_text_as(Dialect::SQL, sql)
    }

    /// Number of queries ingested so far.
    ///
    /// Cheap (a field read, no snapshot) — this is what occupancy gauges poll, e.g. the
    /// per-tenant `queries` figure in `pi-server`'s `/stats`, without forcing the mapper
    /// to run.  Equals [`Session::version`].
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// True when no query has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Number of unparseable (or unregistered-dialect) statements skipped so far by the
    /// text entry points — [`Session::push_text`], [`Session::push_text_as`] and the
    /// [`Session::push_sql`] alias.
    ///
    /// Cheap (a field read, no snapshot), so health endpoints can report parse-garbage
    /// rates per poll without re-deriving them from [`GeneratedInterface::skipped`].
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// The session version: the number of queries ingested so far.  Bumps on every
    /// successful append, so two snapshots with the same version have identical graphs,
    /// stats and interfaces — and a snapshot at version `n` is identical to a batch build
    /// of the session's first `n` queries.  (Only the bookkeeping fields differ: `skipped`
    /// counts unparseable statements, which don't bump the version, and timings keep
    /// accumulating.)
    pub fn version(&self) -> u64 {
        self.acc.len() as u64
    }

    /// The queries ingested so far, in append order.
    pub fn queries(&self) -> &[Node] {
        self.acc.queries()
    }

    /// Summary statistics of the graph mined so far (cheap; does not run the mapper).
    pub fn graph_stats(&self) -> GraphStats {
        self.acc.stats()
    }

    /// A frozen copy of the interaction graph mined so far (cheap relative to mining:
    /// record subtrees are `Arc`-shared, only the log's nodes are cloned into the shared
    /// allocation).
    pub fn graph(&self) -> InteractionGraph {
        self.acc.to_graph()
    }

    /// Returns the generated interface for everything ingested so far.
    ///
    /// Lazy: the interaction mapper only re-runs when queries were pushed since the last
    /// snapshot; repeated snapshots at the same version are served from cache.  The result
    /// is versioned ([`GeneratedInterface::version`]) and **batch-identical**: its graph,
    /// stats and interface are exactly what
    /// [`PrecisionInterfaces::from_queries`](crate::PrecisionInterfaces::from_queries)
    /// would produce for the same query prefix.  Only the timings differ — a session
    /// reports its *accumulated* per-stage cost across all pushes and re-maps.
    ///
    /// Cost: pushes are `O(w)`, but a *refreshed* snapshot is not — it clones the log into
    /// a shared allocation (`O(n)` node clones; diff subtrees stay `Arc`-shared) and re-runs
    /// the mapper.  Snapshot at the cadence the interface refreshes, not per append; the
    /// `session_refresh_sliding16` bench tracks this cost honestly.
    pub fn snapshot(&mut self) -> GeneratedInterface {
        let version = self.version();
        let stale = !matches!(&self.cache, Some(c) if c.version == version);
        if stale {
            let graph = self.acc.to_graph();
            let start = Instant::now();
            let interface = crate::pipeline::map_graph(&self.options, &graph, &self.dialects);
            self.mapping_ms += start.elapsed().as_secs_f64() * 1e3;
            self.cache = Some(CachedSnapshot {
                version,
                stats: graph.stats(),
                graph,
                interface,
            });
        }
        let cached = self.cache.as_ref().expect("snapshot cache just refreshed");
        GeneratedInterface {
            interface: cached.interface.clone(),
            queries: cached.graph.queries().clone(),
            graph: cached.graph.clone(),
            dialects: self.dialects.clone(),
            skipped: self.skipped,
            graph_stats: cached.stats,
            timings: self.timings(),
            version,
        }
    }

    /// Consumes the session, producing its final snapshot without retaining a cache.
    ///
    /// Identical output to [`Session::snapshot`], but the accumulated log, store and edges
    /// are *moved* into the result instead of cloned — no `O(n)` node copies, no store
    /// clone.  This is what the one-shot batch entry points use: ingest everything, then
    /// take the single snapshot for free.
    pub fn into_snapshot(mut self) -> GeneratedInterface {
        let version = self.version();
        // A fresh cache already holds the mapped interface and frozen graph — move them out.
        let (graph, stats, interface) = match self.cache.take() {
            Some(c) if c.version == version => (c.graph, c.stats, c.interface),
            _ => {
                let graph = std::mem::take(&mut self.acc).into_graph();
                let start = Instant::now();
                let interface = crate::pipeline::map_graph(&self.options, &graph, &self.dialects);
                self.mapping_ms += start.elapsed().as_secs_f64() * 1e3;
                let stats = graph.stats();
                (graph, stats, interface)
            }
        };
        GeneratedInterface {
            interface,
            queries: graph.queries().clone(),
            graph,
            dialects: std::mem::take(&mut self.dialects),
            skipped: self.skipped,
            graph_stats: stats,
            timings: self.timings(),
            version,
        }
    }

    /// The per-stage wall-clock cost accumulated so far (parse across all `push_sql` calls,
    /// mining across all pushes, mapping across all snapshot refreshes).
    pub fn timings(&self) -> StageTimings {
        StageTimings {
            parse_ms: self.parse_ms,
            mining_ms: self.mining_ms,
            mapping_ms: self.mapping_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PrecisionInterfaces;
    use pi_ast::Frontend as _;
    use pi_graph::WindowStrategy;

    fn parse(sql: &str) -> Node {
        pi_sql::SqlFrontend.parse_one(sql).unwrap()
    }

    fn log(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", i % 5)))
            .collect()
    }

    fn assert_batch_identical(snap: &GeneratedInterface, batch: &GeneratedInterface) {
        assert_eq!(snap.version, batch.version);
        assert_eq!(snap.graph_stats, batch.graph_stats);
        assert_eq!(snap.graph, batch.graph);
        assert_eq!(snap.interface.widgets(), batch.interface.widgets());
        assert_eq!(snap.interface.describe(), batch.interface.describe());
    }

    #[test]
    fn interleaved_pushes_and_snapshots_match_batch_builds() {
        for window in [WindowStrategy::AllPairs, WindowStrategy::sliding(3)] {
            let options = PiOptions {
                window,
                ..PiOptions::default()
            };
            let queries = log(9);
            let mut session = Session::new(options.clone());
            for (k, q) in queries.iter().enumerate() {
                assert_eq!(session.push(q.clone()), k);
                let snap = session.snapshot();
                let batch =
                    PrecisionInterfaces::new(options.clone()).from_queries(queries[..=k].to_vec());
                assert_batch_identical(&snap, &batch);
            }
        }
    }

    #[test]
    fn parallel_sessions_match_serial_and_the_batch_path() {
        // push_all under parallel options must match serial sessions and one-shot builds —
        // and the batch wrappers must keep honouring `parallel` (it routes through
        // extend_batch, not the per-query path).
        let queries = log(48);
        let parallel_options = PiOptions {
            window: WindowStrategy::AllPairs,
            parallel: true,
            ..PiOptions::default()
        };
        let serial_options = PiOptions {
            parallel: false,
            ..parallel_options.clone()
        };
        let mut par = Session::new(parallel_options.clone());
        let mut ser = Session::new(serial_options);
        par.push_all(queries.clone());
        ser.push_all(queries.clone());
        assert_eq!(par.graph(), ser.graph());
        let batch = PrecisionInterfaces::new(parallel_options).from_queries(queries);
        assert_batch_identical(&par.snapshot(), &batch);
    }

    #[test]
    fn into_snapshot_matches_snapshot() {
        let queries = log(7);
        let mut kept = Session::new(PiOptions::default());
        let mut consumed = Session::new(PiOptions::default());
        kept.push_all(queries.clone());
        consumed.push_all(queries);
        assert_batch_identical(&kept.snapshot(), &consumed.into_snapshot());
    }

    #[test]
    fn snapshots_are_cached_until_the_next_push() {
        let mut session = Session::new(PiOptions::default());
        session.push_all(log(4));
        let first = session.snapshot();
        let second = session.snapshot();
        assert_eq!(first.version, second.version);
        assert_eq!(first.interface.describe(), second.interface.describe());
        session.push(log(1).pop().unwrap());
        assert_eq!(session.snapshot().version, first.version + 1);
    }

    #[test]
    fn push_sql_skips_garbage_and_keeps_streaming() {
        let mut session = Session::new(PiOptions::default());
        let a = session.push_sql("SELECT a FROM t WHERE x = 1; THIS IS NOT SQL;");
        let b = session.push_sql("ALSO NOT SQL; SELECT a FROM t WHERE x = 2;");
        assert_eq!((a, b), (vec![0], vec![1]));
        assert_eq!(session.skipped(), 2);
        assert_eq!(session.version(), 2);
        let snap = session.snapshot();
        assert_eq!(snap.skipped, 2);
        assert_eq!(snap.interface.widgets().len(), 1);
    }

    #[test]
    fn an_empty_session_snapshots_to_an_empty_interface() {
        let mut session = Session::new(PiOptions::default());
        assert!(session.is_empty());
        let snap = session.snapshot();
        assert_eq!(snap.version, 0);
        assert!(snap.interface.widgets().is_empty());
        assert_eq!(snap.graph_stats.queries, 0);
    }

    #[test]
    fn appended_records_keep_stable_diff_ids_across_snapshots() {
        let mut session = Session::new(PiOptions {
            window: WindowStrategy::sliding(4),
            ..PiOptions::default()
        });
        session.push_all(log(6));
        let early = session.snapshot();
        session.push_all(log(6));
        let late = session.snapshot();
        // The early snapshot's store is a prefix of the late one's: same ids, same records.
        assert!(early.graph.store().len() <= late.graph.store().len());
        for ((ia, ra), (ib, rb)) in early.graph.store().iter().zip(late.graph.store().iter()) {
            assert_eq!(ia, ib);
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn push_sql_is_a_pinned_alias_of_push_text_as_sql() {
        // Deprecation hygiene: the SQL convenience must stay byte-identical to the generic
        // path — same indices, same skip count, same dialect tags, same snapshot.
        let fragments = [
            "SELECT a FROM t WHERE x = 1; GARBAGE;",
            "SELECT a FROM t WHERE x = 2",
        ];
        let mut via_alias = Session::new(PiOptions::default());
        let mut via_generic = Session::new(PiOptions::default());
        for fragment in fragments {
            assert_eq!(
                via_alias.push_sql(fragment),
                via_generic.push_text_as(Dialect::SQL, fragment)
            );
        }
        assert_eq!(via_alias.skipped(), via_generic.skipped());
        assert_eq!(via_alias.dialects(), via_generic.dialects());
        assert_eq!(via_alias.dialects(), &[Dialect::SQL, Dialect::SQL]);
        assert_batch_identical(&via_alias.snapshot(), &via_generic.snapshot());
        // push_text uses the default dialect, which the standard registry sets to SQL.
        let mut via_default = Session::new(PiOptions::default());
        for fragment in fragments {
            via_default.push_text(fragment);
        }
        assert_batch_identical(&via_alias.snapshot(), &via_default.snapshot());
    }

    #[test]
    fn mixed_dialect_streams_mine_into_one_interface() {
        // The same analysis alternates between SQL and the dataframe dialect; the session
        // tags each query and mines them into ONE widget because the trees are identical.
        let mut session = Session::new(PiOptions::default());
        session.push_sql("SELECT a FROM t WHERE x = 1");
        session.push_text_as(Dialect::FRAMES, "t.filter(x == 2).select(a)");
        session.push_sql("SELECT a FROM t WHERE x = 3");
        session.push_text_as(Dialect::FRAMES, "t.filter(x == 9).select(a)");
        let snap = session.snapshot();
        assert_eq!(snap.version, 4);
        assert_eq!(
            snap.dialects,
            vec![Dialect::SQL, Dialect::FRAMES, Dialect::SQL, Dialect::FRAMES]
        );
        assert_eq!(snap.interface.widgets().len(), 1);
        assert_eq!(snap.interface.initial_dialect(), Dialect::SQL);
        assert!(snap.interface.expressiveness(&snap.queries) >= 1.0);
        // The widget's options remember which front-end each value arrived through:
        // 1 and 3 from SQL queries, 2 and 9 from frames queries.
        let domain = &snap.interface.widgets()[0].domain;
        for (node, dialect) in domain.tagged_subtrees() {
            match node.label().as_str() {
                "1" | "3" => assert_eq!(dialect, Dialect::SQL),
                "2" | "9" => assert_eq!(dialect, Dialect::FRAMES),
                other => panic!("unexpected option {other}"),
            }
        }
        // Mining is dialect-blind: the graph equals an all-SQL build of the same trees.
        let all_sql = PrecisionInterfaces::default().from_queries(snap.queries.clone());
        assert_eq!(snap.graph, all_sql.graph);
    }

    #[test]
    fn unregistered_dialects_skip_and_count() {
        let mut session = Session::new(PiOptions::default());
        let indices = session.push_text_as(Dialect::new("sparql"), "SELECT ?s WHERE { }");
        assert!(indices.is_empty());
        assert_eq!(session.skipped(), 1);
        assert_eq!(session.version(), 0);
        // The session keeps streaming afterwards.
        session.push_text("SELECT a FROM t WHERE x = 1");
        assert_eq!(session.version(), 1);
    }

    #[test]
    fn custom_registries_change_the_default_frontend() {
        use pi_ast::Frontends;
        // A frames-first session: untagged text parses as the dataframe dialect.
        let registry = Frontends::new().with(pi_frames::FramesFrontend);
        let mut session = Session::with_frontends(PiOptions::default(), registry);
        assert_eq!(session.default_dialect(), Dialect::FRAMES);
        session.push_text("t.filter(x == 1)");
        session.push_text("t.filter(x == 2)");
        assert_eq!(session.dialects(), &[Dialect::FRAMES, Dialect::FRAMES]);
        // SQL is not registered in this session: push_sql skips.
        assert!(session.push_sql("SELECT a FROM t").is_empty());
        assert_eq!(session.skipped(), 1);
        let snap = session.snapshot();
        assert_eq!(snap.interface.initial_dialect(), Dialect::FRAMES);
        assert_eq!(snap.interface.widgets().len(), 1);
        // with_default_dialect re-routes untagged pushes.
        let rerouted = Session::new(PiOptions::default()).with_default_dialect(Dialect::FRAMES);
        assert_eq!(rerouted.default_dialect(), Dialect::FRAMES);
    }

    #[test]
    fn sessions_are_send_and_cheap_accessors_track_state() {
        // The pool-facing audit: a SessionPool moves sessions across worker threads, so
        // Session (and a generated snapshot) must stay Send — if a future change smuggles
        // in an Rc or a non-Send trait object, this stops compiling.
        fn assert_send<T: Send>() {}
        assert_send::<Session>();
        assert_send::<GeneratedInterface>();
        // len()/skipped() are the no-snapshot accessors /stats-style gauges poll.
        let mut session = Session::new(PiOptions::default());
        assert_eq!((session.len(), session.skipped()), (0, 0));
        session.push_sql("SELECT a FROM t WHERE x = 1; NOT SQL;");
        assert_eq!((session.len(), session.skipped()), (1, 1));
        assert_eq!(session.len() as u64, session.version());
    }

    #[test]
    fn timings_accumulate_across_pushes() {
        let mut session = Session::new(PiOptions::default());
        session.push_sql("SELECT a FROM t WHERE x = 1; SELECT a FROM t WHERE x = 2;");
        let snap = session.snapshot();
        assert!(snap.timings.parse_ms >= 0.0);
        assert!(snap.timings.mining_ms >= 0.0);
        assert!(snap.timings.total_ms() >= snap.timings.mapping_ms);
    }
}
