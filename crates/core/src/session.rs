//! Streaming ingestion: a stateful [`Session`] that grows the interaction graph as queries
//! arrive and serves interface snapshots on demand.
//!
//! The paper's interaction graph is defined over a log that grows as the analyst works, and
//! the sliding-window optimisation (§6.1) means an appended query only ever pairs with its
//! `w` predecessors.  A `Session` exploits exactly that: [`Session::push`] runs only the new
//! alignments the window admits (`O(w)` for a sliding window, independent of how long the
//! log already is), appending their records to the session's [`pi_diff::DiffStore`] at
//! stable `DiffId` offsets, while [`Session::snapshot`] lazily re-runs the interaction
//! mapper and returns a versioned [`GeneratedInterface`].
//!
//! The load-bearing invariant — property-tested in `tests/properties.rs` and relied on by
//! the one-shot [`PrecisionInterfaces`](crate::PrecisionInterfaces) entry points, which are
//! thin wrappers over a `Session` — is **batch identity**: a snapshot after `n` pushes is
//! identical (same graph edges, same diff records in the same order, same widgets, same
//! rendered interface) to a batch build of those same `n` queries.
//!
//! ```
//! use pi_core::{PiOptions, Session};
//!
//! let mut session = Session::new(PiOptions::default());
//! session.push_sql("SELECT a FROM t WHERE x = 1");
//! session.push_sql("SELECT a FROM t WHERE x = 2");
//! let v2 = session.snapshot();
//! assert_eq!(v2.version, 2);
//! assert_eq!(v2.interface.widgets().len(), 1);
//!
//! session.push_sql("SELECT a FROM t WHERE x = 9");
//! let v3 = session.snapshot();
//! assert_eq!(v3.version, 3);
//! assert!(v3.interface.expressiveness(&v3.queries) >= 1.0);
//! ```

use crate::interface::Interface;
use crate::pipeline::{GeneratedInterface, PiOptions, StageTimings};
use pi_ast::Node;
use pi_graph::{GraphAccumulator, GraphBuilder, GraphStats, InteractionGraph};
use pi_sql::parse_log;
use std::time::Instant;

/// A memoised snapshot, reused until the next push invalidates it.
#[derive(Debug, Clone)]
struct CachedSnapshot {
    version: u64,
    graph: InteractionGraph,
    stats: GraphStats,
    interface: Interface,
}

/// A stateful, append-only ingestion session over one analysis's query stream.
///
/// Cloning a session forks it: both halves share the diff subtrees accumulated so far
/// (records are `Arc`-shared) but evolve independently from the clone point.
#[derive(Debug, Clone)]
pub struct Session {
    options: PiOptions,
    builder: GraphBuilder,
    acc: GraphAccumulator,
    skipped: usize,
    parse_ms: f64,
    mining_ms: f64,
    mapping_ms: f64,
    cache: Option<CachedSnapshot>,
}

impl Session {
    /// Opens an empty session with the given pipeline options.
    pub fn new(options: PiOptions) -> Self {
        let builder = GraphBuilder::new()
            .window(options.window)
            .policy(options.policy)
            .parallel(options.parallel);
        Session {
            options,
            builder,
            acc: GraphAccumulator::new(),
            skipped: 0,
            parse_ms: 0.0,
            mining_ms: 0.0,
            mapping_ms: 0.0,
            cache: None,
        }
    }

    /// The options this session runs with.
    pub fn options(&self) -> &PiOptions {
        &self.options
    }

    /// Appends one parsed query, incrementally extending the interaction graph: only the
    /// `(i, n)` alignments the window strategy admits are run, so for a sliding window of
    /// `w` this is `O(w)` work however long the log already is.  Returns the query's log
    /// index.
    pub fn push(&mut self, query: Node) -> usize {
        let start = Instant::now();
        let index = self.builder.extend(&mut self.acc, query);
        self.mining_ms += start.elapsed().as_secs_f64() * 1e3;
        index
    }

    /// Appends every query of an iterator, returning how many were appended.
    ///
    /// Unlike per-query [`Session::push`], a bulk append with enough new alignments fans
    /// them out across cores when the session's options ask for parallel mining — so the
    /// one-shot batch entry points, which are wrappers over this, keep their multi-core
    /// path.  The resulting graph is byte-identical either way.
    pub fn push_all<I: IntoIterator<Item = Node>>(&mut self, queries: I) -> usize {
        let start = Instant::now();
        let appended = self.builder.extend_batch(&mut self.acc, queries);
        self.mining_ms += start.elapsed().as_secs_f64() * 1e3;
        appended.len()
    }

    /// Parses a fragment of SQL text (one or more `;`-separated statements) and appends
    /// every statement that parses, returning the appended log indices.
    ///
    /// Unparseable statements are skipped and counted in [`Session::skipped`] rather than
    /// aborting the stream — live query logs contain typos and statements in unsupported
    /// dialects, and one of them must not wedge the session.
    pub fn push_sql(&mut self, sql: &str) -> Vec<usize> {
        let start = Instant::now();
        let parsed = parse_log(sql);
        self.parse_ms += start.elapsed().as_secs_f64() * 1e3;
        let mut indices = Vec::new();
        for result in parsed {
            match result {
                Ok(query) => indices.push(self.push(query)),
                Err(_) => self.skipped += 1,
            }
        }
        indices
    }

    /// Number of queries ingested so far.
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// True when no query has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Number of unparseable statements skipped by [`Session::push_sql`] so far.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// The session version: the number of queries ingested so far.  Bumps on every
    /// successful append, so two snapshots with the same version have identical graphs,
    /// stats and interfaces — and a snapshot at version `n` is identical to a batch build
    /// of the session's first `n` queries.  (Only the bookkeeping fields differ: `skipped`
    /// counts unparseable statements, which don't bump the version, and timings keep
    /// accumulating.)
    pub fn version(&self) -> u64 {
        self.acc.len() as u64
    }

    /// The queries ingested so far, in append order.
    pub fn queries(&self) -> &[Node] {
        self.acc.queries()
    }

    /// Summary statistics of the graph mined so far (cheap; does not run the mapper).
    pub fn graph_stats(&self) -> GraphStats {
        self.acc.stats()
    }

    /// A frozen copy of the interaction graph mined so far (cheap relative to mining:
    /// record subtrees are `Arc`-shared, only the log's nodes are cloned into the shared
    /// allocation).
    pub fn graph(&self) -> InteractionGraph {
        self.acc.to_graph()
    }

    /// Returns the generated interface for everything ingested so far.
    ///
    /// Lazy: the interaction mapper only re-runs when queries were pushed since the last
    /// snapshot; repeated snapshots at the same version are served from cache.  The result
    /// is versioned ([`GeneratedInterface::version`]) and **batch-identical**: its graph,
    /// stats and interface are exactly what
    /// [`PrecisionInterfaces::from_queries`](crate::PrecisionInterfaces::from_queries)
    /// would produce for the same query prefix.  Only the timings differ — a session
    /// reports its *accumulated* per-stage cost across all pushes and re-maps.
    ///
    /// Cost: pushes are `O(w)`, but a *refreshed* snapshot is not — it clones the log into
    /// a shared allocation (`O(n)` node clones; diff subtrees stay `Arc`-shared) and re-runs
    /// the mapper.  Snapshot at the cadence the interface refreshes, not per append; the
    /// `session_refresh_sliding16` bench tracks this cost honestly.
    pub fn snapshot(&mut self) -> GeneratedInterface {
        let version = self.version();
        let stale = !matches!(&self.cache, Some(c) if c.version == version);
        if stale {
            let graph = self.acc.to_graph();
            let start = Instant::now();
            let interface = crate::pipeline::map_graph(&self.options, &graph);
            self.mapping_ms += start.elapsed().as_secs_f64() * 1e3;
            self.cache = Some(CachedSnapshot {
                version,
                stats: graph.stats(),
                graph,
                interface,
            });
        }
        let cached = self.cache.as_ref().expect("snapshot cache just refreshed");
        GeneratedInterface {
            interface: cached.interface.clone(),
            queries: cached.graph.queries().clone(),
            graph: cached.graph.clone(),
            skipped: self.skipped,
            graph_stats: cached.stats,
            timings: self.timings(),
            version,
        }
    }

    /// Consumes the session, producing its final snapshot without retaining a cache.
    ///
    /// Identical output to [`Session::snapshot`], but the accumulated log, store and edges
    /// are *moved* into the result instead of cloned — no `O(n)` node copies, no store
    /// clone.  This is what the one-shot batch entry points use: ingest everything, then
    /// take the single snapshot for free.
    pub fn into_snapshot(mut self) -> GeneratedInterface {
        let version = self.version();
        // A fresh cache already holds the mapped interface and frozen graph — move them out.
        let (graph, stats, interface) = match self.cache.take() {
            Some(c) if c.version == version => (c.graph, c.stats, c.interface),
            _ => {
                let graph = std::mem::take(&mut self.acc).into_graph();
                let start = Instant::now();
                let interface = crate::pipeline::map_graph(&self.options, &graph);
                self.mapping_ms += start.elapsed().as_secs_f64() * 1e3;
                let stats = graph.stats();
                (graph, stats, interface)
            }
        };
        GeneratedInterface {
            interface,
            queries: graph.queries().clone(),
            graph,
            skipped: self.skipped,
            graph_stats: stats,
            timings: self.timings(),
            version,
        }
    }

    /// The per-stage wall-clock cost accumulated so far (parse across all `push_sql` calls,
    /// mining across all pushes, mapping across all snapshot refreshes).
    pub fn timings(&self) -> StageTimings {
        StageTimings {
            parse_ms: self.parse_ms,
            mining_ms: self.mining_ms,
            mapping_ms: self.mapping_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PrecisionInterfaces;
    use pi_graph::WindowStrategy;

    fn log(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| pi_sql::parse(&format!("SELECT a FROM t WHERE x = {}", i % 5)).unwrap())
            .collect()
    }

    fn assert_batch_identical(snap: &GeneratedInterface, batch: &GeneratedInterface) {
        assert_eq!(snap.version, batch.version);
        assert_eq!(snap.graph_stats, batch.graph_stats);
        assert_eq!(snap.graph, batch.graph);
        assert_eq!(snap.interface.widgets(), batch.interface.widgets());
        assert_eq!(snap.interface.describe(), batch.interface.describe());
    }

    #[test]
    fn interleaved_pushes_and_snapshots_match_batch_builds() {
        for window in [WindowStrategy::AllPairs, WindowStrategy::sliding(3)] {
            let options = PiOptions {
                window,
                ..PiOptions::default()
            };
            let queries = log(9);
            let mut session = Session::new(options.clone());
            for (k, q) in queries.iter().enumerate() {
                assert_eq!(session.push(q.clone()), k);
                let snap = session.snapshot();
                let batch =
                    PrecisionInterfaces::new(options.clone()).from_queries(queries[..=k].to_vec());
                assert_batch_identical(&snap, &batch);
            }
        }
    }

    #[test]
    fn parallel_sessions_match_serial_and_the_batch_path() {
        // push_all under parallel options must match serial sessions and one-shot builds —
        // and the batch wrappers must keep honouring `parallel` (it routes through
        // extend_batch, not the per-query path).
        let queries = log(48);
        let parallel_options = PiOptions {
            window: WindowStrategy::AllPairs,
            parallel: true,
            ..PiOptions::default()
        };
        let serial_options = PiOptions {
            parallel: false,
            ..parallel_options.clone()
        };
        let mut par = Session::new(parallel_options.clone());
        let mut ser = Session::new(serial_options);
        par.push_all(queries.clone());
        ser.push_all(queries.clone());
        assert_eq!(par.graph(), ser.graph());
        let batch = PrecisionInterfaces::new(parallel_options).from_queries(queries);
        assert_batch_identical(&par.snapshot(), &batch);
    }

    #[test]
    fn into_snapshot_matches_snapshot() {
        let queries = log(7);
        let mut kept = Session::new(PiOptions::default());
        let mut consumed = Session::new(PiOptions::default());
        kept.push_all(queries.clone());
        consumed.push_all(queries);
        assert_batch_identical(&kept.snapshot(), &consumed.into_snapshot());
    }

    #[test]
    fn snapshots_are_cached_until_the_next_push() {
        let mut session = Session::new(PiOptions::default());
        session.push_all(log(4));
        let first = session.snapshot();
        let second = session.snapshot();
        assert_eq!(first.version, second.version);
        assert_eq!(first.interface.describe(), second.interface.describe());
        session.push(log(1).pop().unwrap());
        assert_eq!(session.snapshot().version, first.version + 1);
    }

    #[test]
    fn push_sql_skips_garbage_and_keeps_streaming() {
        let mut session = Session::new(PiOptions::default());
        let a = session.push_sql("SELECT a FROM t WHERE x = 1; THIS IS NOT SQL;");
        let b = session.push_sql("ALSO NOT SQL; SELECT a FROM t WHERE x = 2;");
        assert_eq!((a, b), (vec![0], vec![1]));
        assert_eq!(session.skipped(), 2);
        assert_eq!(session.version(), 2);
        let snap = session.snapshot();
        assert_eq!(snap.skipped, 2);
        assert_eq!(snap.interface.widgets().len(), 1);
    }

    #[test]
    fn an_empty_session_snapshots_to_an_empty_interface() {
        let mut session = Session::new(PiOptions::default());
        assert!(session.is_empty());
        let snap = session.snapshot();
        assert_eq!(snap.version, 0);
        assert!(snap.interface.widgets().is_empty());
        assert_eq!(snap.graph_stats.queries, 0);
    }

    #[test]
    fn appended_records_keep_stable_diff_ids_across_snapshots() {
        let mut session = Session::new(PiOptions {
            window: WindowStrategy::sliding(4),
            ..PiOptions::default()
        });
        session.push_all(log(6));
        let early = session.snapshot();
        session.push_all(log(6));
        let late = session.snapshot();
        // The early snapshot's store is a prefix of the late one's: same ids, same records.
        assert!(early.graph.store().len() <= late.graph.store().len());
        for ((ia, ra), (ib, rb)) in early.graph.store().iter().zip(late.graph.store().iter()) {
            assert_eq!(ia, ib);
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn timings_accumulate_across_pushes() {
        let mut session = Session::new(PiOptions::default());
        session.push_sql("SELECT a FROM t WHERE x = 1; SELECT a FROM t WHERE x = 2;");
        let snap = session.snapshot();
        assert!(snap.timings.parse_ms >= 0.0);
        assert!(snap.timings.mining_ms >= 0.0);
        assert!(snap.timings.total_ms() >= snap.timings.mapping_ms);
    }
}
