//! Closure precision against a database schema (Appendix D).
//!
//! A purely syntactic interface can generate nonsensical queries: one widget may pick a table
//! while another picks a column that does not exist in that table.  Appendix D measures
//! *precision* — the fraction of queries in the interface's closure that do not violate the
//! schema — and shows that a simple column→table containment filter restores 100% precision.

use crate::interface::Interface;
use pi_ast::{Node, NodeKind};
use std::collections::{BTreeMap, BTreeSet};

/// A lightweight schema description: table → set of column names (all lower-cased).
///
/// This is intentionally independent of `pi-engine`'s full catalog so that precision can be
/// computed in settings where only the schema (not the data) is available; the engine's
/// catalog converts into this type.
#[derive(Debug, Clone, Default)]
pub struct SchemaMap {
    tables: BTreeMap<String, BTreeSet<String>>,
}

impl SchemaMap {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table with its columns.
    pub fn add_table<'a, I: IntoIterator<Item = &'a str>>(&mut self, table: &str, columns: I) {
        let entry = self.tables.entry(table.to_ascii_lowercase()).or_default();
        for column in columns {
            entry.insert(column.to_ascii_lowercase());
        }
    }

    /// Builder-style [`SchemaMap::add_table`].
    pub fn with_table<'a, I: IntoIterator<Item = &'a str>>(
        mut self,
        table: &str,
        columns: I,
    ) -> Self {
        self.add_table(table, columns);
        self
    }

    /// True when the schema knows the table.
    pub fn has_table(&self, table: &str) -> bool {
        self.tables.contains_key(&table.to_ascii_lowercase())
    }

    /// True when the given table contains the given column.
    pub fn table_has_column(&self, table: &str, column: &str) -> bool {
        self.tables
            .get(&table.to_ascii_lowercase())
            .map(|cols| cols.contains(&column.to_ascii_lowercase()))
            .unwrap_or(false)
    }

    /// The tables that contain a column (the column→table mapping of Appendix D).
    pub fn tables_containing(&self, column: &str) -> Vec<&str> {
        let column = column.to_ascii_lowercase();
        self.tables
            .iter()
            .filter(|(_, cols)| cols.contains(&column))
            .map(|(t, _)| t.as_str())
            .collect()
    }

    /// Number of tables in the schema.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

/// Checks whether a query is consistent with the schema: every referenced table must exist,
/// and every referenced column must belong to at least one table referenced by the enclosing
/// query (the containment check of Appendix D — "verify that all column name node types have
/// the containing table name node in the tree").
pub fn query_is_schema_valid(query: &Node, schema: &SchemaMap) -> bool {
    // Collect every table referenced anywhere in the query (including subqueries).  Alias
    // resolution is not needed for the containment check: aliases only rename tables that are
    // present in the same tree.
    let mut tables: BTreeSet<String> = BTreeSet::new();
    let mut aliases: BTreeSet<String> = BTreeSet::new();
    let mut tables_ok = true;
    query.visit(&mut |node| {
        if node.kind_ref() == &NodeKind::TableRef {
            if let Some(name) = node.attr_str("name") {
                if schema.has_table(name) {
                    tables.insert(name.to_ascii_lowercase());
                } else {
                    tables_ok = false;
                }
            }
            if let Some(alias) = node.attr_str("alias") {
                aliases.insert(alias.to_ascii_lowercase());
            }
        }
        if node.kind_ref() == &NodeKind::TableFunc {
            if let Some(alias) = node.attr_str("alias") {
                aliases.insert(alias.to_ascii_lowercase());
            }
        }
    });
    if !tables_ok {
        return false;
    }

    // Every column must be contained in one of the referenced tables.  Columns qualified by a
    // table-function alias are outside the base schema and are accepted as-is.
    let mut columns_ok = true;
    query.visit(&mut |node| {
        if node.kind_ref() == &NodeKind::ColExpr {
            let Some(name) = node.attr_str("name") else {
                return;
            };
            if let Some(qualifier) = node.attr_str("table") {
                let qualifier = qualifier.to_ascii_lowercase();
                if aliases.contains(&qualifier) && !schema.has_table(&qualifier) {
                    return; // refers to a UDF/table-function alias; outside the base schema
                }
                if schema.has_table(&qualifier) {
                    if !schema.table_has_column(&qualifier, name) {
                        columns_ok = false;
                    }
                    return;
                }
            }
            if !tables
                .iter()
                .any(|table| schema.table_has_column(table, name))
            {
                columns_ok = false;
            }
        }
    });
    columns_ok
}

/// The precision of an interface's closure against a schema: the fraction of (up to `limit`)
/// closure queries that pass [`query_is_schema_valid`] — the "No Filter" series of Figure 15.
pub fn closure_precision(interface: &Interface, schema: &SchemaMap, limit: usize) -> f64 {
    let closure = interface.enumerate_closure(limit);
    if closure.is_empty() {
        return 1.0;
    }
    let valid = closure
        .iter()
        .filter(|q| query_is_schema_valid(q, schema))
        .count();
    valid as f64 / closure.len() as f64
}

/// The closure restricted to schema-valid queries — the "Filtered" condition of Figure 15
/// (whose precision is 1.0 by construction).
pub fn filtered_closure(interface: &Interface, schema: &SchemaMap, limit: usize) -> Vec<Node> {
    interface
        .enumerate_closure(limit)
        .into_iter()
        .filter(|q| query_is_schema_valid(q, schema))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrecisionInterfaces;
    use pi_ast::Frontend as _;

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    fn sdss_schema() -> SchemaMap {
        SchemaMap::new()
            .with_table("SpecLineIndex", ["specObjId", "z", "ew"])
            .with_table("XCRedshift", ["specObjId", "z", "tempNo"])
            .with_table("Galaxy", ["objID", "ra", "dec"])
    }

    #[test]
    fn valid_and_invalid_queries_are_classified() {
        let schema = sdss_schema();
        let ok = parse("SELECT z FROM SpecLineIndex WHERE specObjId = 0x400").unwrap();
        assert!(query_is_schema_valid(&ok, &schema));
        // tempNo lives in XCRedshift, not SpecLineIndex.
        let bad_col = parse("SELECT tempNo FROM SpecLineIndex WHERE specObjId = 0x400").unwrap();
        assert!(!query_is_schema_valid(&bad_col, &schema));
        let bad_table = parse("SELECT z FROM NoSuchTable").unwrap();
        assert!(!query_is_schema_valid(&bad_table, &schema));
    }

    #[test]
    fn qualified_columns_check_their_own_table() {
        let schema = sdss_schema();
        let ok = parse("SELECT g.objID FROM Galaxy AS g WHERE g.ra > 5").unwrap();
        assert!(query_is_schema_valid(&ok, &schema));
        let bad = parse("SELECT Galaxy.specObjId FROM Galaxy").unwrap();
        assert!(!query_is_schema_valid(&bad, &schema));
        // Columns qualified by a table-function alias are accepted (outside the base schema).
        let udf = parse(
            "SELECT g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(1.0, 2.0, 3.0) AS d WHERE d.objID = g.objID",
        )
        .unwrap();
        assert!(query_is_schema_valid(&udf, &schema));
    }

    #[test]
    fn tables_containing_reports_the_column_mapping() {
        let schema = sdss_schema();
        let both = schema.tables_containing("specObjId");
        assert_eq!(both.len(), 2);
        assert_eq!(schema.tables_containing("ra"), vec!["galaxy"]);
        assert!(schema.tables_containing("nothere").is_empty());
        assert_eq!(schema.table_count(), 3);
    }

    #[test]
    fn mixed_client_interfaces_lose_precision_and_the_filter_restores_it() {
        // A miniature version of Figure 15: interleave two "clients" that query different
        // tables with different columns; the cross-product closure mixes them up.
        let schema = sdss_schema();
        let log = "
            SELECT z FROM SpecLineIndex WHERE specObjId = 0x400;
            SELECT ew FROM SpecLineIndex WHERE specObjId = 0x401;
            SELECT ra FROM Galaxy WHERE objID = 0x10;
            SELECT dec FROM Galaxy WHERE objID = 0x11;
            SELECT z FROM SpecLineIndex WHERE specObjId = 0x402;
            SELECT ra FROM Galaxy WHERE objID = 0x12;
            SELECT ew FROM SpecLineIndex WHERE specObjId = 0x403;
            SELECT dec FROM Galaxy WHERE objID = 0x13;
            SELECT z FROM SpecLineIndex WHERE specObjId = 0x404;
            SELECT ra FROM Galaxy WHERE objID = 0x14;
            SELECT ew FROM SpecLineIndex WHERE specObjId = 0x405;
            SELECT dec FROM Galaxy WHERE objID = 0x15;
            SELECT z FROM SpecLineIndex WHERE specObjId = 0x406;
            SELECT ra FROM Galaxy WHERE objID = 0x16;
        ";
        let out = PrecisionInterfaces::default().from_sql_log(log).unwrap();
        let precision = closure_precision(&out.interface, &schema, 10_000);
        assert!(
            precision < 1.0,
            "mixing clients should produce schema-invalid closure queries:\n{}",
            out.interface.describe()
        );
        assert!(precision > 0.0);
        // The filter removes every invalid query.
        let filtered = filtered_closure(&out.interface, &schema, 10_000);
        assert!(!filtered.is_empty());
        assert!(filtered.iter().all(|q| query_is_schema_valid(q, &schema)));
    }

    #[test]
    fn single_analysis_interfaces_stay_precise() {
        let schema = sdss_schema();
        let log = "
            SELECT z FROM SpecLineIndex WHERE specObjId = 0x400;
            SELECT z FROM SpecLineIndex WHERE specObjId = 0x401;
            SELECT z FROM SpecLineIndex WHERE specObjId = 0x402;
        ";
        let out = PrecisionInterfaces::default().from_sql_log(log).unwrap();
        let precision = closure_precision(&out.interface, &schema, 10_000);
        assert!((precision - 1.0).abs() < f64::EPSILON);
    }
}
