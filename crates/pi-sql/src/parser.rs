//! Recursive-descent SQL parser producing `pi_ast` trees.
//!
//! The tree shapes produced here are identical to the ones produced by
//! [`pi_ast::builder::SelectBuilder`], so query logs that are generated programmatically and
//! logs that arrive as SQL text flow into the same downstream pipeline and diff cleanly against
//! each other.

use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::{Keyword, Lexer, Token, TokenKind};
use pi_ast::{Node, NodeKind};

/// Parses a single SQL statement into an AST.
pub fn parse(sql: &str) -> Result<Node, ParseError> {
    let tokens = Lexer::new(sql).tokenize()?;
    let mut parser = Parser::new(tokens);
    let node = parser.parse_statement()?;
    parser.expect_end()?;
    Ok(node)
}

/// Parses a query log: statements separated by semicolons (and/or blank lines).
///
/// Each statement parses independently; the result preserves log order and reports per-query
/// outcomes so that a single malformed query does not discard the rest of the log — real query
/// logs routinely contain typos.
pub fn parse_log(text: &str) -> Vec<Result<Node, ParseError>> {
    text.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect()
}

/// The recursive-descent parser state.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

const AGGREGATES: &[&str] = &["COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VARIANCE"];

impl Parser {
    /// Creates a parser over a token stream.
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    // ------------------------------------------------------------------ token helpers

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_at(&self, n: usize) -> Option<&TokenKind> {
        self.tokens.get(self.pos + n).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.offset + 1).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: Keyword) -> bool {
        matches!(self.peek(), Some(TokenKind::Keyword(k)) if *k == kw)
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(kw.as_str()))
        }
    }

    fn eat_token(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, kind: TokenKind, what: &str) -> Result<(), ParseError> {
        if self.eat_token(&kind) {
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        match self.peek() {
            Some(tok) => ParseError::new(
                ParseErrorKind::UnexpectedToken {
                    found: tok.describe(),
                    expected: expected.to_string(),
                },
                self.offset(),
            ),
            None => ParseError::new(
                ParseErrorKind::UnexpectedEnd {
                    expected: expected.to_string(),
                },
                self.offset(),
            ),
        }
    }

    /// Consumes an optional trailing semicolon and verifies nothing else follows.
    pub fn expect_end(&mut self) -> Result<(), ParseError> {
        while self.eat_token(&TokenKind::Semicolon) {}
        match self.peek() {
            None => Ok(()),
            Some(tok) => Err(ParseError::new(
                ParseErrorKind::TrailingInput(tok.describe()),
                self.offset(),
            )),
        }
    }

    // ------------------------------------------------------------------ statements

    /// Parses one SELECT statement.
    pub fn parse_statement(&mut self) -> Result<Node, ParseError> {
        self.parse_select()
    }

    fn parse_select(&mut self) -> Result<Node, ParseError> {
        self.expect_keyword(Keyword::Select)?;
        let mut root = Node::new(NodeKind::Select);

        if self.eat_keyword(Keyword::Distinct) {
            root.set_attr("distinct", true);
        }

        // TOP n (SQL Server / SDSS style)
        let mut top_limit: Option<Node> = None;
        if self.eat_keyword(Keyword::Top) {
            let expr = self.parse_expr()?;
            top_limit = Some(
                Node::new(NodeKind::Limit)
                    .with_attr("style", "top")
                    .with_child(expr),
            );
        }

        // projection list
        let mut project = Node::new(NodeKind::Project);
        loop {
            project.push_child(self.parse_proj_clause()?);
            if !self.eat_token(&TokenKind::Comma) {
                break;
            }
        }
        root.push_child(project);

        // FROM
        let mut from = Node::new(NodeKind::From);
        if self.eat_keyword(Keyword::From) {
            loop {
                from.push_child(self.parse_relation()?);
                if !self.eat_token(&TokenKind::Comma) {
                    break;
                }
            }
        }
        root.push_child(from);

        // WHERE
        if self.eat_keyword(Keyword::Where) {
            let pred = self.parse_expr()?;
            root.push_child(Node::new(NodeKind::Where).with_child(pred));
        }

        // GROUP BY
        if self.at_keyword(Keyword::Group) {
            self.bump();
            self.expect_keyword(Keyword::By)?;
            let mut gb = Node::new(NodeKind::GroupBy);
            loop {
                let expr = self.parse_expr()?;
                gb.push_child(Node::new(NodeKind::GroupClause).with_child(expr));
                if !self.eat_token(&TokenKind::Comma) {
                    break;
                }
            }
            root.push_child(gb);
        }

        // HAVING
        if self.eat_keyword(Keyword::Having) {
            let pred = self.parse_expr()?;
            root.push_child(Node::new(NodeKind::Having).with_child(pred));
        }

        // ORDER BY
        if self.at_keyword(Keyword::Order) {
            self.bump();
            self.expect_keyword(Keyword::By)?;
            let mut ob = Node::new(NodeKind::OrderBy);
            loop {
                let expr = self.parse_expr()?;
                let dir = if self.eat_keyword(Keyword::Desc) {
                    "desc"
                } else {
                    self.eat_keyword(Keyword::Asc);
                    "asc"
                };
                ob.push_child(
                    Node::new(NodeKind::OrderClause)
                        .with_attr("dir", dir)
                        .with_child(expr),
                );
                if !self.eat_token(&TokenKind::Comma) {
                    break;
                }
            }
            root.push_child(ob);
        }

        // LIMIT
        if self.eat_keyword(Keyword::Limit) {
            let expr = self.parse_expr()?;
            root.push_child(Node::new(NodeKind::Limit).with_child(expr));
        } else if let Some(limit) = top_limit {
            root.push_child(limit);
        }

        Ok(root)
    }

    fn parse_proj_clause(&mut self) -> Result<Node, ParseError> {
        let expr = self.parse_expr()?;
        let mut clause = Node::new(NodeKind::ProjClause);
        if self.eat_keyword(Keyword::As) {
            let alias = self.expect_ident("projection alias")?;
            clause.set_attr("alias", alias);
        }
        clause.push_child(expr);
        Ok(clause)
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(_)) => {
                let Some(TokenKind::Ident(s)) = self.bump() else {
                    unreachable!()
                };
                Ok(s)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    // ------------------------------------------------------------------ relations

    fn parse_relation(&mut self) -> Result<Node, ParseError> {
        let mut rel = self.parse_relation_primary()?;
        // explicit JOINs bind tighter than the comma list
        loop {
            let join_type = if self.at_keyword(Keyword::Join) {
                self.bump();
                "inner".to_string()
            } else if self.at_keyword(Keyword::Inner)
                && self.peek_at(1) == Some(&TokenKind::Keyword(Keyword::Join))
            {
                self.bump();
                self.bump();
                "inner".to_string()
            } else if (self.at_keyword(Keyword::Left) || self.at_keyword(Keyword::Right))
                && matches!(
                    self.peek_at(1),
                    Some(TokenKind::Keyword(Keyword::Join))
                        | Some(TokenKind::Keyword(Keyword::Outer))
                )
            {
                let side = if self.at_keyword(Keyword::Left) {
                    "left"
                } else {
                    "right"
                };
                self.bump();
                self.eat_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                side.to_string()
            } else {
                break;
            };
            let right = self.parse_relation_primary()?;
            self.expect_keyword(Keyword::On)?;
            let on = self.parse_expr()?;
            rel = Node::new(NodeKind::Join)
                .with_attr("join_type", join_type.as_str())
                .with_child(rel)
                .with_child(right)
                .with_child(on);
        }
        Ok(rel)
    }

    fn parse_relation_primary(&mut self) -> Result<Node, ParseError> {
        if self.eat_token(&TokenKind::LParen) {
            // derived table
            let sub = self.parse_select()?;
            self.expect_token(TokenKind::RParen, ")")?;
            let mut rel = Node::new(NodeKind::SubqueryRef).with_child(sub);
            if let Some(alias) = self.parse_optional_alias()? {
                rel.set_attr("alias", alias);
            }
            return Ok(rel);
        }

        // dotted name: schema.table or schema.func(...)
        let name = self.parse_dotted_name()?;
        if self.peek() == Some(&TokenKind::LParen) {
            // table-valued function
            self.bump();
            let mut args = Vec::new();
            if self.peek() != Some(&TokenKind::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat_token(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect_token(TokenKind::RParen, ")")?;
            let mut rel = Node::new(NodeKind::TableFunc)
                .with_attr("name", name.as_str())
                .with_children(args);
            if let Some(alias) = self.parse_optional_alias()? {
                rel.set_attr("alias", alias);
            }
            Ok(rel)
        } else {
            let mut rel = Node::table(&name);
            if let Some(alias) = self.parse_optional_alias()? {
                rel.set_attr("alias", alias);
            }
            Ok(rel)
        }
    }

    fn parse_optional_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_keyword(Keyword::As) {
            return self.expect_ident("alias").map(Some);
        }
        if let Some(TokenKind::Ident(_)) = self.peek() {
            let Some(TokenKind::Ident(s)) = self.bump() else {
                unreachable!()
            };
            return Ok(Some(s));
        }
        Ok(None)
    }

    fn parse_dotted_name(&mut self) -> Result<String, ParseError> {
        let mut name = self.expect_ident("table name")?;
        while self.peek() == Some(&TokenKind::Dot) {
            // only continue if followed by an identifier
            if let Some(TokenKind::Ident(_)) = self.peek_at(1) {
                self.bump();
                let part = self.expect_ident("name part")?;
                name.push('.');
                name.push_str(&part);
            } else {
                break;
            }
        }
        Ok(name)
    }

    // ------------------------------------------------------------------ expressions

    /// Parses a full boolean expression (entry point also used for arguments and predicates).
    pub fn parse_expr(&mut self) -> Result<Node, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Node, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.parse_and()?;
            left = binop("OR", left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Node, ParseError> {
        let mut left = self.parse_not()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.parse_not()?;
            left = binop("AND", left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Node, ParseError> {
        if self.eat_keyword(Keyword::Not) {
            let inner = self.parse_not()?;
            Ok(Node::new(NodeKind::UnExpr)
                .with_attr("op", "NOT")
                .with_child(inner))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Node, ParseError> {
        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.at_keyword(Keyword::Is) {
            self.bump();
            let negated = self.eat_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            let op = if negated { "IS NOT NULL" } else { "IS NULL" };
            return Ok(Node::new(NodeKind::UnExpr)
                .with_attr("op", op)
                .with_child(left));
        }

        // [NOT] IN / BETWEEN / LIKE
        let negated = if self.at_keyword(Keyword::Not)
            && matches!(
                self.peek_at(1),
                Some(TokenKind::Keyword(Keyword::In))
                    | Some(TokenKind::Keyword(Keyword::Between))
                    | Some(TokenKind::Keyword(Keyword::Like))
            ) {
            self.bump();
            true
        } else {
            false
        };

        if self.eat_keyword(Keyword::In) {
            self.expect_token(TokenKind::LParen, "(")?;
            let mut list = Node::new(NodeKind::ExprList);
            if self.at_keyword(Keyword::Select) {
                let sub = self.parse_select()?;
                list.push_child(Node::new(NodeKind::ScalarSubquery).with_child(sub));
            } else {
                loop {
                    list.push_child(self.parse_expr()?);
                    if !self.eat_token(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect_token(TokenKind::RParen, ")")?;
            let op = if negated { "NOT IN" } else { "IN" };
            return Ok(binop(op, left, list));
        }
        if self.eat_keyword(Keyword::Between) {
            let lo = self.parse_additive()?;
            self.expect_keyword(Keyword::And)?;
            let hi = self.parse_additive()?;
            let list = Node::new(NodeKind::ExprList).with_child(lo).with_child(hi);
            let op = if negated { "NOT BETWEEN" } else { "BETWEEN" };
            return Ok(binop(op, left, list));
        }
        if self.eat_keyword(Keyword::Like) {
            let pattern = self.parse_additive()?;
            let op = if negated { "NOT LIKE" } else { "LIKE" };
            return Ok(binop(op, left, pattern));
        }
        if negated {
            return Err(self.unexpected("IN, BETWEEN or LIKE after NOT"));
        }

        // plain comparison operators
        if let Some(TokenKind::Op(op)) = self.peek() {
            let op = op.clone();
            if matches!(op.as_str(), "=" | "<" | ">" | "<=" | ">=" | "<>" | "!=") {
                self.bump();
                let right = self.parse_additive()?;
                return Ok(binop(&op, left, right));
            }
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Node, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Op(o)) if o == "+" || o == "-" || o == "||" => o.clone(),
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = binop(&op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Node, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Op(o)) if o == "/" || o == "%" => o.clone(),
                Some(TokenKind::Star) => "*".to_string(),
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = binop(&op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Node, ParseError> {
        if let Some(TokenKind::Op(o)) = self.peek() {
            if o == "-" {
                self.bump();
                let inner = self.parse_unary()?;
                // Fold negation into numeric literals so `-5` is a single NumExpr.
                if inner.kind() == NodeKind::NumExpr {
                    if let Some(v) = inner.attr("value") {
                        return Ok(match v {
                            pi_ast::AttrValue::Int(i) => Node::int(-i),
                            pi_ast::AttrValue::Float(f) => Node::float(-f),
                            _ => Node::new(NodeKind::UnExpr)
                                .with_attr("op", "-")
                                .with_child(inner),
                        });
                    }
                }
                return Ok(Node::new(NodeKind::UnExpr)
                    .with_attr("op", "-")
                    .with_child(inner));
            }
            if o == "+" {
                self.bump();
                return self.parse_unary();
            }
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Node, ParseError> {
        match self.peek().cloned() {
            Some(TokenKind::Int(i)) => {
                self.bump();
                Ok(Node::int(i))
            }
            Some(TokenKind::Float(f)) => {
                self.bump();
                Ok(Node::float(f))
            }
            Some(TokenKind::Hex(h)) => {
                self.bump();
                Ok(Node::hex(h))
            }
            Some(TokenKind::String(s)) => {
                self.bump();
                Ok(Node::string(&s))
            }
            Some(TokenKind::Star) => {
                self.bump();
                Ok(Node::star())
            }
            Some(TokenKind::Keyword(Keyword::Null)) => {
                self.bump();
                Ok(Node::new(NodeKind::Null))
            }
            Some(TokenKind::Keyword(Keyword::True)) => {
                self.bump();
                Ok(Node::new(NodeKind::BoolExpr).with_attr("value", "true"))
            }
            Some(TokenKind::Keyword(Keyword::False)) => {
                self.bump();
                Ok(Node::new(NodeKind::BoolExpr).with_attr("value", "false"))
            }
            Some(TokenKind::Keyword(Keyword::Cast)) => self.parse_cast(),
            Some(TokenKind::Keyword(Keyword::Case)) => self.parse_case(),
            Some(TokenKind::LParen) => {
                self.bump();
                if self.at_keyword(Keyword::Select) {
                    let sub = self.parse_select()?;
                    self.expect_token(TokenKind::RParen, ")")?;
                    Ok(Node::new(NodeKind::ScalarSubquery).with_child(sub))
                } else {
                    let inner = self.parse_expr()?;
                    self.expect_token(TokenKind::RParen, ")")?;
                    Ok(inner)
                }
            }
            Some(TokenKind::Ident(_)) => self.parse_name_or_call(),
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn parse_cast(&mut self) -> Result<Node, ParseError> {
        self.expect_keyword(Keyword::Cast)?;
        self.expect_token(TokenKind::LParen, "(")?;
        let expr = self.parse_expr()?;
        // The target type is optional in some of the ad-hoc student queries
        // (`CAST(uniquecarrier)`); default to "varchar" in that case.
        let ty = if self.eat_keyword(Keyword::As) {
            self.parse_dotted_name()?
        } else {
            "varchar".to_string()
        };
        self.expect_token(TokenKind::RParen, ")")?;
        Ok(Node::new(NodeKind::Cast)
            .with_attr("ty", ty.as_str())
            .with_child(expr))
    }

    fn parse_case(&mut self) -> Result<Node, ParseError> {
        self.expect_keyword(Keyword::Case)?;
        let mut node = Node::new(NodeKind::CaseExpr);
        // simple form: CASE operand WHEN v THEN r ...
        if !self.at_keyword(Keyword::When) {
            node.set_attr("form", "simple");
            let operand = self.parse_expr()?;
            node.push_child(operand);
        } else {
            node.set_attr("form", "searched");
        }
        while self.eat_keyword(Keyword::When) {
            let cond = self.parse_expr()?;
            self.expect_keyword(Keyword::Then)?;
            let result = self.parse_expr()?;
            node.push_child(
                Node::new(NodeKind::WhenArm)
                    .with_child(cond)
                    .with_child(result),
            );
        }
        if self.eat_keyword(Keyword::Else) {
            let result = self.parse_expr()?;
            node.push_child(Node::new(NodeKind::ElseArm).with_child(result));
        }
        self.expect_keyword(Keyword::End)?;
        Ok(node)
    }

    fn parse_name_or_call(&mut self) -> Result<Node, ParseError> {
        let first = self.expect_ident("identifier")?;

        // qualified column or dotted function name
        let mut parts = vec![first];
        while self.peek() == Some(&TokenKind::Dot) {
            match self.peek_at(1) {
                Some(TokenKind::Ident(_)) => {
                    self.bump();
                    parts.push(self.expect_ident("name part")?);
                }
                Some(TokenKind::Star) => {
                    // t.* projection
                    self.bump();
                    self.bump();
                    return Ok(Node::star().with_attr("table", parts.join(".").as_str()));
                }
                _ => break,
            }
        }

        if self.peek() == Some(&TokenKind::LParen) {
            // function call
            self.bump();
            let name = parts.join(".");
            let is_agg = AGGREGATES.contains(&name.to_ascii_uppercase().as_str());
            let mut distinct = false;
            let mut args = Vec::new();
            if self.peek() != Some(&TokenKind::RParen) {
                if is_agg && self.eat_keyword(Keyword::Distinct) {
                    distinct = true;
                }
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat_token(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect_token(TokenKind::RParen, ")")?;
            // The function name is modelled as a FuncName child (not an attribute) so that
            // changing only the function name yields a small string-typed leaf diff.
            let (kind, canonical_name) = if is_agg {
                (NodeKind::AggCall, name.to_ascii_uppercase())
            } else {
                (NodeKind::FuncCall, name)
            };
            let mut node = Node::new(kind).with_child(
                Node::new(NodeKind::FuncName).with_attr("name", canonical_name.as_str()),
            );
            if distinct {
                node.set_attr("distinct", true);
            }
            Ok(node.with_children(args))
        } else {
            // column reference
            match parts.len() {
                1 => Ok(Node::column(&parts[0])),
                _ => {
                    let name = parts.pop().expect("at least two parts");
                    Ok(Node::qualified_column(&parts.join("."), &name))
                }
            }
        }
    }
}

fn binop(op: &str, left: Node, right: Node) -> Node {
    Node::new(NodeKind::BiExpr)
        .with_attr("op", op)
        .with_child(left)
        .with_child(right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Path;

    #[test]
    fn parses_listing2_olap_query() {
        let q = parse(
            "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 and Day = 3 GROUP BY DestState",
        )
        .unwrap();
        assert_eq!(q.kind(), NodeKind::Select);
        assert_eq!(q.arity(), 4);
        let agg = q.get(&"0/0/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(agg.kind(), NodeKind::AggCall);
        assert_eq!(agg.children()[0].kind(), NodeKind::FuncName);
        assert_eq!(agg.children()[0].attr_str("name"), Some("COUNT"));
        let and = q.get(&"2/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(and.attr_str("op"), Some("AND"));
    }

    #[test]
    fn parses_listing1_sdss_query() {
        let q = parse("SELECT * FROM SpecLineIndex WHERE specObjId = 0x400").unwrap();
        let pred = q.get(&"2/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(pred.attr_str("op"), Some("="));
        assert_eq!(pred.children()[1].kind(), NodeKind::HexExpr);
        assert_eq!(
            pred.children()[1].attr("value").unwrap().as_int(),
            Some(0x400)
        );
    }

    #[test]
    fn parses_listing6_top_and_udf() {
        let q = parse(
            "SELECT TOP 10 g.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) as d WHERE d.objID = g.objID",
        )
        .unwrap();
        // TOP becomes a trailing Limit node with style=top
        let last = q.children().last().unwrap();
        assert_eq!(last.kind(), NodeKind::Limit);
        assert_eq!(last.attr_str("style"), Some("top"));
        assert_eq!(last.children()[0].attr_num("value"), Some(10.0));
        // FROM has a table and a table function
        let from = q.get(&"1".parse::<Path>().unwrap()).unwrap();
        assert_eq!(from.arity(), 2);
        assert_eq!(from.children()[0].attr_str("alias"), Some("g"));
        assert_eq!(from.children()[1].kind(), NodeKind::TableFunc);
        assert_eq!(
            from.children()[1].attr_str("name"),
            Some("dbo.fGetNearbyObjEq")
        );
        // qualified columns
        let pred = q.get(&"2/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(pred.children()[0].attr_str("table"), Some("d"));
    }

    #[test]
    fn parses_listing7_subquery_in_from() {
        let q = parse("SELECT * FROM (SELECT a FROM T WHERE b > 10)").unwrap();
        let sub = q.get(&"1/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(sub.kind(), NodeKind::SubqueryRef);
        assert_eq!(sub.children()[0].kind(), NodeKind::Select);
    }

    #[test]
    fn parses_listing3_adhoc_case_and_floor() {
        let q = parse(
            "SELECT (CASE carrier WHEN 'AA' THEN 'AA' ELSE 'Other' END) AS carrier, FLOOR(distance/5) AS distance FROM ontime",
        )
        .unwrap();
        let case = q.get(&"0/0/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(case.kind(), NodeKind::CaseExpr);
        assert_eq!(case.attr_str("form"), Some("simple"));
        // operand + 1 when-arm + else
        assert_eq!(case.arity(), 3);
        let proj1 = q.get(&"0/1".parse::<Path>().unwrap()).unwrap();
        assert_eq!(proj1.attr_str("alias"), Some("distance"));
        assert_eq!(proj1.children()[0].kind(), NodeKind::FuncCall);
    }

    #[test]
    fn parses_listing2_having_and_sum() {
        let q = parse(
            "SELECT SUM(flights) FROM ontime WHERE canceled = 1 HAVING SUM(flights) > 149 and SUM(flights) < 1354",
        )
        .unwrap();
        let having = q
            .children()
            .iter()
            .find(|c| c.kind() == NodeKind::Having)
            .unwrap();
        assert_eq!(having.children()[0].attr_str("op"), Some("AND"));
    }

    #[test]
    fn parses_listing4_nested_subquery_with_params() {
        let q = parse(
            "SELECT spec_ts, sum(price) FROM (SELECT action, sum(customer) FROM t WHERE spec_ts > now and spec_ts < now + 3) WHERE cust = 'Alice' and country = 'China' GROUP BY spec_ts",
        )
        .unwrap();
        assert_eq!(q.arity(), 4);
        let inner = q.get(&"1/0/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(inner.kind(), NodeKind::Select);
        // the `now + 3` arithmetic lives inside the inner where clause
        let inner_where = inner
            .children()
            .iter()
            .find(|c| c.kind() == NodeKind::Where)
            .unwrap();
        assert!(inner_where.size() > 5);
    }

    #[test]
    fn parses_distinct_count_and_aliases() {
        let q = parse("SELECT COUNT(DISTINCT carrier) AS c FROM ontime").unwrap();
        let agg = q.get(&"0/0/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(agg.attr("distinct").and_then(|v| v.as_bool()), Some(true));
        let clause = q.get(&"0/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(clause.attr_str("alias"), Some("c"));
    }

    #[test]
    fn parses_in_between_like_not() {
        let q = parse(
            "SELECT * FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 5 AND 10 AND c LIKE 'x%' AND NOT d = 4 AND e NOT IN (7)",
        )
        .unwrap();
        let w = q.get(&"2/0".parse::<Path>().unwrap()).unwrap();
        // conjunction tree contains all five operators somewhere
        let mut ops = Vec::new();
        w.visit(&mut |n| {
            if let Some(op) = n.attr_str("op") {
                ops.push(op.to_string());
            }
        });
        for needle in ["IN", "BETWEEN", "LIKE", "NOT", "NOT IN"] {
            assert!(
                ops.iter().any(|o| o == needle),
                "missing {needle} in {ops:?}"
            );
        }
    }

    #[test]
    fn parses_is_null_and_order_by() {
        let q = parse("SELECT a FROM t WHERE b IS NOT NULL ORDER BY a DESC, c").unwrap();
        let ob = q
            .children()
            .iter()
            .find(|c| c.kind() == NodeKind::OrderBy)
            .unwrap();
        assert_eq!(ob.arity(), 2);
        assert_eq!(ob.children()[0].attr_str("dir"), Some("desc"));
        assert_eq!(ob.children()[1].attr_str("dir"), Some("asc"));
    }

    #[test]
    fn parses_explicit_join() {
        let q = parse("SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id").unwrap();
        let from = q.get(&"1".parse::<Path>().unwrap()).unwrap();
        assert_eq!(from.arity(), 1);
        let join = &from.children()[0];
        assert_eq!(join.kind(), NodeKind::Join);
        assert_eq!(join.attr_str("join_type"), Some("left"));
        assert_eq!(join.children()[0].kind(), NodeKind::Join);
    }

    #[test]
    fn parses_negative_numbers_and_arithmetic() {
        let q = parse("SELECT a + b * 2, -5, FLOOR(distance / 5) FROM t").unwrap();
        let neg = q.get(&"0/1/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(neg.attr("value").unwrap().as_int(), Some(-5));
        let sum = q.get(&"0/0/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(sum.attr_str("op"), Some("+"));
        // precedence: the right operand of + is the * expression
        assert_eq!(sum.children()[1].attr_str("op"), Some("*"));
    }

    #[test]
    fn parses_scalar_subquery_in_predicate() {
        let q = parse("SELECT a FROM t WHERE b > (SELECT MAX(b) FROM t)").unwrap();
        let pred = q.get(&"2/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(pred.children()[1].kind(), NodeKind::ScalarSubquery);
    }

    #[test]
    fn parse_matches_select_builder_output() {
        use pi_ast::builder::SelectBuilder;
        let parsed = parse(
            "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 AND Day = 3 GROUP BY DestState",
        )
        .unwrap();
        let built = SelectBuilder::new()
            .project_agg("COUNT", Node::column("Delay"))
            .project(Node::column("DestState"))
            .from_table("ontime")
            .where_pred(SelectBuilder::eq(Node::column("Month"), Node::int(9)))
            .where_pred(SelectBuilder::eq(Node::column("Day"), Node::int(3)))
            .group_by(Node::column("DestState"))
            .build();
        assert_eq!(parsed, built);
    }

    #[test]
    fn parse_log_splits_statements_and_reports_errors_individually() {
        let log = "SELECT a FROM t; SELECT b FROM; SELECT c FROM t;";
        let results = parse_log(log);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("SELECT a FROM t GROUP").is_err());
        assert!(parse("SELECT a FROM t) x").is_err());
        assert!(parse("FROM t").is_err());
    }

    #[test]
    fn parses_cast_without_target_type() {
        // Listing 3: SELECT CAST(uniquecarrier) AS uniquecarrier FROM ontime
        let q = parse("SELECT CAST(uniquecarrier) AS uniquecarrier FROM ontime").unwrap();
        let cast = q.get(&"0/0/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(cast.kind(), NodeKind::Cast);
        assert_eq!(cast.attr_str("ty"), Some("varchar"));
    }

    #[test]
    fn star_with_table_qualifier() {
        let q = parse("SELECT g.* FROM Galaxy g").unwrap();
        let star = q.get(&"0/0/0".parse::<Path>().unwrap()).unwrap();
        assert_eq!(star.kind(), NodeKind::Star);
        assert_eq!(star.attr_str("table"), Some("g"));
    }
}
