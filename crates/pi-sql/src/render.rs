//! AST → SQL rendering.
//!
//! The generated interface applies widget interactions by substituting subtrees in the current
//! query AST; to actually run the query (`exec()`) or show it to the user, the tree must be
//! turned back into SQL text.  The renderer guarantees a *parse round-trip*: for any tree `t`
//! produced by the parser or by [`pi_ast::builder::SelectBuilder`],
//! `parse(&render(&t)) == t`.

use pi_ast::{AttrValue, Node, NodeKind};
use std::fmt::Write as _;

/// Renders an AST as SQL text.
pub fn render(node: &Node) -> String {
    let mut out = String::new();
    render_node(node, &mut out);
    out
}

/// Renders an AST as SQL with all runs of whitespace collapsed (useful in test assertions).
pub fn render_compact(node: &Node) -> String {
    render(node)
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

fn render_node(node: &Node, out: &mut String) {
    match node.kind_ref() {
        NodeKind::Select => render_select(node, out),
        // Relation fragments (widget options at FROM paths, e.g. Listing 7's subquery
        // toggle) render as the SQL they stand for, not the generic `Kind(…)` notation —
        // the UI substitutes these fragments into real query text.
        NodeKind::TableRef | NodeKind::SubqueryRef | NodeKind::TableFunc | NodeKind::Join => {
            render_relation(node, out)
        }
        _ => render_expr(node, out),
    }
}

fn render_select(node: &Node, out: &mut String) {
    out.push_str("SELECT ");
    if node.attr("distinct").and_then(AttrValue::as_bool) == Some(true) {
        out.push_str("DISTINCT ");
    }

    // A TOP-style limit is rendered up front, a LIMIT-style one at the end.
    let limit = node
        .children()
        .iter()
        .find(|c| c.kind_ref() == &NodeKind::Limit);
    let top_style = limit
        .map(|l| l.attr_str("style") == Some("top"))
        .unwrap_or(false);
    if top_style {
        if let Some(l) = limit {
            out.push_str("TOP ");
            render_expr(&l.children()[0], out);
            out.push(' ');
        }
    }

    for clause in node.children() {
        match clause.kind_ref() {
            NodeKind::Project => {
                for (i, proj) in clause.children().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    render_proj_clause(proj, out);
                }
            }
            NodeKind::From if clause.arity() > 0 => {
                out.push_str(" FROM ");
                for (i, rel) in clause.children().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    render_relation(rel, out);
                }
            }
            NodeKind::Where => {
                out.push_str(" WHERE ");
                render_expr(&clause.children()[0], out);
            }
            NodeKind::GroupBy => {
                out.push_str(" GROUP BY ");
                for (i, g) in clause.children().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    render_expr(&g.children()[0], out);
                }
            }
            NodeKind::Having => {
                out.push_str(" HAVING ");
                render_expr(&clause.children()[0], out);
            }
            NodeKind::OrderBy => {
                out.push_str(" ORDER BY ");
                for (i, o) in clause.children().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    render_expr(&o.children()[0], out);
                    if o.attr_str("dir") == Some("desc") {
                        out.push_str(" DESC");
                    }
                }
            }
            NodeKind::Limit if !top_style => {
                out.push_str(" LIMIT ");
                render_expr(&clause.children()[0], out);
            }
            _ => {}
        }
    }
}

fn render_proj_clause(node: &Node, out: &mut String) {
    render_expr(&node.children()[0], out);
    if let Some(alias) = node.attr_str("alias") {
        let _ = write!(out, " AS {alias}");
    }
}

fn render_relation(node: &Node, out: &mut String) {
    match node.kind_ref() {
        NodeKind::TableRef => {
            out.push_str(node.attr_str("name").unwrap_or("?"));
            if let Some(alias) = node.attr_str("alias") {
                let _ = write!(out, " AS {alias}");
            }
        }
        NodeKind::SubqueryRef => {
            out.push('(');
            render_select(&node.children()[0], out);
            out.push(')');
            if let Some(alias) = node.attr_str("alias") {
                let _ = write!(out, " AS {alias}");
            }
        }
        NodeKind::TableFunc => {
            out.push_str(node.attr_str("name").unwrap_or("?"));
            out.push('(');
            for (i, arg) in node.children().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(arg, out);
            }
            out.push(')');
            if let Some(alias) = node.attr_str("alias") {
                let _ = write!(out, " AS {alias}");
            }
        }
        NodeKind::Join => {
            render_relation(&node.children()[0], out);
            let jt = match node.attr_str("join_type") {
                Some("left") => " LEFT JOIN ",
                Some("right") => " RIGHT JOIN ",
                _ => " JOIN ",
            };
            out.push_str(jt);
            render_relation(&node.children()[1], out);
            out.push_str(" ON ");
            render_expr(&node.children()[2], out);
        }
        // A bare Select (view expansion) may appear as a relation in hand-built trees.
        NodeKind::Select => {
            out.push('(');
            render_select(node, out);
            out.push(')');
        }
        _ => render_expr(node, out),
    }
}

/// True when an expression needs parentheses when used as an operand of another operator.
fn is_composite(node: &Node) -> bool {
    matches!(node.kind_ref(), NodeKind::BiExpr | NodeKind::UnExpr)
}

fn render_operand(node: &Node, out: &mut String) {
    if is_composite(node) {
        out.push('(');
        render_expr(node, out);
        out.push(')');
    } else {
        render_expr(node, out);
    }
}

fn render_expr(node: &Node, out: &mut String) {
    match node.kind_ref() {
        NodeKind::ColExpr => {
            if let Some(table) = node.attr_str("table") {
                let _ = write!(out, "{table}.");
            }
            out.push_str(node.attr_str("name").unwrap_or("?"));
        }
        NodeKind::StrExpr => {
            let value = node.attr_str("value").unwrap_or("");
            let _ = write!(out, "'{}'", value.replace('\'', "''"));
        }
        NodeKind::NumExpr => {
            match node.attr("value") {
                Some(AttrValue::Int(i)) => {
                    let _ = write!(out, "{i}");
                }
                Some(AttrValue::Float(f)) => {
                    let _ = write!(out, "{}", AttrValue::Float(*f).render());
                }
                other => {
                    let _ = write!(out, "{}", other.map(|v| v.render()).unwrap_or_default());
                }
            };
        }
        NodeKind::HexExpr => {
            let v = node.attr("value").and_then(AttrValue::as_int).unwrap_or(0);
            let _ = write!(out, "0x{v:x}");
        }
        NodeKind::BoolExpr => {
            let v = node.attr_str("value").unwrap_or("false");
            out.push_str(if v == "true" { "TRUE" } else { "FALSE" });
        }
        NodeKind::Null => out.push_str("NULL"),
        NodeKind::Star => {
            if let Some(table) = node.attr_str("table") {
                let _ = write!(out, "{table}.");
            }
            out.push('*');
        }
        NodeKind::BiExpr => {
            let op = node.attr_str("op").unwrap_or("=");
            let left = &node.children()[0];
            let right = &node.children()[1];
            match op {
                "IN" | "NOT IN" => {
                    render_operand(left, out);
                    let _ = write!(out, " {op} (");
                    render_expr_list(right, out, ", ");
                    out.push(')');
                }
                "BETWEEN" | "NOT BETWEEN" => {
                    render_operand(left, out);
                    let _ = write!(out, " {op} ");
                    render_expr_list(right, out, " AND ");
                }
                _ => {
                    render_operand(left, out);
                    let _ = write!(out, " {op} ");
                    render_operand(right, out);
                }
            }
        }
        NodeKind::UnExpr => {
            let op = node.attr_str("op").unwrap_or("NOT");
            let inner = &node.children()[0];
            match op {
                "IS NULL" | "IS NOT NULL" => {
                    render_operand(inner, out);
                    let _ = write!(out, " {op}");
                }
                "-" => {
                    out.push('-');
                    render_operand(inner, out);
                }
                _ => {
                    let _ = write!(out, "{op} ");
                    render_operand(inner, out);
                }
            }
        }
        NodeKind::AggCall | NodeKind::FuncCall => {
            // The name lives in a FuncName first child; fall back to a `name` attribute for
            // hand-built trees that use the older shape.
            let (name, args): (&str, &[Node]) = match node.children().first() {
                Some(first) if first.kind_ref() == &NodeKind::FuncName => {
                    (first.attr_str("name").unwrap_or("?"), &node.children()[1..])
                }
                _ => (node.attr_str("name").unwrap_or("?"), node.children()),
            };
            out.push_str(name);
            out.push('(');
            if node.attr("distinct").and_then(AttrValue::as_bool) == Some(true) {
                out.push_str("DISTINCT ");
            }
            for (i, arg) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(arg, out);
            }
            out.push(')');
        }
        NodeKind::FuncName => {
            out.push_str(node.attr_str("name").unwrap_or("?"));
        }
        NodeKind::Cast => {
            out.push_str("CAST(");
            render_expr(&node.children()[0], out);
            let _ = write!(out, " AS {}", node.attr_str("ty").unwrap_or("varchar"));
            out.push(')');
        }
        NodeKind::CaseExpr => {
            out.push_str("CASE");
            let simple = node.attr_str("form") == Some("simple");
            let mut children = node.children().iter();
            if simple {
                if let Some(operand) = children.next() {
                    out.push(' ');
                    render_expr(operand, out);
                }
            }
            for arm in children {
                match arm.kind_ref() {
                    NodeKind::WhenArm => {
                        out.push_str(" WHEN ");
                        render_expr(&arm.children()[0], out);
                        out.push_str(" THEN ");
                        render_expr(&arm.children()[1], out);
                    }
                    NodeKind::ElseArm => {
                        out.push_str(" ELSE ");
                        render_expr(&arm.children()[0], out);
                    }
                    _ => {}
                }
            }
            out.push_str(" END");
        }
        NodeKind::ScalarSubquery => {
            out.push('(');
            render_select(&node.children()[0], out);
            out.push(')');
        }
        NodeKind::ExprList => render_expr_list(node, out, ", "),
        NodeKind::Select => render_select(node, out),
        // Clause-level nodes rendered in expression position (e.g. diff display): recurse.
        other => {
            let _ = write!(out, "{}", other.name());
            if node.arity() > 0 {
                out.push('(');
                for (i, c) in node.children().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    render_expr(c, out);
                }
                out.push(')');
            }
        }
    }
}

fn render_expr_list(node: &Node, out: &mut String, sep: &str) {
    for (i, c) in node.children().iter().enumerate() {
        if i > 0 {
            out.push_str(sep);
        }
        render_expr(c, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// All of the paper's listings (1–7), plus extra shapes exercised by the test suite.
    pub(crate) const PAPER_QUERIES: &[&str] = &[
        // Listing 1
        "SELECT * FROM SpecLineIndex WHERE specObjId = 0x400",
        "SELECT * FROM XCRedshift WHERE specObjId = 0x199",
        // Listing 2
        "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 AND Day = 3 GROUP BY DestState",
        "SELECT DestState FROM ontime WHERE Month = 9 AND Day = 3 GROUP BY DestState",
        // Listing 3
        "SELECT CAST(uniquecarrier) AS uniquecarrier FROM ontime",
        "SELECT SUM(flights) FROM ontime WHERE canceled = 1 HAVING SUM(flights) > 149 AND SUM(flights) < 1354",
        "SELECT (CASE carrier WHEN 'AA' THEN 'AA' ELSE 'Other' END) AS carrier, FLOOR(distance/5) AS distance FROM ontime",
        // Listing 4
        "SELECT spec_ts, sum(price) FROM (SELECT action, sum(customer) FROM t WHERE spec_ts > now AND spec_ts < now + 3) WHERE cust = 'Alice' AND country = 'China' GROUP BY spec_ts",
        // Listing 5
        "SELECT avg(a)",
        "SELECT count(b)",
        // Listing 6
        "SELECT g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID",
        "SELECT TOP 10 g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID",
        // Listing 7
        "SELECT * FROM T",
        "SELECT * FROM (SELECT a FROM T WHERE b > 10)",
        // extras
        "SELECT DISTINCT carrier FROM ontime ORDER BY carrier DESC LIMIT 10",
        "SELECT a FROM t WHERE b IS NOT NULL AND c IN (1, 2, 3) AND d BETWEEN 0.5 AND 2.5",
        "SELECT * FROM a JOIN b ON a.id = b.id",
        "SELECT COUNT(DISTINCT carrier) AS c FROM ontime",
        "SELECT a FROM t WHERE NOT b = 1 OR c LIKE 'x%'",
        "SELECT g.* FROM Galaxy AS g WHERE z > -0.5",
    ];

    #[test]
    fn render_parses_back_to_the_same_tree() {
        for sql in PAPER_QUERIES {
            let t1 = parse(sql).unwrap_or_else(|e| panic!("parse {sql}: {e}"));
            let rendered = render(&t1);
            let t2 = parse(&rendered)
                .unwrap_or_else(|e| panic!("reparse of `{rendered}` (from `{sql}`): {e}"));
            assert_eq!(t1, t2, "round trip failed for `{sql}` -> `{rendered}`");
        }
    }

    #[test]
    fn render_is_idempotent_modulo_text() {
        for sql in PAPER_QUERIES {
            let t1 = parse(sql).unwrap();
            let r1 = render(&t1);
            let r2 = render(&parse(&r1).unwrap());
            assert_eq!(r1, r2);
        }
    }

    #[test]
    fn top_style_limit_renders_up_front() {
        let t = parse("SELECT TOP 5 a FROM t").unwrap();
        let sql = render(&t);
        assert!(sql.starts_with("SELECT TOP 5"), "{sql}");
        let t = parse("SELECT a FROM t LIMIT 5").unwrap();
        assert!(render(&t).ends_with("LIMIT 5"));
    }

    #[test]
    fn hex_literals_render_in_hex() {
        let t = parse("SELECT * FROM SpecLineIndex WHERE specObjId = 0x400").unwrap();
        assert!(render(&t).contains("0x400"));
    }

    #[test]
    fn strings_escape_quotes() {
        let t = parse("SELECT * FROM t WHERE name = 'O''Brien'").unwrap();
        assert!(render(&t).contains("'O''Brien'"));
    }

    #[test]
    fn compact_render_collapses_whitespace() {
        let t = parse("SELECT   a ,  b FROM   t").unwrap();
        assert_eq!(render_compact(&t), "SELECT a, b FROM t");
    }

    #[test]
    fn composite_operands_are_parenthesised() {
        let t = parse("SELECT a FROM t WHERE x = 1 AND y = 2 OR z = 3").unwrap();
        let sql = render(&t);
        // precedence must be preserved through the parentheses
        let t2 = parse(&sql).unwrap();
        assert_eq!(t, t2);
        assert!(sql.contains('('));
    }
}
