//! Parse errors with source positions.

use std::fmt;

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A character that cannot start any token.
    UnexpectedChar(char),
    /// A string literal that was never closed.
    UnterminatedString,
    /// A numeric literal that could not be interpreted.
    BadNumber(String),
    /// The parser found a token it did not expect.
    UnexpectedToken {
        /// What the parser found.
        found: String,
        /// What the parser expected, human readable.
        expected: String,
    },
    /// Input ended in the middle of a statement.
    UnexpectedEnd {
        /// What the parser expected next.
        expected: String,
    },
    /// Extra input after a complete statement.
    TrailingInput(String),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            ParseErrorKind::UnterminatedString => write!(f, "unterminated string literal"),
            ParseErrorKind::BadNumber(s) => write!(f, "malformed numeric literal `{s}`"),
            ParseErrorKind::UnexpectedToken { found, expected } => {
                write!(f, "unexpected token `{found}`, expected {expected}")
            }
            ParseErrorKind::UnexpectedEnd { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ParseErrorKind::TrailingInput(s) => write!(f, "trailing input starting at `{s}`"),
        }
    }
}

/// A parse error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The kind of error.
    pub kind: ParseErrorKind,
    /// Byte offset into the original SQL text.
    pub offset: usize,
}

impl ParseError {
    /// Creates a new error at the given offset.
    pub fn new(kind: ParseErrorKind, offset: usize) -> Self {
        ParseError { kind, offset }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.kind, self.offset)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_a_useful_message() {
        let e = ParseError::new(
            ParseErrorKind::UnexpectedToken {
                found: ")".into(),
                expected: "an expression".into(),
            },
            12,
        );
        let msg = e.to_string();
        assert!(msg.contains("unexpected token"));
        assert!(msg.contains("byte 12"));
    }

    #[test]
    fn all_kinds_have_distinct_messages() {
        let kinds = [
            ParseErrorKind::UnexpectedChar('!'),
            ParseErrorKind::UnterminatedString,
            ParseErrorKind::BadNumber("1.2.3".into()),
            ParseErrorKind::UnexpectedToken {
                found: "FROM".into(),
                expected: "identifier".into(),
            },
            ParseErrorKind::UnexpectedEnd {
                expected: "FROM".into(),
            },
            ParseErrorKind::TrailingInput("GROUP".into()),
        ];
        let msgs: std::collections::HashSet<String> = kinds.iter().map(|k| k.to_string()).collect();
        assert_eq!(msgs.len(), kinds.len());
    }
}
