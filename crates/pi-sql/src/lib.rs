//! # pi-sql — SQL front-end for Precision Interfaces
//!
//! The paper's prototype fed query logs through a third-party parsing service
//! (sqlparser.com) that returned XML parse trees.  This crate replaces that dependency with a
//! self-contained lexer, recursive-descent parser and SQL renderer that target the
//! [`pi_ast`] tree model directly.
//!
//! The supported dialect covers every query shape that appears in the paper's three logs:
//!
//! * SDSS sky-server queries (Listing 1/6): hex object ids, `TOP n`, table-valued UDFs such as
//!   `dbo.fGetNearbyObjEq(...)`, qualified columns, comma joins;
//! * the synthetic OLAP log (Listing 2): aggregates, `GROUP BY`, conjunctive predicates;
//! * the ad-hoc student log (Listing 3): `CAST`, `CASE … WHEN`, `FLOOR`, `HAVING`;
//! * the example logs of §7.1 (Listings 4, 5, 7): nested subqueries in `FROM`, string and
//!   numeric parameter changes.
//!
//! ```
//! use pi_sql::{parse, render};
//!
//! let q = parse("SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState")
//!     .unwrap();
//! let sql = render(&q);
//! assert!(sql.contains("GROUP BY DestState"));
//! // Round-trip: rendering and re-parsing yields an identical tree.
//! assert_eq!(parse(&sql).unwrap(), q);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod lexer;
mod parser;
mod render;

pub use error::{ParseError, ParseErrorKind};
pub use lexer::{Keyword, Lexer, Token, TokenKind};
pub use parser::{parse, parse_log, Parser};
pub use render::{render, render_compact};

/// Result alias for parser entry points.
pub type Result<T, E = ParseError> = std::result::Result<T, E>;
