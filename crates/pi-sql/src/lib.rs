//! # pi-sql — SQL front-end for Precision Interfaces
//!
//! The paper's prototype fed query logs through a third-party parsing service
//! (sqlparser.com) that returned XML parse trees.  This crate replaces that dependency with a
//! self-contained lexer, recursive-descent parser and SQL renderer that target the
//! [`pi_ast`] tree model directly.
//!
//! The supported dialect covers every query shape that appears in the paper's three logs:
//!
//! * SDSS sky-server queries (Listing 1/6): hex object ids, `TOP n`, table-valued UDFs such as
//!   `dbo.fGetNearbyObjEq(...)`, qualified columns, comma joins;
//! * the synthetic OLAP log (Listing 2): aggregates, `GROUP BY`, conjunctive predicates;
//! * the ad-hoc student log (Listing 3): `CAST`, `CASE … WHEN`, `FLOOR`, `HAVING`;
//! * the example logs of §7.1 (Listings 4, 5, 7): nested subqueries in `FROM`, string and
//!   numeric parameter changes.
//!
//! ```
//! use pi_sql::{parse, render};
//!
//! let q = parse("SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState")
//!     .unwrap();
//! let sql = render(&q);
//! assert!(sql.contains("GROUP BY DestState"));
//! // Round-trip: rendering and re-parsing yields an identical tree.
//! assert_eq!(parse(&sql).unwrap(), q);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod lexer;
mod parser;
mod render;

pub use error::{ParseError, ParseErrorKind};
pub use lexer::{Keyword, Lexer, Token, TokenKind};
pub use parser::{parse, parse_log, Parser};
pub use render::{render, render_compact};

use pi_ast::{Dialect, Frontend, FrontendError, Node};

/// Result alias for parser entry points.
pub type Result<T, E = ParseError> = std::result::Result<T, E>;

/// The SQL front-end, as a [`Frontend`] implementation ([`Dialect::SQL`]).
///
/// This is how the rest of the workspace reaches this crate: sessions, pipelines, UI
/// compilers and workload generators all go through the trait (or a
/// [`Frontends`](pi_ast::Frontends) registry holding it) rather than calling
/// [`parse`]/[`render`] directly, so a second front-end slots in without touching them.
///
/// ```
/// use pi_ast::Frontend;
/// use pi_sql::SqlFrontend;
///
/// let q = SqlFrontend.parse_one("SELECT a FROM t WHERE x = 1").unwrap();
/// assert_eq!(SqlFrontend.parse_one(&SqlFrontend.render(&q)).unwrap(), q);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SqlFrontend;

impl Frontend for SqlFrontend {
    fn dialect(&self) -> Dialect {
        Dialect::SQL
    }

    fn parse(&self, text: &str) -> std::result::Result<Vec<Node>, FrontendError> {
        parse_log(text)
            .into_iter()
            .map(|r| r.map_err(|e| FrontendError::new(Dialect::SQL, e.to_string())))
            .collect()
    }

    fn parse_statements(&self, text: &str) -> Vec<std::result::Result<Node, FrontendError>> {
        parse_log(text)
            .into_iter()
            .map(|r| r.map_err(|e| FrontendError::new(Dialect::SQL, e.to_string())))
            .collect()
    }

    fn parse_statements_lossy(
        &self,
        text: &str,
        out: &mut Vec<Node>,
        errors: &mut pi_ast::ErrorSample,
    ) -> usize {
        // Unlike the default (which routes through `parse_statements` and formats a
        // `FrontendError` per failure), this formats the message only when the sample will
        // actually retain it — on a garbage-heavy trace the steady state is a counter bump
        // per bad line.
        let mut skipped = 0;
        for result in parse_log(text) {
            match result {
                Ok(node) => out.push(node),
                Err(e) => {
                    skipped += 1;
                    errors.offer_with(|| FrontendError::new(Dialect::SQL, e.to_string()));
                }
            }
        }
        skipped
    }

    fn parse_one(&self, text: &str) -> std::result::Result<Node, FrontendError> {
        // The single-statement parser lexes the whole text, so `;` inside a string
        // literal stays part of the literal — unlike parse/parse_statements, whose
        // statement splitter is a lexical `;` split.
        parse(text).map_err(|e| FrontendError::new(Dialect::SQL, e.to_string()))
    }

    fn render(&self, node: &Node) -> String {
        render(node)
    }

    fn render_compact(&self, node: &Node) -> String {
        render_compact(node)
    }
}

#[cfg(test)]
mod frontend_tests {
    use super::*;

    #[test]
    fn frontend_routes_to_the_crate_entry_points() {
        assert_eq!(SqlFrontend.dialect(), Dialect::SQL);
        let sql = "SELECT a FROM t WHERE x = 1; SELECT a FROM t WHERE x = 2;";
        let all = SqlFrontend.parse(sql).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], parse("SELECT a FROM t WHERE x = 1").unwrap());
        assert_eq!(SqlFrontend.render(&all[0]), render(&all[0]));
        assert_eq!(SqlFrontend.render_compact(&all[0]), render_compact(&all[0]));
    }

    #[test]
    fn parse_one_keeps_semicolons_inside_string_literals() {
        // Regression: the default trait parse_one routed through the `;`-splitting
        // parse_log, so a literal containing `;` became unparseable through the trait
        // even though pi_sql::parse accepted it.
        let q = SqlFrontend
            .parse_one("SELECT a FROM t WHERE name = 'a;b'")
            .unwrap();
        assert_eq!(q, parse("SELECT a FROM t WHERE name = 'a;b'").unwrap());
        assert_eq!(SqlFrontend.parse_one(&SqlFrontend.render(&q)).unwrap(), q);
    }

    #[test]
    fn parse_is_all_or_nothing_but_statements_are_individual() {
        let sql = "SELECT a FROM t; NOT SQL; SELECT b FROM t;";
        assert!(SqlFrontend.parse(sql).is_err());
        let results = SqlFrontend.parse_statements(sql);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok() && results[1].is_err() && results[2].is_ok());
        let err = results[1].clone().unwrap_err();
        assert_eq!(err.dialect, Dialect::SQL);
    }
}
