//! SQL tokenizer.
//!
//! A small hand-rolled lexer that understands the token shapes present in the SDSS, OLAP and
//! ad-hoc logs: identifiers (optionally quoted with `"` or `[]`), keywords, string literals in
//! single quotes, integer / float / hexadecimal numbers, and the usual punctuation and
//! comparison operators.  Comments (`-- …` and `/* … */`) are skipped.

use crate::error::{ParseError, ParseErrorKind};

/// SQL keywords recognised by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    Distinct,
    Top,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Limit,
    Asc,
    Desc,
    As,
    And,
    Or,
    Not,
    In,
    Between,
    Like,
    Is,
    Null,
    True,
    False,
    Case,
    When,
    Then,
    Else,
    End,
    Cast,
    Join,
    Inner,
    Left,
    Right,
    Outer,
    On,
    Union,
    All,
}

impl Keyword {
    /// Looks up a keyword from an identifier, case-insensitively.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        let up = s.to_ascii_uppercase();
        Some(match up.as_str() {
            "SELECT" => Keyword::Select,
            "DISTINCT" => Keyword::Distinct,
            "TOP" => Keyword::Top,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            "HAVING" => Keyword::Having,
            "ORDER" => Keyword::Order,
            "LIMIT" => Keyword::Limit,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "AS" => Keyword::As,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "IN" => Keyword::In,
            "BETWEEN" => Keyword::Between,
            "LIKE" => Keyword::Like,
            "IS" => Keyword::Is,
            "NULL" => Keyword::Null,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "CASE" => Keyword::Case,
            "WHEN" => Keyword::When,
            "THEN" => Keyword::Then,
            "ELSE" => Keyword::Else,
            "END" => Keyword::End,
            "CAST" => Keyword::Cast,
            "JOIN" => Keyword::Join,
            "INNER" => Keyword::Inner,
            "LEFT" => Keyword::Left,
            "RIGHT" => Keyword::Right,
            "OUTER" => Keyword::Outer,
            "ON" => Keyword::On,
            "UNION" => Keyword::Union,
            "ALL" => Keyword::All,
            _ => return None,
        })
    }

    /// The canonical upper-case spelling of the keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            Keyword::Select => "SELECT",
            Keyword::Distinct => "DISTINCT",
            Keyword::Top => "TOP",
            Keyword::From => "FROM",
            Keyword::Where => "WHERE",
            Keyword::Group => "GROUP",
            Keyword::By => "BY",
            Keyword::Having => "HAVING",
            Keyword::Order => "ORDER",
            Keyword::Limit => "LIMIT",
            Keyword::Asc => "ASC",
            Keyword::Desc => "DESC",
            Keyword::As => "AS",
            Keyword::And => "AND",
            Keyword::Or => "OR",
            Keyword::Not => "NOT",
            Keyword::In => "IN",
            Keyword::Between => "BETWEEN",
            Keyword::Like => "LIKE",
            Keyword::Is => "IS",
            Keyword::Null => "NULL",
            Keyword::True => "TRUE",
            Keyword::False => "FALSE",
            Keyword::Case => "CASE",
            Keyword::When => "WHEN",
            Keyword::Then => "THEN",
            Keyword::Else => "ELSE",
            Keyword::End => "END",
            Keyword::Cast => "CAST",
            Keyword::Join => "JOIN",
            Keyword::Inner => "INNER",
            Keyword::Left => "LEFT",
            Keyword::Right => "RIGHT",
            Keyword::Outer => "OUTER",
            Keyword::On => "ON",
            Keyword::Union => "UNION",
            Keyword::All => "ALL",
        }
    }
}

/// The kind (and payload) of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A recognised SQL keyword.
    Keyword(Keyword),
    /// An identifier (table, column, function name).
    Ident(String),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    String(String),
    /// An integer literal.
    Int(i64),
    /// A floating point literal.
    Float(f64),
    /// A hexadecimal literal, e.g. `0x400`.
    Hex(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// An operator: `=`, `<>`, `!=`, `<`, `<=`, `>`, `>=`, `+`, `-`, `/`, `%`, `||`.
    Op(String),
}

impl TokenKind {
    /// A compact rendering used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Keyword(k) => k.as_str().to_string(),
            TokenKind::Ident(s) => s.clone(),
            TokenKind::String(s) => format!("'{s}'"),
            TokenKind::Int(i) => i.to_string(),
            TokenKind::Float(f) => f.to_string(),
            TokenKind::Hex(h) => format!("0x{h:x}"),
            TokenKind::LParen => "(".into(),
            TokenKind::RParen => ")".into(),
            TokenKind::Comma => ",".into(),
            TokenKind::Dot => ".".into(),
            TokenKind::Semicolon => ";".into(),
            TokenKind::Star => "*".into(),
            TokenKind::Op(o) => o.clone(),
        }
    }
}

/// A token together with its byte offset in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

/// The tokenizer.
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over the given SQL text.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenizes the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        while let Some(tok) = self.next_token()? {
            out.push(tok);
        }
        Ok(out)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'-') if self.peek_at(1) == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    self.pos += 2;
                    while self.pos < self.bytes.len() {
                        if self.peek() == Some(b'*') && self.peek_at(1) == Some(b'/') {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<Token>, ParseError> {
        self.skip_trivia();
        let start = self.pos;
        let Some(b) = self.peek() else {
            return Ok(None);
        };

        let kind = match b {
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b';' => {
                self.bump();
                TokenKind::Semicolon
            }
            b'.' if !self.peek_at(1).map(|c| c.is_ascii_digit()).unwrap_or(false) => {
                self.bump();
                TokenKind::Dot
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'\'' => self.lex_string(start)?,
            b'"' | b'[' => self.lex_quoted_ident(start)?,
            b'0'..=b'9' | b'.' => self.lex_number(start)?,
            b'=' => {
                self.bump();
                TokenKind::Op("=".into())
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::Op("<=".into())
                    }
                    Some(b'>') => {
                        self.bump();
                        TokenKind::Op("<>".into())
                    }
                    _ => TokenKind::Op("<".into()),
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Op(">=".into())
                } else {
                    TokenKind::Op(">".into())
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Op("!=".into())
                } else {
                    return Err(ParseError::new(ParseErrorKind::UnexpectedChar('!'), start));
                }
            }
            b'|' if self.peek_at(1) == Some(b'|') => {
                self.bump();
                self.bump();
                TokenKind::Op("||".into())
            }
            b'+' | b'-' | b'/' | b'%' => {
                self.bump();
                TokenKind::Op((b as char).to_string())
            }
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.lex_ident(start),
            other => {
                return Err(ParseError::new(
                    ParseErrorKind::UnexpectedChar(other as char),
                    start,
                ))
            }
        };

        Ok(Some(Token {
            kind,
            offset: start,
        }))
    }

    fn lex_ident(&mut self, start: usize) -> TokenKind {
        while let Some(b) = self.peek() {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        match Keyword::from_ident(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_string()),
        }
    }

    fn lex_quoted_ident(&mut self, start: usize) -> Result<TokenKind, ParseError> {
        let open = self.bump().expect("caller checked");
        let close = if open == b'[' { b']' } else { open };
        let ident_start = self.pos;
        while let Some(b) = self.peek() {
            if b == close {
                let text = self.src[ident_start..self.pos].to_string();
                self.pos += 1;
                return Ok(TokenKind::Ident(text));
            }
            self.pos += 1;
        }
        Err(ParseError::new(ParseErrorKind::UnterminatedString, start))
    }

    fn lex_string(&mut self, start: usize) -> Result<TokenKind, ParseError> {
        self.bump(); // opening quote
                     // Bytes are collected raw and decoded once at the end: string literals carry
                     // arbitrary UTF-8, and pushing bytes cast to chars would mangle every multibyte
                     // character.  The byte scan itself is boundary-safe — the quote byte 0x27 never
                     // occurs inside a multibyte UTF-8 sequence.
        let mut value = Vec::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    // doubled quote escapes a single quote
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        value.push(b'\'');
                    } else {
                        let value = String::from_utf8(value)
                            .expect("literal bytes are a substring of valid UTF-8 input");
                        return Ok(TokenKind::String(value));
                    }
                }
                Some(b) => value.push(b),
                None => return Err(ParseError::new(ParseErrorKind::UnterminatedString, start)),
            }
        }
    }

    fn lex_number(&mut self, start: usize) -> Result<TokenKind, ParseError> {
        // Hexadecimal: 0x.... (used for SDSS object ids)
        if self.peek() == Some(b'0')
            && matches!(self.peek_at(1), Some(b'x') | Some(b'X'))
            && self
                .peek_at(2)
                .map(|c| c.is_ascii_hexdigit())
                .unwrap_or(false)
        {
            self.pos += 2;
            let hstart = self.pos;
            while let Some(b) = self.peek() {
                if b.is_ascii_hexdigit() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text = &self.src[hstart..self.pos];
            let value = i64::from_str_radix(text, 16)
                .map_err(|_| ParseError::new(ParseErrorKind::BadNumber(text.to_string()), start))?;
            return Ok(TokenKind::Hex(value));
        }

        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !saw_dot && !saw_exp => {
                    saw_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        if saw_dot || saw_exp {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| ParseError::new(ParseErrorKind::BadNumber(text.to_string()), start))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| ParseError::new(ParseErrorKind::BadNumber(text.to_string()), start))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        Lexer::new(sql)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn string_literals_carry_arbitrary_utf8() {
        // Regression: bytes were cast to chars one at a time, mangling `café` into `cafÃ©`
        // — which silently broke cross-dialect tree identity with the frames front-end.
        assert_eq!(
            kinds("'café' 'снег — ☃' 'O''Brien'"),
            vec![
                TokenKind::String("café".into()),
                TokenKind::String("снег — ☃".into()),
                TokenKind::String("O'Brien".into()),
            ]
        );
    }

    #[test]
    fn lexes_keywords_case_insensitively() {
        let toks = kinds("select FROM wHeRe");
        assert_eq!(
            toks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Keyword(Keyword::Where),
            ]
        );
    }

    #[test]
    fn lexes_identifiers_and_punctuation() {
        let toks = kinds("ontime.DestState, g");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("ontime".into()),
                TokenKind::Dot,
                TokenKind::Ident("DestState".into()),
                TokenKind::Comma,
                TokenKind::Ident("g".into()),
            ]
        );
    }

    #[test]
    fn lexes_numbers_hex_and_floats() {
        let toks = kinds("42 5.848 0x400 1e3");
        assert_eq!(
            toks,
            vec![
                TokenKind::Int(42),
                TokenKind::Float(5.848),
                TokenKind::Hex(0x400),
                TokenKind::Float(1000.0),
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let toks = kinds("'USA' 'O''Brien'");
        assert_eq!(
            toks,
            vec![
                TokenKind::String("USA".into()),
                TokenKind::String("O'Brien".into()),
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let toks = kinds("= <> != <= >= < > + - / %");
        let ops: Vec<String> = toks
            .into_iter()
            .map(|t| match t {
                TokenKind::Op(o) => o,
                other => panic!("not an op: {other:?}"),
            })
            .collect();
        assert_eq!(
            ops,
            vec!["=", "<>", "!=", "<=", ">=", "<", ">", "+", "-", "/", "%"]
        );
    }

    #[test]
    fn skips_comments() {
        let toks = kinds("SELECT -- the projection\n a /* block */ FROM t");
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn quoted_identifiers() {
        let toks = kinds("\"Dest State\" [Delay Minutes]");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("Dest State".into()),
                TokenKind::Ident("Delay Minutes".into()),
            ]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Lexer::new("SELECT ?").tokenize().unwrap_err();
        assert_eq!(err.offset, 7);
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedChar('?')));
        let err = Lexer::new("'oops").tokenize().unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnterminatedString));
    }

    #[test]
    fn star_and_semicolon() {
        let toks = kinds("SELECT * FROM t;");
        assert_eq!(toks[1], TokenKind::Star);
        assert_eq!(*toks.last().unwrap(), TokenKind::Semicolon);
    }

    #[test]
    fn leading_dot_number() {
        // ".5" style literals
        let toks = kinds("SELECT .5");
        assert_eq!(toks[1], TokenKind::Float(0.5));
    }
}
