//! Multi-tenant interface serving: many users' query streams mined into live precision
//! interfaces behind one HTTP service.
//!
//! The rest of the workspace answers *"given a query log, what interface does it imply?"*
//! (Zhang & Wu's mining pipeline).  This crate answers the production follow-up: *"given a
//! firehose of many tenants' query logs, keep every tenant's interface current and serve
//! it on demand"* — the shape a real deployment takes when interface mining sits behind an
//! analytics product rather than a batch script.
//!
//! Three layers, bottom-up:
//!
//! - [`pool`] — a [`SessionPool`] mapping `(user_id, thread_id)` to an
//!   owned streaming [`Session`](pi_core::Session) behind sharded locks, with bounded
//!   per-tenant ingest queues (full queue ⇒ explicit backpressure, never a blocked
//!   acceptor), capacity-bounded residency with LRU eviction, and byte-identical replay
//!   rehydration when an evicted tenant returns.
//! - [`wire`] — the tolerant `LogItem` JSON ingest format, modelled on what production
//!   query-log pipelines actually emit.
//! - [`http`] — a dependency-free HTTP/1.1 front end (`POST /logs`, `GET
//!   /interfaces/{user}/{thread}`, `GET /healthz`, `GET /stats`) with keep-alive, a
//!   thread-pool acceptor and graceful drain-and-flush shutdown.
//!
//! Like the rest of the workspace this crate is std-only: the HTTP layer is hand-rolled on
//! `TcpListener` rather than pulled from a framework, which keeps the build offline and the
//! surface auditable.  [`client`] provides the minimal loopback HTTP client the tests,
//! examples and the serving benchmark's load generator drive it with.
//!
//! ```no_run
//! use pi_server::{Server, ServerOptions};
//!
//! let server = Server::bind("127.0.0.1:0", ServerOptions::default())?;
//! println!("serving interfaces on http://{}", server.addr());
//! // POST /logs, then GET /interfaces/{user}/{thread} …
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
#[cfg(any(test, feature = "faults"))]
pub mod faults;
pub mod http;
pub mod journal;
pub mod pool;
pub mod wire;

pub use http::{Server, ServerOptions};
pub use journal::{DurabilityOptions, JournalStats};
pub use pool::{EnqueueError, PoolGauge, PoolOptions, SessionPool, GAUGE_ERROR_SAMPLES};
pub use wire::{decode_batch, encode_batch, DecodedBatch, LogItem};
