//! Deterministic fault injection for the durability layer.
//!
//! Compiled only under `cfg(test)` or the `faults` feature, this module gives the
//! crash-recovery suite seeded, repeatable control over every failure mode the journal and
//! supervisor must survive:
//!
//! * **I/O errors** at the n-th occurrence of a named operation (journal append, journal
//!   fsync, spill write) — the journal must fail the batch *before* acking, never after;
//! * **crash-at-point**: at the n-th occurrence of an operation the "process dies" — the
//!   plan flips to a crashed state in which every subsequent durable operation fails, and
//!   [`crate::pool::SessionPool::simulate_crash`] then discards all volatile state plus
//!   every journal byte past the fsync watermark (modelling lost page cache), optionally
//!   leaving a **torn tail** of `torn_keep` extra bytes (modelling a partial sector
//!   flush at an arbitrary byte offset);
//! * **forced worker panics**: any statement containing the panic marker panics inside
//!   the mining apply path, exercising the supervisor's catch/quarantine/rebuild cycle.
//!
//! A [`FaultPlan`] is immutable after construction and counts operation hits with
//! atomics, so a multi-worker pool hits injection points in a deterministic *count* even
//! when thread interleaving varies; the crash-recovery property test derives every plan
//! from a proptest seed.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Operations the durability layer routes through a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Appending a record frame to the active journal segment.
    JournalAppend,
    /// Fsyncing the active journal segment (group commit or segment seal).
    JournalSync,
    /// Writing a tenant spill snapshot (eviction, checkpoint, close).
    SpillWrite,
}

const N_OPS: usize = 3;

impl FaultOp {
    fn index(self) -> usize {
        match self {
            FaultOp::JournalAppend => 0,
            FaultOp::JournalSync => 1,
            FaultOp::SpillWrite => 2,
        }
    }
}

/// A deterministic schedule of injected failures; see the module docs.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// `(op, nth)` pairs: the nth hit (1-based) of `op` fails with an injected I/O error.
    io_errors: Vec<(FaultOp, u64)>,
    /// The hit at which the simulated process dies; after it fires, every durable
    /// operation fails until the harness rebuilds the pool.
    crash_at: Option<(FaultOp, u64)>,
    /// Unsynced bytes the simulated crash leaves behind on the active segment — the torn
    /// tail recovery must detect and discard.
    torn_keep: u64,
    /// Statements containing this marker panic inside the apply path.
    panic_marker: Option<String>,
    hits: [AtomicU64; N_OPS],
    crashed: AtomicBool,
    panics_fired: AtomicU64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base for builder calls).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Fails the `nth` (1-based) occurrence of `op` with an injected I/O error.
    pub fn with_io_error(mut self, op: FaultOp, nth: u64) -> Self {
        self.io_errors.push((op, nth));
        self
    }

    /// Simulates a process crash at the `nth` (1-based) occurrence of `op`.
    pub fn with_crash(mut self, op: FaultOp, nth: u64) -> Self {
        self.crash_at = Some((op, nth));
        self
    }

    /// Leaves `bytes` of unsynced tail on the active journal segment when the crash is
    /// simulated (a torn write at an arbitrary byte offset).
    pub fn with_torn_keep(mut self, bytes: u64) -> Self {
        self.torn_keep = bytes;
        self
    }

    /// Makes every statement containing `marker` panic inside the mining apply path.
    pub fn with_panic_marker(mut self, marker: impl Into<String>) -> Self {
        self.panic_marker = Some(marker.into());
        self
    }

    /// Registers one occurrence of `op`, returning the injected failure if the schedule
    /// names this hit.  After a crash fires, every call fails.
    pub fn hit(&self, op: FaultOp) -> io::Result<()> {
        if self.crashed.load(Ordering::SeqCst) {
            return Err(io::Error::other("injected fault: process crashed"));
        }
        let count = self.hits[op.index()].fetch_add(1, Ordering::SeqCst) + 1;
        if let Some((crash_op, nth)) = self.crash_at {
            if crash_op == op && count == nth {
                self.crashed.store(true, Ordering::SeqCst);
                return Err(io::Error::other(format!(
                    "injected fault: crash at {op:?} #{count}"
                )));
            }
        }
        if self.io_errors.iter().any(|&(o, n)| o == op && n == count) {
            return Err(io::Error::other(format!(
                "injected fault: io error at {op:?} #{count}"
            )));
        }
        Ok(())
    }

    /// Panics iff the plan's marker appears in `statement` (the forced-worker-panic hook;
    /// the supervisor must catch it, quarantine the statement and rebuild the session).
    pub fn check_statement(&self, statement: &str) {
        if let Some(marker) = &self.panic_marker {
            if statement.contains(marker.as_str()) {
                self.panics_fired.fetch_add(1, Ordering::SeqCst);
                panic!("injected fault: poisoned statement: {statement}");
            }
        }
    }

    /// Whether the simulated crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// The torn-tail byte count the simulated crash leaves behind.
    pub fn torn_keep(&self) -> u64 {
        self.torn_keep
    }

    /// How many times the given operation has been hit.
    pub fn hit_count(&self, op: FaultOp) -> u64 {
        self.hits[op.index()].load(Ordering::SeqCst)
    }

    /// How many injected statement panics have fired.
    pub fn panics_fired(&self) -> u64 {
        self.panics_fired.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_fire_at_exact_hit_counts_and_crashes_stick() {
        let plan = FaultPlan::new()
            .with_io_error(FaultOp::SpillWrite, 2)
            .with_crash(FaultOp::JournalSync, 3)
            .with_torn_keep(17);
        assert!(plan.hit(FaultOp::SpillWrite).is_ok());
        assert!(plan.hit(FaultOp::SpillWrite).is_err());
        assert!(plan.hit(FaultOp::SpillWrite).is_ok());
        assert!(plan.hit(FaultOp::JournalSync).is_ok());
        assert!(plan.hit(FaultOp::JournalSync).is_ok());
        assert!(!plan.crashed());
        assert!(plan.hit(FaultOp::JournalSync).is_err());
        assert!(plan.crashed());
        // Everything fails once the process is "dead" — including other ops.
        assert!(plan.hit(FaultOp::JournalAppend).is_err());
        assert!(plan.hit(FaultOp::SpillWrite).is_err());
        assert_eq!(plan.torn_keep(), 17);
    }

    #[test]
    fn panic_marker_panics_only_on_matching_statements() {
        let plan = FaultPlan::new().with_panic_marker("POISON");
        plan.check_statement("SELECT a FROM t");
        assert_eq!(plan.panics_fired(), 0);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let caught = std::panic::catch_unwind(|| plan.check_statement("SELECT POISON FROM t"));
        std::panic::set_hook(prev);
        assert!(caught.is_err());
        assert_eq!(plan.panics_fired(), 1);
    }
}
