//! The [`SessionPool`]: many tenants' mining sessions behind sharded locks, with bounded
//! ingest queues, LRU eviction, and replay rehydration.
//!
//! ## Layout
//!
//! Tenants key by `(user_id, thread_id)` and hash to one of `shards` independent
//! [`Mutex`]-guarded maps, so concurrent tenants contend only when they collide on a shard
//! — never on one global lock.  The shard lock guards only *membership* (map, LRU stamps,
//! the archive of evicted tenants); each resident tenant carries its own `Mutex` around
//! its [`Session`], queue and history, so applying one tenant's mining work never holds a
//! shard lock.  Lock order is always shard → tenant, and every queue mutation happens with
//! the shard lock held, which is what makes eviction race-free: once a tenant leaves the
//! map, nothing can append to it.
//!
//! ## Backpressure
//!
//! [`SessionPool::enqueue`] appends statements to the tenant's bounded queue and returns
//! immediately — mining runs on the pool's worker threads, so an HTTP acceptor calling it
//! never blocks on tree alignment.  A full queue *rejects* the batch ([`EnqueueError`],
//! which the HTTP layer turns into `429` + `Retry-After`) instead of blocking: under
//! overload the server sheds load explicitly rather than stalling every connection behind
//! the slowest tenant.
//!
//! ## Eviction and rehydration
//!
//! The pool holds at most `capacity` resident sessions.  Inserting into a full shard
//! evicts the shard's least-recently-used tenant: its pending queue is applied, its full
//! mining state is **persisted to a versioned binary snapshot**
//! ([`Session::persist`]) and archived together with its *history* — the raw tagged
//! statement texts it ingested, in order — and the session (graph, memo, widgets) is
//! dropped.  When the tenant returns, the pool **restores the snapshot** — a
//! deserialization pass over distinct state, milliseconds where re-mining a long history
//! takes seconds — and the restored session continues exactly where it stood, warm memo
//! included.  The history is the *fallback*: if the snapshot fails integrity checks the
//! pool replays the history through a fresh session via the normal worker path.  Either
//! way the rehydrated session is **byte-identical** to one that was never evicted — same
//! versions, same graph, same skip counts (property-tested in `tests/`); only accumulated
//! wall-clock timings differ.
//!
//! With a *spill directory* ([`SessionPool::with_spill`], wired to
//! `ServerOptions::spill_dir`), eviction snapshots are also written to disk, so a tenant
//! returning after a **process restart** rehydrates from its spill file instead of
//! starting empty — persistence across the pool's own lifetime, not just across evictions.

use crate::wire::LogItem;
use pi_core::{GeneratedInterface, PiOptions, Session};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A tenant identity: `(user_id, thread_id)`.
pub type TenantId = (String, String);

/// Configuration of a [`SessionPool`].
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Maximum resident sessions, divided evenly across shards (each shard holds at most
    /// `ceil(capacity / shards)` tenants; eviction is LRU *within* the insert's shard).
    pub capacity: usize,
    /// Number of independently locked shards.  One shard makes LRU order global and
    /// deterministic (useful in tests); production pools want enough shards that
    /// concurrent tenants rarely collide.
    pub shards: usize,
    /// Per-tenant ingest queue bound, in statements.  A batch that would overflow it is
    /// rejected whole.
    pub queue_depth: usize,
    /// Background worker threads applying queued statements to sessions.
    pub workers: usize,
    /// The mining options every tenant session runs with.
    pub session: PiOptions,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            capacity: 1024,
            shards: 16,
            queue_depth: 256,
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
            session: PiOptions::default(),
        }
    }
}

/// Why a batch was not enqueued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnqueueError {
    /// The tenant's queue cannot take the batch; retry after the suggested seconds.
    QueueFull {
        /// Statements currently queued for the tenant.
        queued: usize,
        /// The queue bound the batch would have overflowed.
        depth: usize,
    },
    /// The pool is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnqueueError::QueueFull { queued, depth } => {
                write!(f, "tenant queue full ({queued}/{depth} statements)")
            }
            EnqueueError::ShuttingDown => write!(f, "pool is shutting down"),
        }
    }
}

impl std::error::Error for EnqueueError {}

/// A point-in-time gauge of the pool, served by `GET /stats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolGauge {
    /// Resident sessions.
    pub occupancy: usize,
    /// Evicted tenants whose history waits in the archive.
    pub archived: usize,
    /// Statements queued but not yet applied, across all tenants.
    pub queued: usize,
    /// Queries ingested (applied) across resident sessions.
    pub queries: usize,
    /// Unparseable statements skipped across resident sessions.
    pub skipped: usize,
    /// Lifetime evictions.
    pub evictions: u64,
    /// Lifetime rehydrations (evicted tenants that returned).
    pub rehydrations: u64,
    /// Lifetime statements accepted by `enqueue`.
    pub accepted: u64,
    /// Lifetime batches rejected for backpressure.
    pub rejected_batches: u64,
    /// Accumulated parse time across resident sessions, milliseconds.
    pub parse_ms: f64,
    /// Accumulated mining time across resident sessions, milliseconds.
    pub mining_ms: f64,
    /// Accumulated mapping time across resident sessions, milliseconds.
    pub mapping_ms: f64,
    /// A bounded sample of recent parse failures across resident sessions (each session
    /// keeps its own capped [`pi_ast::ErrorSample`]; the gauge takes the first
    /// [`GAUGE_ERROR_SAMPLES`] it encounters).  `skipped` has the full count — this is
    /// the *what*, not the *how many*.
    pub parse_error_samples: Vec<String>,
    /// Bytes of versioned binary snapshots currently held for evicted tenants (the
    /// in-memory archive; spill files on disk are not counted).
    pub snapshot_bytes: usize,
    /// Lifetime evictions archived with a binary snapshot.
    pub snapshot_archives: u64,
    /// Lifetime evictions archived with raw history only (snapshot persist failed).
    pub replay_archives: u64,
    /// Lifetime rehydrations served by deserializing a snapshot (archive or spill file).
    pub snapshot_rehydrations: u64,
    /// Lifetime rehydrations served by replaying raw history through a fresh session.
    pub replay_rehydrations: u64,
    /// Accumulated wall-clock spent persisting eviction snapshots, milliseconds.
    pub persist_ms: f64,
    /// Accumulated wall-clock spent restoring sessions from snapshots, milliseconds.
    pub restore_ms: f64,
}

/// How many parse-failure samples a [`PoolGauge`] carries at most — enough for an
/// operator squinting at `/stats` to recognise the garbage's shape, small enough that a
/// garbage flood cannot bloat the endpoint.
pub const GAUGE_ERROR_SAMPLES: usize = 8;

struct TenantInner {
    session: Session,
    /// Raw tagged statement texts applied so far, in order — the rehydration source.
    /// `Arc`-shared with the wire decoder's batch and the archive, so the history costs
    /// two words per statement, not a copy of its text.
    history: Vec<(pi_ast::Dialect, Arc<str>)>,
    /// Statements accepted but not yet applied.
    queue: VecDeque<(pi_ast::Dialect, Arc<str>)>,
    /// How many queued entries are an eviction replay (exempt from the queue bound —
    /// rehydration must never be rejected for being larger than one ingest burst).
    replaying: usize,
    /// Whether the tenant currently sits in the dispatch queue.
    dispatched: bool,
}

struct Tenant {
    key: TenantId,
    inner: Mutex<TenantInner>,
}

impl Tenant {
    /// Applies every queued statement to the session, recording it into the history.
    /// Called with the tenant lock held (and never the shard lock — mining is the slow
    /// part, and membership must stay available while it runs).
    ///
    /// The backlog goes through [`Session::push_stream_tagged`] — the trace-scale ingest
    /// path — so a large drain (an eviction replay of a long history, a burst behind a
    /// slow worker) mines in bounded chunks and repeated statements hit the session's
    /// parse cache instead of re-parsing; streaming is fold-identical to per-fragment
    /// pushes (property-tested), so rehydration stays byte-identical.
    fn apply_pending(inner: &mut TenantInner) -> usize {
        let applied = inner.queue.len();
        if applied == 0 {
            return 0;
        }
        inner.replaying = inner.replaying.saturating_sub(applied);
        let start = inner.history.len();
        inner.history.reserve(applied);
        inner.history.extend(inner.queue.drain(..));
        inner
            .session
            .push_stream_tagged(inner.history[start..].iter().map(|(d, t)| (*d, &**t)));
        applied
    }
}

struct Resident {
    tenant: Arc<Tenant>,
    last_used: u64,
}

/// What the shard keeps for an evicted tenant.
struct ArchiveEntry {
    /// The evicted session's versioned binary snapshot — the fast rehydration path.
    /// `None` when persist failed (I/O is infallible into a `Vec`, so in practice this
    /// only happens if a future snapshot precondition is violated).
    snapshot: Option<Vec<u8>>,
    /// The raw tagged statement history, in order — the replay fallback when the snapshot
    /// fails integrity checks, and the history the rehydrated tenant keeps extending.
    /// Moving it in and out of the archive moves `Arc` handles; text is never copied.
    history: Vec<(pi_ast::Dialect, Arc<str>)>,
}

#[derive(Default)]
struct Shard {
    tenants: HashMap<TenantId, Resident>,
    /// Evicted tenants' snapshots and histories, awaiting rehydration if they return.
    archive: HashMap<TenantId, ArchiveEntry>,
    /// LRU clock: bumps on every touch; the resident with the smallest stamp is evicted.
    clock: u64,
}

/// A multi-tenant pool of mining [`Session`]s; see the module docs for the layout.
pub struct SessionPool {
    opts: PoolOptions,
    shards: Vec<Mutex<Shard>>,
    /// Tenants with pending queue items, awaiting a worker.
    dispatch: Mutex<VecDeque<TenantId>>,
    dispatch_cv: Condvar,
    shutdown: AtomicBool,
    workers: Mutex<Vec<JoinHandle<()>>>,
    default_dialect: pi_ast::Dialect,
    known_dialects: Vec<pi_ast::Dialect>,
    /// Eviction snapshots are mirrored here as spill files, and tenants unknown to every
    /// shard are probed here before being treated as new — restart rehydration.
    spill_dir: Option<PathBuf>,
    evictions: AtomicU64,
    rehydrations: AtomicU64,
    accepted: AtomicU64,
    rejected_batches: AtomicU64,
    snapshot_archives: AtomicU64,
    replay_archives: AtomicU64,
    snapshot_rehydrations: AtomicU64,
    replay_rehydrations: AtomicU64,
    /// Wall-clock totals in microseconds (atomics can't add floats; the gauge divides).
    persist_us: AtomicU64,
    restore_us: AtomicU64,
    /// Bytes of snapshots currently archived, maintained at archive insert/remove.
    snapshot_bytes: AtomicUsize,
}

impl SessionPool {
    /// Builds a pool and spawns its ingest workers; no spill directory — eviction
    /// snapshots live in memory only and die with the pool.
    pub fn new(opts: PoolOptions) -> Arc<SessionPool> {
        SessionPool::with_spill(opts, None)
    }

    /// Builds a pool whose eviction snapshots are also mirrored into `spill_dir`, so
    /// tenants survive a process restart: a pool opened over the same directory restores
    /// any spilled tenant's full mining state on first touch instead of starting empty.
    ///
    /// Spilling is best-effort — the directory is created if missing, unwritable files
    /// degrade silently to the in-memory archive (which preserves all single-process
    /// guarantees), and a spill file whose integrity check fails on read is ignored.
    pub fn with_spill(opts: PoolOptions, spill_dir: Option<PathBuf>) -> Arc<SessionPool> {
        if let Some(dir) = &spill_dir {
            let _ = std::fs::create_dir_all(dir);
        }
        let shards = opts.shards.max(1);
        let workers = opts.workers.max(1);
        // Sessions share one standard registry; probe it once rather than per request.
        let probe = Session::new(opts.session.clone());
        let default_dialect = probe.default_dialect();
        let known_dialects = probe.frontends().dialects();
        let pool = Arc::new(SessionPool {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            dispatch: Mutex::new(VecDeque::new()),
            dispatch_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            evictions: AtomicU64::new(0),
            rehydrations: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected_batches: AtomicU64::new(0),
            snapshot_archives: AtomicU64::new(0),
            replay_archives: AtomicU64::new(0),
            snapshot_rehydrations: AtomicU64::new(0),
            replay_rehydrations: AtomicU64::new(0),
            persist_us: AtomicU64::new(0),
            restore_us: AtomicU64::new(0),
            snapshot_bytes: AtomicUsize::new(0),
            default_dialect,
            known_dialects,
            spill_dir,
            opts,
        });
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("pi-pool-worker-{i}"))
                    .spawn(move || pool.worker_loop())
                    .expect("spawn pool worker")
            })
            .collect();
        *pool.workers.lock().unwrap() = handles;
        pool
    }

    /// The options this pool runs with.
    pub fn options(&self) -> &PoolOptions {
        &self.opts
    }

    /// The default dialect untagged ingest text is attributed to (the session registry's
    /// first front-end).
    pub fn default_dialect(&self) -> pi_ast::Dialect {
        self.default_dialect
    }

    /// The dialects the tenant sessions can parse.
    pub fn known_dialects(&self) -> &[pi_ast::Dialect] {
        &self.known_dialects
    }

    /// Enqueues one decoded [`LogItem`] for its tenant.  Returns the number of statements
    /// accepted; never blocks on mining.
    pub fn enqueue(&self, item: &LogItem) -> Result<usize, EnqueueError> {
        self.enqueue_tagged(
            &item.user_id,
            &item.thread_id,
            item.queries.iter().map(|(d, t)| (*d, Arc::clone(t))),
        )
    }

    /// Enqueues tagged statement texts for a tenant; see [`SessionPool::enqueue`].
    ///
    /// All-or-nothing per batch: either every statement fits under the queue bound or the
    /// whole batch is rejected — partial ingest would silently reorder a tenant's log when
    /// the client retries the remainder.
    ///
    /// Statements arriving as `Arc<str>` (the wire decoder's shape) are enqueued by
    /// refcount bump; `&str` callers pay the one owning allocation here and never again —
    /// the queue, the history and any eviction replay all share it.
    pub fn enqueue_tagged<I, S>(
        &self,
        user_id: &str,
        thread_id: &str,
        statements: I,
    ) -> Result<usize, EnqueueError>
    where
        I: IntoIterator<Item = (pi_ast::Dialect, S)>,
        S: Into<Arc<str>>,
    {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(EnqueueError::ShuttingDown);
        }
        let statements: Vec<(pi_ast::Dialect, Arc<str>)> =
            statements.into_iter().map(|(d, s)| (d, s.into())).collect();
        let key: TenantId = (user_id.to_string(), thread_id.to_string());
        let shard = &self.shards[self.shard_of(&key)];
        let mut guard = shard.lock().unwrap();
        let tenant = self.resident(&mut guard, &key);
        let accepted = {
            let mut inner = tenant.inner.lock().unwrap();
            // Replay backlog is exempt from the bound; only genuinely new statements count.
            let backlog = inner.queue.len() - inner.replaying;
            if backlog + statements.len() > self.opts.queue_depth {
                self.rejected_batches.fetch_add(1, Ordering::Relaxed);
                return Err(EnqueueError::QueueFull {
                    queued: inner.queue.len(),
                    depth: self.opts.queue_depth,
                });
            }
            let accepted = statements.len();
            inner.queue.extend(statements);
            self.mark_dispatched(&tenant, &mut inner);
            accepted
        };
        drop(guard);
        self.accepted.fetch_add(accepted as u64, Ordering::Relaxed);
        Ok(accepted)
    }

    /// Serves the tenant's current interface snapshot, or `None` for a tenant the pool has
    /// never seen.
    ///
    /// Read-your-writes: any statements still queued for the tenant are applied inline
    /// before the snapshot, so a client that ingested and immediately fetched sees its own
    /// queries.  An evicted tenant rehydrates transparently (its full history replays
    /// first).
    pub fn snapshot(&self, user_id: &str, thread_id: &str) -> Option<GeneratedInterface> {
        let key: TenantId = (user_id.to_string(), thread_id.to_string());
        let shard = &self.shards[self.shard_of(&key)];
        let mut guard = shard.lock().unwrap();
        let known = guard.tenants.contains_key(&key)
            || guard.archive.contains_key(&key)
            || self.has_spill(&key);
        if !known {
            return None;
        }
        let tenant = self.resident(&mut guard, &key);
        drop(guard);
        let mut inner = tenant.inner.lock().unwrap();
        Tenant::apply_pending(&mut inner);
        Some(inner.session.snapshot())
    }

    /// Applies every queued statement for one tenant without snapshotting.  Used by tests
    /// and the graceful-shutdown drain; returns how many statements were applied, or
    /// `None` for an unknown tenant.
    pub fn flush(&self, user_id: &str, thread_id: &str) -> Option<usize> {
        let key: TenantId = (user_id.to_string(), thread_id.to_string());
        let shard = &self.shards[self.shard_of(&key)];
        let guard = shard.lock().unwrap();
        let tenant = Arc::clone(&guard.tenants.get(&key)?.tenant);
        drop(guard);
        let mut inner = tenant.inner.lock().unwrap();
        Some(Tenant::apply_pending(&mut inner))
    }

    /// A point-in-time gauge across every shard (locks each shard and tenant briefly).
    pub fn gauge(&self) -> PoolGauge {
        let mut gauge = PoolGauge {
            evictions: self.evictions.load(Ordering::Relaxed),
            rehydrations: self.rehydrations.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_batches: self.rejected_batches.load(Ordering::Relaxed),
            snapshot_bytes: self.snapshot_bytes.load(Ordering::Relaxed),
            snapshot_archives: self.snapshot_archives.load(Ordering::Relaxed),
            replay_archives: self.replay_archives.load(Ordering::Relaxed),
            snapshot_rehydrations: self.snapshot_rehydrations.load(Ordering::Relaxed),
            replay_rehydrations: self.replay_rehydrations.load(Ordering::Relaxed),
            persist_ms: self.persist_us.load(Ordering::Relaxed) as f64 / 1e3,
            restore_ms: self.restore_us.load(Ordering::Relaxed) as f64 / 1e3,
            ..PoolGauge::default()
        };
        for shard in &self.shards {
            let guard = shard.lock().unwrap();
            gauge.occupancy += guard.tenants.len();
            gauge.archived += guard.archive.len();
            for resident in guard.tenants.values() {
                let inner = resident.tenant.inner.lock().unwrap();
                gauge.queued += inner.queue.len();
                gauge.queries += inner.session.len();
                gauge.skipped += inner.session.skipped();
                let timings = inner.session.timings();
                gauge.parse_ms += timings.parse_ms;
                gauge.mining_ms += timings.mining_ms;
                gauge.mapping_ms += timings.mapping_ms;
                for error in inner.session.parse_errors().entries() {
                    if gauge.parse_error_samples.len() >= GAUGE_ERROR_SAMPLES {
                        break;
                    }
                    gauge.parse_error_samples.push(error.to_string());
                }
            }
        }
        gauge
    }

    /// Graceful shutdown: stop accepting, join the workers, then drain every remaining
    /// queue and flush a final snapshot per resident session (so the last mapped interface
    /// and final timings are materialised before the pool drops).  With a spill directory,
    /// every non-empty resident session is also persisted to disk, so a pool reopened over
    /// the same directory rehydrates *all* tenants — not just the previously evicted ones.
    /// Idempotent.
    pub fn close(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.dispatch_cv.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
        for shard in &self.shards {
            let tenants: Vec<Arc<Tenant>> = {
                let guard = shard.lock().unwrap();
                guard
                    .tenants
                    .values()
                    .map(|r| Arc::clone(&r.tenant))
                    .collect()
            };
            for tenant in tenants {
                let mut inner = tenant.inner.lock().unwrap();
                Tenant::apply_pending(&mut inner);
                if !inner.session.is_empty() {
                    inner.session.snapshot();
                    if self.spill_dir.is_some() {
                        let start = Instant::now();
                        if let Ok(bytes) = inner.session.persist_to_vec() {
                            self.persist_us
                                .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
                            self.write_spill(&tenant.key, &bytes);
                        }
                    }
                }
            }
        }
    }

    fn shard_of(&self, key: &TenantId) -> usize {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Looks up (or creates / rehydrates) the resident tenant for `key`, touching its LRU
    /// stamp.  Called with the shard lock held; may evict the shard's LRU tenant.
    fn resident(&self, shard: &mut Shard, key: &TenantId) -> Arc<Tenant> {
        shard.clock += 1;
        let stamp = shard.clock;
        if let Some(resident) = shard.tenants.get_mut(key) {
            resident.last_used = stamp;
            return Arc::clone(&resident.tenant);
        }
        // A shard holds its even share of the pool-wide capacity.
        let shard_cap = self.opts.capacity.div_ceil(self.shards.len()).max(1);
        if shard.tenants.len() >= shard_cap {
            self.evict_lru(shard);
        }
        // Rehydration.  Preferred path: deserialize the eviction snapshot — milliseconds,
        // state byte-identical, memo warm.  Fallback: preload the archived history as a
        // replay queue; the normal worker path re-applies it, rebuilding the same session
        // by re-mining.  A tenant in neither the map nor the archive may still have a
        // spill file from a previous process — restart rehydration, same restore path.
        let archived = shard.archive.remove(key);
        let spilled = if archived.is_none() {
            self.read_spill(key).map(|bytes| ArchiveEntry {
                snapshot: Some(bytes),
                history: Vec::new(),
            })
        } else {
            None
        };
        let entry = match archived {
            Some(entry) => {
                if let Some(snapshot) = &entry.snapshot {
                    self.snapshot_bytes
                        .fetch_sub(snapshot.len(), Ordering::Relaxed);
                }
                Some(entry)
            }
            None => spilled,
        };
        let (session, history, queue, replaying) = match entry {
            None => (
                Session::new(self.opts.session.clone()),
                Vec::new(),
                VecDeque::new(),
                0,
            ),
            Some(entry) => {
                self.rehydrations.fetch_add(1, Ordering::Relaxed);
                let restored = entry.snapshot.as_deref().and_then(|bytes| {
                    let start = Instant::now();
                    let session =
                        Session::restore_with(&mut &*bytes, self.opts.session.clone()).ok()?;
                    self.restore_us
                        .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
                    Some(session)
                });
                match restored {
                    Some(session) => {
                        // Snapshot restore: the session already holds everything the
                        // history would replay; the history rides along as the fallback
                        // for the tenant's *next* eviction.
                        self.snapshot_rehydrations.fetch_add(1, Ordering::Relaxed);
                        let _ = self.remove_spill(key);
                        (session, entry.history, VecDeque::new(), 0)
                    }
                    None => {
                        // Corrupt or absent snapshot: replay the history through a fresh
                        // session via the worker path.
                        self.replay_rehydrations.fetch_add(1, Ordering::Relaxed);
                        let _ = self.remove_spill(key);
                        let replaying = entry.history.len();
                        (
                            Session::new(self.opts.session.clone()),
                            Vec::new(),
                            entry.history.into(),
                            replaying,
                        )
                    }
                }
            }
        };
        let tenant = Arc::new(Tenant {
            key: key.clone(),
            inner: Mutex::new(TenantInner {
                session,
                history,
                queue,
                replaying,
                dispatched: false,
            }),
        });
        {
            let mut inner = tenant.inner.lock().unwrap();
            self.mark_dispatched(&tenant, &mut inner);
        }
        shard.tenants.insert(
            key.clone(),
            Resident {
                tenant: Arc::clone(&tenant),
                last_used: stamp,
            },
        );
        tenant
    }

    /// Evicts the least-recently-used tenant of a shard: applies its pending statements,
    /// archives its history, drops its session.  Called with the shard lock held.
    fn evict_lru(&self, shard: &mut Shard) {
        let Some(victim_key) = shard
            .tenants
            .iter()
            .min_by_key(|(_, r)| r.last_used)
            .map(|(k, _)| k.clone())
        else {
            return;
        };
        let resident = shard.tenants.remove(&victim_key).expect("victim resident");
        let mut inner = resident.tenant.inner.lock().unwrap();
        // Apply the backlog so the archived state covers everything accepted so far.
        // This runs under the shard lock — eviction is rare and the backlog small, and it
        // must be atomic with removal or a late worker would apply to an orphaned session.
        Tenant::apply_pending(&mut inner);
        // Persist the full mining state: rehydration deserializes this in milliseconds
        // instead of re-mining the history.  The raw history is archived alongside as the
        // integrity fallback.
        let start = Instant::now();
        let snapshot = inner.session.persist_to_vec().ok();
        self.persist_us
            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        let history = std::mem::take(&mut inner.history);
        drop(inner);
        match &snapshot {
            Some(bytes) => {
                self.snapshot_archives.fetch_add(1, Ordering::Relaxed);
                self.snapshot_bytes
                    .fetch_add(bytes.len(), Ordering::Relaxed);
                self.write_spill(&victim_key, bytes);
            }
            None => {
                self.replay_archives.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard
            .archive
            .insert(victim_key, ArchiveEntry { snapshot, history });
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// The spill file for a tenant, when spilling is enabled.  Named by the key's hash;
    /// the file's own header carries the exact key, so a hash collision reads as a miss
    /// for the other tenant rather than serving it foreign state.
    fn spill_path(&self, key: &TenantId) -> Option<PathBuf> {
        let dir = self.spill_dir.as_ref()?;
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        Some(dir.join(format!("tenant-{:016x}.pisnap", hasher.finish())))
    }

    /// True when a spill file exists for this tenant (cheap existence probe; integrity is
    /// checked at read time).
    fn has_spill(&self, key: &TenantId) -> bool {
        self.spill_path(key).is_some_and(|p| p.exists())
    }

    /// Best-effort spill write: `[user_len][user][thread_len][thread][session snapshot]`,
    /// via a temp file + rename so readers never observe a half-written spill.
    fn write_spill(&self, key: &TenantId, snapshot: &[u8]) {
        let Some(path) = self.spill_path(key) else {
            return;
        };
        let mut buf = Vec::with_capacity(key.0.len() + key.1.len() + snapshot.len() + 8);
        for part in [&key.0, &key.1] {
            buf.extend_from_slice(&(part.len() as u32).to_le_bytes());
            buf.extend_from_slice(part.as_bytes());
        }
        buf.extend_from_slice(snapshot);
        let tmp = path.with_extension("pisnap.tmp");
        if std::fs::write(&tmp, &buf).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }

    /// Reads this tenant's spill file, returning the embedded session snapshot — `None`
    /// on absence, malformed framing, or a key mismatch (hash collision).
    fn read_spill(&self, key: &TenantId) -> Option<Vec<u8>> {
        let path = self.spill_path(key)?;
        let data = std::fs::read(path).ok()?;
        let mut at = 0usize;
        for expected in [&key.0, &key.1] {
            let len_bytes: [u8; 4] = data.get(at..at + 4)?.try_into().ok()?;
            let len = u32::from_le_bytes(len_bytes) as usize;
            at += 4;
            if data.get(at..at + len)? != expected.as_bytes() {
                return None;
            }
            at += len;
        }
        Some(data[at..].to_vec())
    }

    /// Removes this tenant's spill file (after rehydration consumed it).
    fn remove_spill(&self, key: &TenantId) -> std::io::Result<()> {
        match self.spill_path(key) {
            Some(path) => std::fs::remove_file(path),
            None => Ok(()),
        }
    }

    /// Adds the tenant to the dispatch queue if it is not already there.  Called with the
    /// tenant lock held.
    fn mark_dispatched(&self, tenant: &Arc<Tenant>, inner: &mut TenantInner) {
        if !inner.dispatched && !inner.queue.is_empty() {
            inner.dispatched = true;
            self.dispatch.lock().unwrap().push_back(tenant.key.clone());
            self.dispatch_cv.notify_one();
        }
    }

    fn worker_loop(&self) {
        loop {
            let key = {
                let mut queue = self.dispatch.lock().unwrap();
                loop {
                    if let Some(key) = queue.pop_front() {
                        break key;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = self.dispatch_cv.wait(queue).unwrap();
                }
            };
            let shard = &self.shards[self.shard_of(&key)];
            let tenant = {
                let guard = shard.lock().unwrap();
                // Evicted (or already drained) while queued for dispatch: eviction applied
                // its backlog itself, so there is nothing left to do.
                match guard.tenants.get(&key) {
                    Some(resident) => Arc::clone(&resident.tenant),
                    None => continue,
                }
            };
            let mut inner = tenant.inner.lock().unwrap();
            inner.dispatched = false;
            Tenant::apply_pending(&mut inner);
        }
    }
}

impl Drop for SessionPool {
    fn drop(&mut self) {
        // Workers hold an Arc each, so by the time the last Arc drops they have exited;
        // this path matters only for pools closed without `close()` — make it safe anyway.
        self.shutdown.store(true, Ordering::SeqCst);
        self.dispatch_cv.notify_all();
    }
}

impl std::fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPool")
            .field("shards", &self.shards.len())
            .field("capacity", &self.opts.capacity)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Dialect;

    fn pool(capacity: usize, shards: usize, queue_depth: usize) -> Arc<SessionPool> {
        SessionPool::new(PoolOptions {
            capacity,
            shards,
            queue_depth,
            workers: 2,
            session: PiOptions::default(),
        })
    }

    fn sql(i: usize) -> String {
        format!("SELECT a FROM t WHERE x = {i}")
    }

    #[test]
    fn enqueue_then_snapshot_reads_your_writes() {
        let pool = pool(8, 2, 64);
        for i in 0..4 {
            pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(i).as_str())])
                .unwrap();
        }
        let snap = pool.snapshot("ada", "t1").expect("tenant exists");
        assert_eq!(snap.version, 4);
        assert_eq!(snap.interface.widgets().len(), 1);
        assert!(pool.snapshot("ada", "missing").is_none());
        pool.close();
    }

    #[test]
    fn tenants_are_isolated() {
        let pool = pool(8, 4, 64);
        pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(1).as_str())])
            .unwrap();
        pool.enqueue_tagged(
            "ada",
            "t2",
            [
                (Dialect::SQL, sql(2).as_str()),
                (Dialect::SQL, sql(3).as_str()),
            ],
        )
        .unwrap();
        pool.enqueue_tagged(
            "bob",
            "t1",
            [(Dialect::FRAMES, "t.filter(x == 9).select(a)")],
        )
        .unwrap();
        assert_eq!(pool.snapshot("ada", "t1").unwrap().version, 1);
        assert_eq!(pool.snapshot("ada", "t2").unwrap().version, 2);
        let bob = pool.snapshot("bob", "t1").unwrap();
        assert_eq!(bob.version, 1);
        assert_eq!(bob.dialects, vec![Dialect::FRAMES]);
        pool.close();
    }

    #[test]
    fn full_queues_reject_whole_batches() {
        let pool = pool(4, 1, 3);
        // Stall application by never snapshotting and filling faster than workers drain:
        // use a tenant the workers cannot outpace deterministically — flush-free check on
        // the *bound*, not the race: a batch larger than the bound always rejects.
        let batch: Vec<(Dialect, String)> = (0..4).map(|i| (Dialect::SQL, sql(i))).collect();
        let err = pool
            .enqueue_tagged("ada", "t1", batch.iter().map(|(d, t)| (*d, t.as_str())))
            .unwrap_err();
        assert!(matches!(err, EnqueueError::QueueFull { depth: 3, .. }));
        assert_eq!(pool.gauge().rejected_batches, 1);
        // Smaller batches still flow.
        pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(0).as_str())])
            .unwrap();
        assert_eq!(pool.snapshot("ada", "t1").unwrap().version, 1);
        pool.close();
    }

    #[test]
    fn eviction_archives_and_rehydration_replays_byte_identically() {
        // Capacity 2, one shard: touching a third tenant evicts the LRU.
        let pool = pool(2, 1, 64);
        let texts: Vec<String> = (0..6).map(sql).collect();
        for text in &texts {
            pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, text.as_str())])
                .unwrap();
        }
        let before = pool.snapshot("ada", "t1").unwrap();
        // Bring in two more tenants; ada/t1 becomes LRU and is evicted.
        pool.enqueue_tagged("bob", "t1", [(Dialect::SQL, sql(0).as_str())])
            .unwrap();
        pool.flush("bob", "t1");
        pool.enqueue_tagged("cyd", "t1", [(Dialect::SQL, sql(1).as_str())])
            .unwrap();
        pool.flush("cyd", "t1");
        assert!(pool.gauge().evictions >= 1);
        // The returning tenant rehydrates to a byte-identical snapshot.
        let after = pool.snapshot("ada", "t1").unwrap();
        assert!(pool.gauge().rehydrations >= 1);
        assert_eq!(after.version, before.version);
        assert_eq!(after.graph, before.graph);
        assert_eq!(after.graph_stats, before.graph_stats);
        assert_eq!(after.dialects, before.dialects);
        assert_eq!(after.skipped, before.skipped);
        assert_eq!(after.interface.describe(), before.interface.describe());
        // …and keeps ingesting from where it left off.
        pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(7).as_str())])
            .unwrap();
        assert_eq!(
            pool.snapshot("ada", "t1").unwrap().version,
            before.version + 1
        );
        pool.close();
    }

    #[test]
    fn eviction_archives_a_snapshot_and_rehydration_restores_it() {
        let pool = pool(2, 1, 64);
        for i in 0..5 {
            pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(i).as_str())])
                .unwrap();
        }
        let before = pool.snapshot("ada", "t1").unwrap();
        // Force ada/t1 out of its seat.
        pool.enqueue_tagged("bob", "t1", [(Dialect::SQL, sql(0).as_str())])
            .unwrap();
        pool.flush("bob", "t1");
        pool.enqueue_tagged("cyd", "t1", [(Dialect::SQL, sql(1).as_str())])
            .unwrap();
        pool.flush("cyd", "t1");
        let evicted = pool.gauge();
        assert!(evicted.snapshot_archives >= 1, "eviction must persist");
        assert_eq!(evicted.replay_archives, 0);
        assert!(evicted.snapshot_bytes > 0, "archive holds snapshot bytes");
        assert!(evicted.persist_ms >= 0.0);
        // The return trip deserializes the snapshot — no replay.
        let after = pool.snapshot("ada", "t1").unwrap();
        assert_eq!(after.version, before.version);
        assert_eq!(after.graph, before.graph);
        assert_eq!(after.interface.describe(), before.interface.describe());
        let rehydrated = pool.gauge();
        assert!(rehydrated.snapshot_rehydrations >= 1);
        assert_eq!(rehydrated.replay_rehydrations, 0);
        // The consumed snapshot left the archive; its bytes are no longer held.
        assert!(rehydrated.snapshot_bytes < evicted.snapshot_bytes || evicted.snapshot_bytes == 0);
        pool.close();
    }

    #[test]
    fn spill_directory_rehydrates_across_pool_restarts() {
        let dir = std::env::temp_dir().join(format!(
            "pi-pool-spill-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = PoolOptions {
            capacity: 4,
            shards: 1,
            queue_depth: 64,
            workers: 1,
            session: PiOptions::default(),
        };
        // First process lifetime: ingest, then close (which spills residents).
        let first = SessionPool::with_spill(opts.clone(), Some(dir.clone()));
        for i in 0..4 {
            first
                .enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(i).as_str())])
                .unwrap();
        }
        let before = first.snapshot("ada", "t1").unwrap();
        first.close();
        drop(first);
        // Second lifetime over the same directory: the tenant's full state is back.
        let second = SessionPool::with_spill(opts.clone(), Some(dir.clone()));
        let after = second
            .snapshot("ada", "t1")
            .expect("spilled tenant is known after restart");
        assert_eq!(after.version, before.version);
        assert_eq!(after.graph, before.graph);
        assert_eq!(after.interface.describe(), before.interface.describe());
        assert!(second.gauge().snapshot_rehydrations >= 1);
        // …and keeps ingesting from where it left off.
        second
            .enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(9).as_str())])
            .unwrap();
        assert_eq!(
            second.snapshot("ada", "t1").unwrap().version,
            before.version + 1
        );
        second.close();
        // A pool without spill does not know the tenant.
        let cold = SessionPool::new(opts);
        assert!(cold.snapshot("ada", "t1").is_none());
        cold.close();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spill_files_fall_back_cleanly() {
        let dir = std::env::temp_dir().join(format!(
            "pi-pool-corrupt-spill-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = PoolOptions {
            capacity: 4,
            shards: 1,
            queue_depth: 64,
            workers: 1,
            session: PiOptions::default(),
        };
        let first = SessionPool::with_spill(opts.clone(), Some(dir.clone()));
        first
            .enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(1).as_str())])
            .unwrap();
        first.snapshot("ada", "t1").unwrap();
        first.close();
        drop(first);
        // Flip a byte in the middle of every spill file: the checksum must reject it and
        // the tenant reads as unknown (no state to fall back on across a restart), never
        // a panic or a silently wrong session.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&path, bytes).unwrap();
        }
        let second = SessionPool::with_spill(opts, Some(dir.clone()));
        // Restore fails integrity; with no archived history the pool treats the tenant as
        // new — a fresh, empty session (replay-kind rehydration).
        let snap = second.snapshot("ada", "t1").expect("spill file exists");
        assert_eq!(snap.version, 0);
        assert!(second.gauge().replay_rehydrations >= 1);
        second.close();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_statements_skip_and_count() {
        let pool = pool(4, 1, 64);
        pool.enqueue_tagged(
            "ada",
            "t1",
            [
                (Dialect::SQL, sql(1).as_str()),
                (Dialect::SQL, "THIS IS NOT SQL"),
                (crate::wire::UNRECOGNIZED_DIALECT, "SELECT ?s WHERE { }"),
            ],
        )
        .unwrap();
        let snap = pool.snapshot("ada", "t1").unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.skipped, 2);
        let gauge = pool.gauge();
        assert_eq!(gauge.skipped, 2);
        // The gauge carries what was skipped, not just how much: one sample per failure
        // here (both under the per-session cap), each naming its dialect.
        assert_eq!(gauge.parse_error_samples.len(), 2);
        assert!(gauge.parse_error_samples[0].contains("sql"));
        assert!(gauge.parse_error_samples[1].contains("unrecognized"));
        pool.close();
    }

    #[test]
    fn gauge_error_samples_stay_bounded_under_a_garbage_flood() {
        let pool = pool(4, 1, 1024);
        let garbage: Vec<(Dialect, String)> = (0..200)
            .map(|i| (Dialect::SQL, format!("%% not sql #{i} %%")))
            .collect();
        pool.enqueue_tagged("ada", "t1", garbage.iter().map(|(d, t)| (*d, t.as_str())))
            .unwrap();
        pool.flush("ada", "t1");
        let gauge = pool.gauge();
        assert_eq!(gauge.skipped, 200);
        assert!(!gauge.parse_error_samples.is_empty());
        assert!(gauge.parse_error_samples.len() <= GAUGE_ERROR_SAMPLES);
        pool.close();
    }

    #[test]
    fn gauge_tracks_occupancy_and_counters() {
        let pool = pool(8, 2, 64);
        pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(1).as_str())])
            .unwrap();
        pool.enqueue_tagged("bob", "t1", [(Dialect::SQL, sql(2).as_str())])
            .unwrap();
        pool.flush("ada", "t1");
        pool.flush("bob", "t1");
        let gauge = pool.gauge();
        assert_eq!(gauge.occupancy, 2);
        assert_eq!(gauge.accepted, 2);
        assert_eq!(gauge.queries, 2);
        assert_eq!(gauge.queued, 0);
        assert!(gauge.mining_ms >= 0.0);
        pool.close();
    }

    #[test]
    fn close_drains_queues_and_rejects_new_work() {
        let pool = pool(4, 1, 64);
        pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(1).as_str())])
            .unwrap();
        pool.close();
        assert_eq!(
            pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(2).as_str())]),
            Err(EnqueueError::ShuttingDown)
        );
        // The drained session kept the pre-shutdown statement.
        assert_eq!(pool.gauge().queries, 1);
        // close() is idempotent.
        pool.close();
    }

    #[test]
    fn workers_apply_in_the_background() {
        let pool = pool(4, 1, 1024);
        for i in 0..32 {
            pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(i).as_str())])
                .unwrap();
        }
        // Wait for the background workers (bounded, no sleep-forever).
        for _ in 0..200 {
            if pool.gauge().queued == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(pool.gauge().queued, 0);
        assert_eq!(pool.gauge().queries, 32);
        pool.close();
    }
}
