//! The [`SessionPool`]: many tenants' mining sessions behind sharded locks, with bounded
//! ingest queues, LRU eviction, and replay rehydration.
//!
//! ## Layout
//!
//! Tenants key by `(user_id, thread_id)` and hash to one of `shards` independent
//! [`Mutex`]-guarded maps, so concurrent tenants contend only when they collide on a shard
//! — never on one global lock.  The shard lock guards only *membership* (map, LRU stamps,
//! the archive of evicted tenants); each resident tenant carries its own `Mutex` around
//! its [`Session`], queue and history, so applying one tenant's mining work never holds a
//! shard lock.  Lock order is always shard → tenant, and every queue mutation happens with
//! the shard lock held, which is what makes eviction race-free: once a tenant leaves the
//! map, nothing can append to it.
//!
//! ## Backpressure
//!
//! [`SessionPool::enqueue`] appends statements to the tenant's bounded queue and returns
//! immediately — mining runs on the pool's worker threads, so an HTTP acceptor calling it
//! never blocks on tree alignment.  A full queue *rejects* the batch ([`EnqueueError`],
//! which the HTTP layer turns into `429` + `Retry-After`) instead of blocking: under
//! overload the server sheds load explicitly rather than stalling every connection behind
//! the slowest tenant.
//!
//! ## Eviction and rehydration
//!
//! The pool holds at most `capacity` resident sessions.  Inserting into a full shard
//! evicts the shard's least-recently-used tenant: its pending queue is applied, its full
//! mining state is **persisted to a versioned binary snapshot**
//! ([`Session::persist`]) and archived together with its *history* — the raw tagged
//! statement texts it ingested, in order — and the session (graph, memo, widgets) is
//! dropped.  When the tenant returns, the pool **restores the snapshot** — a
//! deserialization pass over distinct state, milliseconds where re-mining a long history
//! takes seconds — and the restored session continues exactly where it stood, warm memo
//! included.  The history is the *fallback*: if the snapshot fails integrity checks the
//! pool replays the history through a fresh session via the normal worker path.  Either
//! way the rehydrated session is **byte-identical** to one that was never evicted — same
//! versions, same graph, same skip counts (property-tested in `tests/`); only accumulated
//! wall-clock timings differ.
//!
//! With a *spill directory* ([`SessionPool::with_spill`], wired to
//! `ServerOptions::spill_dir`), eviction snapshots are also written to disk, so a tenant
//! returning after a **process restart** rehydrates from its spill file instead of
//! starting empty — persistence across the pool's own lifetime, not just across evictions.

use crate::journal::{DurabilityOptions, Journal, JournalStats, RecoveredLog};
use crate::wire::LogItem;
use pi_core::{GeneratedInterface, PiOptions, Session};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

#[cfg(any(test, feature = "faults"))]
use crate::faults::{FaultOp, FaultPlan};

/// A tenant identity: `(user_id, thread_id)`.
pub type TenantId = (String, String);

/// Configuration of a [`SessionPool`].
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Maximum resident sessions, divided evenly across shards (each shard holds at most
    /// `ceil(capacity / shards)` tenants; eviction is LRU *within* the insert's shard).
    pub capacity: usize,
    /// Number of independently locked shards.  One shard makes LRU order global and
    /// deterministic (useful in tests); production pools want enough shards that
    /// concurrent tenants rarely collide.
    pub shards: usize,
    /// Per-tenant ingest queue bound, in statements.  A batch that would overflow it is
    /// rejected whole.
    pub queue_depth: usize,
    /// Background worker threads applying queued statements to sessions.
    pub workers: usize,
    /// The mining options every tenant session runs with.
    pub session: PiOptions,
    /// Crash safety: a write-ahead journal + checkpoint configuration.  `None` (the
    /// default) keeps the pre-journal behaviour — spill snapshots only, written at
    /// eviction and close.  `Some` makes every acknowledged batch durable *before* the
    /// ack and replays the journal tail on the next open.  When set and no explicit
    /// spill directory is given, spill snapshots share the journal directory.
    pub durability: Option<DurabilityOptions>,
    /// Pool-wide queued-statement count above which readiness reports unready (the HTTP
    /// layer then sheds load with `503 + Retry-After` instead of letting the apply
    /// backlog grow without bound).  `None` disables the high-water check.
    pub ready_high_water: Option<usize>,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            capacity: 1024,
            shards: 16,
            queue_depth: 256,
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
            session: PiOptions::default(),
            durability: None,
            ready_high_water: None,
        }
    }
}

/// Why a batch was not enqueued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnqueueError {
    /// The tenant's queue cannot take the batch; retry after the suggested seconds.
    QueueFull {
        /// Statements currently queued for the tenant.
        queued: usize,
        /// The queue bound the batch would have overflowed.
        depth: usize,
    },
    /// The pool is shutting down and no longer accepts work.
    ShuttingDown,
    /// Startup recovery is still replaying the journal; retry shortly.
    Recovering,
    /// The write-ahead journal could not make the batch durable.  The journal is
    /// fail-stop: after the first failure the pool acknowledges nothing further, so a
    /// client retry lands on a restarted, recovered process rather than on silently
    /// un-durable state.
    Journal(String),
}

impl std::fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnqueueError::QueueFull { queued, depth } => {
                write!(f, "tenant queue full ({queued}/{depth} statements)")
            }
            EnqueueError::ShuttingDown => write!(f, "pool is shutting down"),
            EnqueueError::Recovering => write!(f, "pool is replaying its write-ahead journal"),
            EnqueueError::Journal(err) => write!(f, "write-ahead journal failed: {err}"),
        }
    }
}

impl std::error::Error for EnqueueError {}

/// A point-in-time gauge of the pool, served by `GET /stats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolGauge {
    /// Resident sessions.
    pub occupancy: usize,
    /// Evicted tenants whose history waits in the archive.
    pub archived: usize,
    /// Statements queued but not yet applied, across all tenants.
    pub queued: usize,
    /// Queries ingested (applied) across resident sessions.
    pub queries: usize,
    /// Unparseable statements skipped across resident sessions.
    pub skipped: usize,
    /// Lifetime evictions.
    pub evictions: u64,
    /// Lifetime rehydrations (evicted tenants that returned).
    pub rehydrations: u64,
    /// Lifetime statements accepted by `enqueue`.
    pub accepted: u64,
    /// Lifetime batches rejected for backpressure.
    pub rejected_batches: u64,
    /// Accumulated parse time across resident sessions, milliseconds.
    pub parse_ms: f64,
    /// Accumulated mining time across resident sessions, milliseconds.
    pub mining_ms: f64,
    /// Accumulated mapping time across resident sessions, milliseconds.
    pub mapping_ms: f64,
    /// A bounded sample of recent parse failures across resident sessions (each session
    /// keeps its own capped [`pi_ast::ErrorSample`]; the gauge takes the first
    /// [`GAUGE_ERROR_SAMPLES`] it encounters).  `skipped` has the full count — this is
    /// the *what*, not the *how many*.
    pub parse_error_samples: Vec<String>,
    /// Bytes of versioned binary snapshots currently held for evicted tenants (the
    /// in-memory archive; spill files on disk are not counted).
    pub snapshot_bytes: usize,
    /// Lifetime evictions archived with a binary snapshot.
    pub snapshot_archives: u64,
    /// Lifetime evictions archived with raw history only (snapshot persist failed).
    pub replay_archives: u64,
    /// Lifetime rehydrations served by deserializing a snapshot (archive or spill file).
    pub snapshot_rehydrations: u64,
    /// Lifetime rehydrations served by replaying raw history through a fresh session.
    pub replay_rehydrations: u64,
    /// Accumulated wall-clock spent persisting eviction snapshots, milliseconds.
    pub persist_ms: f64,
    /// Accumulated wall-clock spent restoring sessions from snapshots, milliseconds.
    pub restore_ms: f64,
    /// True while startup recovery is still replaying the journal (readiness gates on it).
    pub recovering: bool,
    /// Worker panics caught by the supervisor (each triggers a session rebuild).
    pub worker_panics: u64,
    /// Sessions rebuilt from durable state after a panic or a poisoned lock.
    pub session_rebuilds: u64,
    /// Statements quarantined because applying them panicked even on rebuild.
    pub quarantined_statements: u64,
    /// A bounded sample of quarantined statements (tenant, dialect, text, panic message).
    pub quarantine_samples: Vec<String>,
    /// Poisoned mutexes recovered instead of propagated (each flags its tenant for a
    /// rebuild before the session is trusted again).
    pub lock_poison_recoveries: u64,
    /// Spill snapshots quarantined (renamed `*.corrupt`) after failing integrity checks.
    pub spill_quarantines: u64,
    /// Tenants whose journal tail was replayed by startup recovery.
    pub recovered_tenants: u64,
    /// Statements replayed from the journal by startup recovery.
    pub recovered_statements: u64,
    /// Journal statements dropped by recovery because a sequence gap preceded them (a
    /// pruned or lost segment; replaying past a hole would mis-state the session).
    pub recovery_dropped: u64,
    /// Completed checkpoints (journal rotated, every tenant snapshot durable, prune ran).
    pub checkpoints: u64,
    /// Journal segment files deleted by checkpoint prunes.
    pub pruned_segments: u64,
    /// Wall-clock of the last startup recovery, milliseconds (0 when never recovered).
    pub last_recovery_ms: f64,
    /// Journal counters, when the pool runs with durability.
    pub journal: Option<JournalStats>,
}

/// How many parse-failure samples a [`PoolGauge`] carries at most — enough for an
/// operator squinting at `/stats` to recognise the garbage's shape, small enough that a
/// garbage flood cannot bloat the endpoint.
pub const GAUGE_ERROR_SAMPLES: usize = 8;

struct TenantInner {
    session: Session,
    /// Raw tagged statement texts applied so far, in order — the rehydration source.
    /// `Arc`-shared with the wire decoder's batch and the archive, so the history costs
    /// two words per statement, not a copy of its text.
    history: Vec<(pi_ast::Dialect, Arc<str>)>,
    /// Statements accepted but not yet applied.
    queue: VecDeque<(pi_ast::Dialect, Arc<str>)>,
    /// How many queued entries are an eviction replay (exempt from the queue bound —
    /// rehydration must never be rejected for being larger than one ingest burst).
    replaying: usize,
    /// Whether the tenant currently sits in the dispatch queue.
    dispatched: bool,
    /// Statements acknowledged (journaled) so far — the next statement's sequence number.
    acked: u64,
    /// Statements applied into the session (≤ `acked`; the journal seq the next spill
    /// snapshot records, so recovery replay over it is idempotent).
    applied: u64,
    /// The spill snapshot this session was restored from, when its `history` does not
    /// reach back to an empty session (restart rehydration): a supervisor rebuild then
    /// restores this base and replays `history` over it.  `None` means `history` is the
    /// tenant's complete record and rebuilds start from a fresh session.
    base: Option<Arc<Vec<u8>>>,
    /// Set when a poisoned tenant lock was recovered: the session may be mid-mutation and
    /// must be rebuilt from durable state before it is trusted again.
    suspect: bool,
}

struct Tenant {
    key: TenantId,
    inner: Mutex<TenantInner>,
}

struct Resident {
    tenant: Arc<Tenant>,
    last_used: u64,
}

/// What the shard keeps for an evicted tenant.
struct ArchiveEntry {
    /// The evicted session's versioned binary snapshot — the fast rehydration path.
    /// `None` when persist failed (I/O is infallible into a `Vec`, so in practice this
    /// only happens if a future snapshot precondition is violated).
    snapshot: Option<Vec<u8>>,
    /// The evicted tenant's rebuild base (see `TenantInner::base`), carried across the
    /// eviction so a later supervisor rebuild still has it.
    base: Option<Arc<Vec<u8>>>,
    /// The raw tagged statement history, in order — the replay fallback when the snapshot
    /// fails integrity checks, and the history the rehydrated tenant keeps extending.
    /// Moving it in and out of the archive moves `Arc` handles; text is never copied.
    history: Vec<(pi_ast::Dialect, Arc<str>)>,
    /// The tenant's acknowledged / applied statement counters at eviction.
    acked: u64,
    applied: u64,
}

#[derive(Default)]
struct Shard {
    tenants: HashMap<TenantId, Resident>,
    /// Evicted tenants' snapshots and histories, awaiting rehydration if they return.
    archive: HashMap<TenantId, ArchiveEntry>,
    /// LRU clock: bumps on every touch; the resident with the smallest stamp is evicted.
    clock: u64,
}

/// A multi-tenant pool of mining [`Session`]s; see the module docs for the layout.
pub struct SessionPool {
    opts: PoolOptions,
    shards: Vec<Mutex<Shard>>,
    /// Tenants with pending queue items, awaiting a worker.
    dispatch: Mutex<VecDeque<TenantId>>,
    dispatch_cv: Condvar,
    shutdown: AtomicBool,
    workers: Mutex<Vec<JoinHandle<()>>>,
    default_dialect: pi_ast::Dialect,
    known_dialects: Vec<pi_ast::Dialect>,
    /// Eviction snapshots are mirrored here as spill files, and tenants unknown to every
    /// shard are probed here before being treated as new — restart rehydration.
    spill_dir: Option<PathBuf>,
    /// The write-ahead journal, when the pool runs with durability.
    journal: Option<Journal>,
    /// True from construction until startup recovery has replayed the whole journal;
    /// ingest is refused and readiness reports unready while set.
    recovering: AtomicBool,
    /// The background recovery thread, joined by `close()` / `simulate_crash()`.
    recovery_thread: Mutex<Option<JoinHandle<()>>>,
    /// Serializes checkpoints (`try_lock`: a checkpoint already running is good enough).
    checkpoint_lock: Mutex<()>,
    /// Statements accepted but not yet applied, pool-wide (drives the readiness
    /// high-water check without walking every shard).
    queued_statements: AtomicUsize,
    quarantine_samples: Mutex<Vec<String>>,
    evictions: AtomicU64,
    rehydrations: AtomicU64,
    accepted: AtomicU64,
    rejected_batches: AtomicU64,
    snapshot_archives: AtomicU64,
    replay_archives: AtomicU64,
    snapshot_rehydrations: AtomicU64,
    replay_rehydrations: AtomicU64,
    worker_panics: AtomicU64,
    session_rebuilds: AtomicU64,
    quarantined_statements: AtomicU64,
    lock_poison_recoveries: AtomicU64,
    spill_quarantines: AtomicU64,
    recovered_tenants: AtomicU64,
    recovered_statements: AtomicU64,
    recovery_dropped: AtomicU64,
    checkpoints: AtomicU64,
    pruned_segments: AtomicU64,
    /// Wall-clock totals in microseconds (atomics can't add floats; the gauge divides).
    persist_us: AtomicU64,
    restore_us: AtomicU64,
    last_recovery_us: AtomicU64,
    /// Bytes of snapshots currently archived, maintained at archive insert/remove.
    snapshot_bytes: AtomicUsize,
}

/// Recovers a poisoned lock on pool-global state (dispatch queue, worker list, sample
/// buffers): these hold plain data a panicking thread cannot leave half-mutated in a way
/// that matters, so propagating the poison would turn one caught panic into a dead pool.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Renders a caught panic payload for counters and quarantine samples.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Magic prefix of the versioned spill file format (`applied` watermark + key + snapshot).
const SPILL_MAGIC: &[u8; 8] = b"PISPILL2";

/// What reading a tenant's spill file yielded.
enum SpillRead {
    /// No spill file (or a hash collision with another tenant's — treated as absent).
    Missing,
    /// An intact spill: the applied-statement watermark and the session snapshot bytes.
    Loaded { applied: u64, snapshot: Vec<u8> },
    /// A malformed spill file: the caller quarantines it and falls back.
    Corrupt,
}

impl SessionPool {
    /// Builds a pool and spawns its ingest workers; no spill directory — eviction
    /// snapshots live in memory only and die with the pool.
    pub fn new(opts: PoolOptions) -> Arc<SessionPool> {
        SessionPool::with_spill(opts, None)
    }

    /// Builds a pool whose eviction snapshots are also mirrored into `spill_dir`, so
    /// tenants survive a process restart: a pool opened over the same directory restores
    /// any spilled tenant's full mining state on first touch instead of starting empty.
    ///
    /// Spilling is best-effort — the directory is created if missing, unwritable files
    /// degrade silently to the in-memory archive (which preserves all single-process
    /// guarantees), and a spill file whose integrity check fails on read is quarantined
    /// (renamed `*.corrupt`) and the tenant falls back to journal/history replay.
    ///
    /// With [`PoolOptions::durability`] set, the journal under its directory is opened
    /// (its tail scanned, torn records discarded) and a background recovery thread
    /// replays every recovered tenant through the normal ingest path; until it finishes
    /// the pool reports [`EnqueueError::Recovering`] and readiness is false — use
    /// [`SessionPool::wait_ready`] to block on it.
    ///
    /// # Panics
    ///
    /// Panics if the journal directory cannot be created or scanned — a pool that
    /// silently ran without its configured durability would be worse than one that
    /// refuses to start.
    pub fn with_spill(opts: PoolOptions, spill_dir: Option<PathBuf>) -> Arc<SessionPool> {
        let spill_dir = spill_dir.or_else(|| opts.durability.as_ref().map(|d| d.dir.clone()));
        if let Some(dir) = &spill_dir {
            let _ = std::fs::create_dir_all(dir);
        }
        let shards = opts.shards.max(1);
        let workers = opts.workers.max(1);
        let (journal, recovered) = match opts.durability.clone() {
            Some(durability) => {
                let (journal, recovered) =
                    Journal::open(durability, shards).expect("open write-ahead journal");
                (Some(journal), Some(recovered))
            }
            None => (None, None),
        };
        // Sessions share one standard registry; probe it once rather than per request.
        let probe = Session::new(opts.session.clone());
        let default_dialect = probe.default_dialect();
        let known_dialects = probe.frontends().dialects();
        let pool = Arc::new(SessionPool {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            dispatch: Mutex::new(VecDeque::new()),
            dispatch_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            recovering: AtomicBool::new(recovered.is_some()),
            recovery_thread: Mutex::new(None),
            checkpoint_lock: Mutex::new(()),
            queued_statements: AtomicUsize::new(0),
            quarantine_samples: Mutex::new(Vec::new()),
            evictions: AtomicU64::new(0),
            rehydrations: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected_batches: AtomicU64::new(0),
            snapshot_archives: AtomicU64::new(0),
            replay_archives: AtomicU64::new(0),
            snapshot_rehydrations: AtomicU64::new(0),
            replay_rehydrations: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            session_rebuilds: AtomicU64::new(0),
            quarantined_statements: AtomicU64::new(0),
            lock_poison_recoveries: AtomicU64::new(0),
            spill_quarantines: AtomicU64::new(0),
            recovered_tenants: AtomicU64::new(0),
            recovered_statements: AtomicU64::new(0),
            recovery_dropped: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            pruned_segments: AtomicU64::new(0),
            persist_us: AtomicU64::new(0),
            restore_us: AtomicU64::new(0),
            last_recovery_us: AtomicU64::new(0),
            snapshot_bytes: AtomicUsize::new(0),
            default_dialect,
            known_dialects,
            spill_dir,
            journal,
            opts,
        });
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("pi-pool-worker-{i}"))
                    .spawn(move || pool.worker_loop())
                    .expect("spawn pool worker")
            })
            .collect();
        *lock_or_recover(&pool.workers) = handles;
        if let Some(recovered) = recovered {
            let recoverer = Arc::clone(&pool);
            let handle = std::thread::Builder::new()
                .name("pi-pool-recovery".to_string())
                .spawn(move || recoverer.recover(recovered))
                .expect("spawn recovery thread");
            *lock_or_recover(&pool.recovery_thread) = Some(handle);
        }
        pool
    }

    /// The options this pool runs with.
    pub fn options(&self) -> &PoolOptions {
        &self.opts
    }

    /// The default dialect untagged ingest text is attributed to (the session registry's
    /// first front-end).
    pub fn default_dialect(&self) -> pi_ast::Dialect {
        self.default_dialect
    }

    /// The dialects the tenant sessions can parse.
    pub fn known_dialects(&self) -> &[pi_ast::Dialect] {
        &self.known_dialects
    }

    /// Enqueues one decoded [`LogItem`] for its tenant.  Returns the number of statements
    /// accepted; never blocks on mining.
    pub fn enqueue(&self, item: &LogItem) -> Result<usize, EnqueueError> {
        self.enqueue_tagged(
            &item.user_id,
            &item.thread_id,
            item.queries.iter().map(|(d, t)| (*d, Arc::clone(t))),
        )
    }

    /// Enqueues tagged statement texts for a tenant; see [`SessionPool::enqueue`].
    ///
    /// All-or-nothing per batch: either every statement fits under the queue bound or the
    /// whole batch is rejected — partial ingest would silently reorder a tenant's log when
    /// the client retries the remainder.
    ///
    /// Statements arriving as `Arc<str>` (the wire decoder's shape) are enqueued by
    /// refcount bump; `&str` callers pay the one owning allocation here and never again —
    /// the queue, the history and any eviction replay all share it.
    ///
    /// With durability on, the batch's journal record is appended under the tenant lock
    /// (atomically with sequence assignment and queue insertion, so file order equals
    /// sequence order) and group-committed *before* this returns `Ok` — an acknowledged
    /// batch survives a crash.
    pub fn enqueue_tagged<I, S>(
        &self,
        user_id: &str,
        thread_id: &str,
        statements: I,
    ) -> Result<usize, EnqueueError>
    where
        I: IntoIterator<Item = (pi_ast::Dialect, S)>,
        S: Into<Arc<str>>,
    {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(EnqueueError::ShuttingDown);
        }
        if self.recovering.load(Ordering::Acquire) {
            return Err(EnqueueError::Recovering);
        }
        if self.journal.as_ref().is_some_and(Journal::is_failed) {
            return Err(EnqueueError::Journal("journal is failed".to_string()));
        }
        let statements: Vec<(pi_ast::Dialect, Arc<str>)> =
            statements.into_iter().map(|(d, s)| (d, s.into())).collect();
        if statements.is_empty() {
            return Ok(0);
        }
        let key: TenantId = (user_id.to_string(), thread_id.to_string());
        let shard_idx = self.shard_of(&key);
        let mut guard = self.lock_shard(&self.shards[shard_idx]);
        let tenant = self.resident(&mut guard, &key);
        let (accepted, ticket) = {
            let mut inner = self.lock_tenant(&tenant);
            // Replay backlog is exempt from the bound; only genuinely new statements count.
            let backlog = inner.queue.len() - inner.replaying;
            if backlog + statements.len() > self.opts.queue_depth {
                self.rejected_batches.fetch_add(1, Ordering::Relaxed);
                return Err(EnqueueError::QueueFull {
                    queued: inner.queue.len(),
                    depth: self.opts.queue_depth,
                });
            }
            let ticket = match &self.journal {
                Some(journal) => {
                    let record = crate::journal::encode_batch_record(
                        &key.0,
                        &key.1,
                        inner.acked,
                        &statements,
                    );
                    match journal.append(shard_idx, &record) {
                        Ok(ticket) => Some(ticket),
                        Err(err) => return Err(EnqueueError::Journal(err.to_string())),
                    }
                }
                None => None,
            };
            let accepted = statements.len();
            inner.acked += accepted as u64;
            inner.queue.extend(statements);
            self.queued_statements
                .fetch_add(accepted, Ordering::Relaxed);
            self.mark_dispatched(&tenant, &mut inner);
            (accepted, ticket)
        };
        drop(guard);
        // The fsync happens outside every lock: appends from other tenants accumulate
        // under it (group commit), and mining never waits on the disk.
        if let (Some(journal), Some(ticket)) = (&self.journal, ticket) {
            if let Err(err) = journal.commit(ticket) {
                // The statements are queued (the live session may mine them) but the
                // batch is NOT acknowledged: the journal is now failed and nothing
                // further acks, so the client's retry lands after a restart+recovery
                // instead of on un-durable state.
                return Err(EnqueueError::Journal(err.to_string()));
            }
        }
        self.accepted.fetch_add(accepted as u64, Ordering::Relaxed);
        Ok(accepted)
    }

    /// Serves the tenant's current interface snapshot, or `None` for a tenant the pool has
    /// never seen.
    ///
    /// Read-your-writes: any statements still queued for the tenant are applied inline
    /// before the snapshot, so a client that ingested and immediately fetched sees its own
    /// queries.  An evicted tenant rehydrates transparently (its full history replays
    /// first).
    pub fn snapshot(&self, user_id: &str, thread_id: &str) -> Option<GeneratedInterface> {
        let key: TenantId = (user_id.to_string(), thread_id.to_string());
        let mut guard = self.lock_shard(&self.shards[self.shard_of(&key)]);
        let known = guard.tenants.contains_key(&key)
            || guard.archive.contains_key(&key)
            || self.has_spill(&key);
        if !known {
            return None;
        }
        let tenant = self.resident(&mut guard, &key);
        drop(guard);
        let mut inner = self.lock_tenant(&tenant);
        self.apply_supervised(&tenant, &mut inner);
        Some(inner.session.snapshot())
    }

    /// Applies every queued statement for one tenant without snapshotting.  Used by tests
    /// and the graceful-shutdown drain; returns how many statements were applied, or
    /// `None` for an unknown tenant.
    pub fn flush(&self, user_id: &str, thread_id: &str) -> Option<usize> {
        let key: TenantId = (user_id.to_string(), thread_id.to_string());
        let guard = self.lock_shard(&self.shards[self.shard_of(&key)]);
        let tenant = Arc::clone(&guard.tenants.get(&key)?.tenant);
        drop(guard);
        let mut inner = self.lock_tenant(&tenant);
        Some(self.apply_supervised(&tenant, &mut inner))
    }

    /// A point-in-time gauge across every shard (locks each shard and tenant briefly).
    pub fn gauge(&self) -> PoolGauge {
        let mut gauge = PoolGauge {
            evictions: self.evictions.load(Ordering::Relaxed),
            rehydrations: self.rehydrations.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_batches: self.rejected_batches.load(Ordering::Relaxed),
            snapshot_bytes: self.snapshot_bytes.load(Ordering::Relaxed),
            snapshot_archives: self.snapshot_archives.load(Ordering::Relaxed),
            replay_archives: self.replay_archives.load(Ordering::Relaxed),
            snapshot_rehydrations: self.snapshot_rehydrations.load(Ordering::Relaxed),
            replay_rehydrations: self.replay_rehydrations.load(Ordering::Relaxed),
            persist_ms: self.persist_us.load(Ordering::Relaxed) as f64 / 1e3,
            restore_ms: self.restore_us.load(Ordering::Relaxed) as f64 / 1e3,
            recovering: self.recovering.load(Ordering::Acquire),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            session_rebuilds: self.session_rebuilds.load(Ordering::Relaxed),
            quarantined_statements: self.quarantined_statements.load(Ordering::Relaxed),
            quarantine_samples: lock_or_recover(&self.quarantine_samples).clone(),
            lock_poison_recoveries: self.lock_poison_recoveries.load(Ordering::Relaxed),
            spill_quarantines: self.spill_quarantines.load(Ordering::Relaxed),
            recovered_tenants: self.recovered_tenants.load(Ordering::Relaxed),
            recovered_statements: self.recovered_statements.load(Ordering::Relaxed),
            recovery_dropped: self.recovery_dropped.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            pruned_segments: self.pruned_segments.load(Ordering::Relaxed),
            last_recovery_ms: self.last_recovery_us.load(Ordering::Relaxed) as f64 / 1e3,
            journal: self.journal.as_ref().map(Journal::stats),
            ..PoolGauge::default()
        };
        for shard in &self.shards {
            let guard = self.lock_shard(shard);
            gauge.occupancy += guard.tenants.len();
            gauge.archived += guard.archive.len();
            for resident in guard.tenants.values() {
                let inner = self.lock_tenant(&resident.tenant);
                gauge.queued += inner.queue.len();
                gauge.queries += inner.session.len();
                gauge.skipped += inner.session.skipped();
                let timings = inner.session.timings();
                gauge.parse_ms += timings.parse_ms;
                gauge.mining_ms += timings.mining_ms;
                gauge.mapping_ms += timings.mapping_ms;
                for error in inner.session.parse_errors().entries() {
                    if gauge.parse_error_samples.len() >= GAUGE_ERROR_SAMPLES {
                        break;
                    }
                    gauge.parse_error_samples.push(error.to_string());
                }
            }
        }
        gauge
    }

    /// Graceful shutdown: stop accepting, join the workers, then drain every remaining
    /// queue and flush a final snapshot per resident session (so the last mapped interface
    /// and final timings are materialised before the pool drops).  With a spill directory,
    /// every non-empty resident session is also persisted to disk, so a pool reopened over
    /// the same directory rehydrates *all* tenants — not just the previously evicted ones.
    /// With durability, a final checkpoint then prunes the journal the spills now cover.
    /// Idempotent.
    pub fn close(&self) {
        // Let an in-flight recovery finish first: its replay work must not race the
        // drain, and an interrupted recovery must keep `recovering` set so no checkpoint
        // prunes journal segments that were never replayed.
        let recovery = lock_or_recover(&self.recovery_thread).take();
        if let Some(handle) = recovery {
            let _ = handle.join();
        }
        self.shutdown.store(true, Ordering::SeqCst);
        self.dispatch_cv.notify_all();
        let handles = std::mem::take(&mut *lock_or_recover(&self.workers));
        for handle in handles {
            let _ = handle.join();
        }
        for shard in &self.shards {
            let tenants: Vec<Arc<Tenant>> = {
                let guard = self.lock_shard(shard);
                guard
                    .tenants
                    .values()
                    .map(|r| Arc::clone(&r.tenant))
                    .collect()
            };
            for tenant in tenants {
                let mut inner = self.lock_tenant(&tenant);
                self.apply_supervised(&tenant, &mut inner);
                if !inner.session.is_empty() {
                    inner.session.snapshot();
                    if self.spill_dir.is_some() {
                        let start = Instant::now();
                        let applied = inner.applied;
                        if let Ok(bytes) = inner.session.persist_to_vec() {
                            self.persist_us
                                .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
                            self.write_spill(&tenant.key, &bytes, applied);
                        }
                    }
                }
            }
        }
        // Every resident is drained and spilled: a full checkpoint now prunes the
        // journal, so the next open restores from snapshots in milliseconds instead of
        // replaying the whole log.
        if self.journal.is_some() && !self.recovering.load(Ordering::Acquire) {
            self.checkpoint();
        }
    }

    fn shard_of(&self, key: &TenantId) -> usize {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Looks up (or creates / rehydrates) the resident tenant for `key`, touching its LRU
    /// stamp.  Called with the shard lock held; may evict the shard's LRU tenant.
    fn resident(&self, shard: &mut Shard, key: &TenantId) -> Arc<Tenant> {
        shard.clock += 1;
        let stamp = shard.clock;
        if let Some(resident) = shard.tenants.get_mut(key) {
            resident.last_used = stamp;
            return Arc::clone(&resident.tenant);
        }
        // A shard holds its even share of the pool-wide capacity.
        let shard_cap = self.opts.capacity.div_ceil(self.shards.len()).max(1);
        if shard.tenants.len() >= shard_cap {
            self.evict_lru(shard);
        }
        // Rehydration.  Preferred path: deserialize the eviction snapshot — milliseconds,
        // state byte-identical, memo warm.  Fallback: preload the archived history as a
        // replay queue; the normal worker path re-applies it, rebuilding the same session
        // by re-mining.  A tenant in neither the map nor the archive may still have a
        // spill file from a previous process — restart rehydration, same restore path.
        let archived = shard.archive.remove(key);
        let from_spill = archived.is_none();
        let spilled = if from_spill {
            match self.read_spill(key) {
                SpillRead::Loaded { applied, snapshot } => Some(ArchiveEntry {
                    snapshot: Some(snapshot),
                    base: None,
                    history: Vec::new(),
                    acked: applied,
                    applied,
                }),
                SpillRead::Corrupt => {
                    // Malformed spill: quarantine the file (an operator can inspect it)
                    // and start the tenant fresh — journal replay, when durability is on,
                    // restores whatever the pruned log still covers.
                    self.quarantine_spill(key);
                    self.rehydrations.fetch_add(1, Ordering::Relaxed);
                    self.replay_rehydrations.fetch_add(1, Ordering::Relaxed);
                    None
                }
                SpillRead::Missing => None,
            }
        } else {
            None
        };
        let entry = match archived {
            Some(entry) => {
                if let Some(snapshot) = &entry.snapshot {
                    self.snapshot_bytes
                        .fetch_sub(snapshot.len(), Ordering::Relaxed);
                }
                Some(entry)
            }
            None => spilled,
        };
        let inner = match entry {
            None => TenantInner {
                session: Session::new(self.opts.session.clone()),
                history: Vec::new(),
                queue: VecDeque::new(),
                replaying: 0,
                dispatched: false,
                acked: 0,
                applied: 0,
                base: None,
                suspect: false,
            },
            Some(entry) => {
                self.rehydrations.fetch_add(1, Ordering::Relaxed);
                let restored = entry.snapshot.as_deref().and_then(|bytes| {
                    let start = Instant::now();
                    let session =
                        Session::restore_with(&mut &*bytes, self.opts.session.clone()).ok()?;
                    self.restore_us
                        .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
                    Some(session)
                });
                match restored {
                    Some(session) => {
                        // Snapshot restore: the session already holds everything the
                        // history would replay; the history rides along as the fallback
                        // for the tenant's *next* eviction.  With durability the spill
                        // file stays — it is the durable base the pruned journal counts
                        // on; without, the next eviction/close rewrites it anyway.
                        self.snapshot_rehydrations.fetch_add(1, Ordering::Relaxed);
                        if self.journal.is_none() {
                            let _ = self.remove_spill(key);
                        }
                        // A restart restore has no history reaching back to empty, so
                        // the snapshot becomes the rebuild base.
                        let base = if from_spill {
                            entry.snapshot.map(Arc::new)
                        } else {
                            entry.base
                        };
                        TenantInner {
                            session,
                            history: entry.history,
                            queue: VecDeque::new(),
                            replaying: 0,
                            dispatched: false,
                            acked: entry.acked,
                            applied: entry.applied,
                            base,
                            suspect: false,
                        }
                    }
                    None if from_spill => {
                        // The spill framing was intact but the embedded snapshot failed
                        // integrity: quarantine it and start fresh at sequence zero, so
                        // an un-pruned journal replays the full log over the fresh
                        // session (the best recovery still available).
                        self.quarantine_spill(key);
                        self.replay_rehydrations.fetch_add(1, Ordering::Relaxed);
                        TenantInner {
                            session: Session::new(self.opts.session.clone()),
                            history: Vec::new(),
                            queue: VecDeque::new(),
                            replaying: 0,
                            dispatched: false,
                            acked: 0,
                            applied: 0,
                            base: None,
                            suspect: false,
                        }
                    }
                    None => {
                        // Corrupt in-memory archive snapshot: restore the rebuild base
                        // (if any) and replay the archived history over it through the
                        // worker path.
                        self.replay_rehydrations.fetch_add(1, Ordering::Relaxed);
                        let _ = self.remove_spill(key);
                        let session = entry
                            .base
                            .as_deref()
                            .and_then(|bytes| {
                                Session::restore_with(
                                    &mut bytes.as_slice(),
                                    self.opts.session.clone(),
                                )
                                .ok()
                            })
                            .unwrap_or_else(|| Session::new(self.opts.session.clone()));
                        let replaying = entry.history.len();
                        TenantInner {
                            session,
                            history: Vec::new(),
                            queue: entry.history.into(),
                            replaying,
                            dispatched: false,
                            acked: entry.acked,
                            applied: entry.applied - replaying as u64,
                            base: entry.base,
                            suspect: false,
                        }
                    }
                }
            }
        };
        let queued = inner.queue.len();
        let tenant = Arc::new(Tenant {
            key: key.clone(),
            inner: Mutex::new(inner),
        });
        if queued > 0 {
            self.queued_statements.fetch_add(queued, Ordering::Relaxed);
        }
        {
            let mut inner = self.lock_tenant(&tenant);
            self.mark_dispatched(&tenant, &mut inner);
        }
        shard.tenants.insert(
            key.clone(),
            Resident {
                tenant: Arc::clone(&tenant),
                last_used: stamp,
            },
        );
        tenant
    }

    /// Evicts the least-recently-used tenant of a shard: applies its pending statements,
    /// archives its history, drops its session.  Called with the shard lock held.
    fn evict_lru(&self, shard: &mut Shard) {
        let Some(victim_key) = shard
            .tenants
            .iter()
            .min_by_key(|(_, r)| r.last_used)
            .map(|(k, _)| k.clone())
        else {
            return;
        };
        let resident = shard.tenants.remove(&victim_key).expect("victim resident");
        let mut inner = self.lock_tenant(&resident.tenant);
        // Apply the backlog so the archived state covers everything accepted so far.
        // This runs under the shard lock — eviction is rare and the backlog small, and it
        // must be atomic with removal or a late worker would apply to an orphaned session.
        self.apply_supervised(&resident.tenant, &mut inner);
        // Persist the full mining state: rehydration deserializes this in milliseconds
        // instead of re-mining the history.  The raw history is archived alongside as the
        // integrity fallback.
        let start = Instant::now();
        let snapshot = inner.session.persist_to_vec().ok();
        self.persist_us
            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        let history = std::mem::take(&mut inner.history);
        let base = inner.base.take();
        let acked = inner.acked;
        let applied = inner.applied;
        drop(inner);
        match &snapshot {
            Some(bytes) => {
                self.snapshot_archives.fetch_add(1, Ordering::Relaxed);
                self.snapshot_bytes
                    .fetch_add(bytes.len(), Ordering::Relaxed);
                self.write_spill(&victim_key, bytes, applied);
            }
            None => {
                self.replay_archives.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.archive.insert(
            victim_key,
            ArchiveEntry {
                snapshot,
                base,
                history,
                acked,
                applied,
            },
        );
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// The spill file for a tenant, when spilling is enabled.  Named by the key's hash;
    /// the file's own header carries the exact key, so a hash collision reads as a miss
    /// for the other tenant rather than serving it foreign state.
    fn spill_path(&self, key: &TenantId) -> Option<PathBuf> {
        let dir = self.spill_dir.as_ref()?;
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        Some(dir.join(format!("tenant-{:016x}.pisnap", hasher.finish())))
    }

    /// True when a spill file exists for this tenant (cheap existence probe; integrity is
    /// checked at read time).
    fn has_spill(&self, key: &TenantId) -> bool {
        self.spill_path(key).is_some_and(|p| p.exists())
    }

    /// Best-effort spill write:
    /// `PISPILL2 [applied u64][user_len][user][thread_len][thread][session snapshot]`,
    /// via a temp file + rename so readers never observe a half-written spill.  With
    /// durability on, the temp file is fsynced before the rename — checkpoint prunes
    /// count on the spill surviving a crash.  Returns whether the spill is durably (or,
    /// without a journal, at least atomically) in place.
    fn write_spill(&self, key: &TenantId, snapshot: &[u8], applied: u64) -> bool {
        let Some(path) = self.spill_path(key) else {
            return false;
        };
        #[cfg(any(test, feature = "faults"))]
        if let Some(plan) = self.fault_plan() {
            if plan.hit(FaultOp::SpillWrite).is_err() {
                return false;
            }
        }
        let mut buf =
            Vec::with_capacity(SPILL_MAGIC.len() + 16 + key.0.len() + key.1.len() + snapshot.len());
        buf.extend_from_slice(SPILL_MAGIC);
        buf.extend_from_slice(&applied.to_le_bytes());
        for part in [&key.0, &key.1] {
            buf.extend_from_slice(&(part.len() as u32).to_le_bytes());
            buf.extend_from_slice(part.as_bytes());
        }
        buf.extend_from_slice(snapshot);
        let tmp = path.with_extension("pisnap.tmp");
        let written = (|| -> std::io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&buf)?;
            if self.journal.is_some() {
                file.sync_all()?;
            }
            drop(file);
            std::fs::rename(&tmp, &path)
        })();
        written.is_ok()
    }

    /// Reads this tenant's spill file; see [`SpillRead`] for the outcomes.  A key
    /// mismatch (hash collision with another tenant) reads as `Missing` — the file is
    /// *that* tenant's state, not corruption.
    fn read_spill(&self, key: &TenantId) -> SpillRead {
        let Some(path) = self.spill_path(key) else {
            return SpillRead::Missing;
        };
        let data = match std::fs::read(&path) {
            Ok(data) => data,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return SpillRead::Missing,
            Err(_) => return SpillRead::Corrupt,
        };
        if data.len() < SPILL_MAGIC.len() + 8 || &data[..SPILL_MAGIC.len()] != SPILL_MAGIC {
            return SpillRead::Corrupt;
        }
        let mut at = SPILL_MAGIC.len();
        let applied = u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"));
        at += 8;
        for expected in [&key.0, &key.1] {
            let Some(len_bytes) = data.get(at..at + 4) else {
                return SpillRead::Corrupt;
            };
            let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
            at += 4;
            let Some(part) = data.get(at..at + len) else {
                return SpillRead::Corrupt;
            };
            if part != expected.as_bytes() {
                return SpillRead::Missing;
            }
            at += len;
        }
        SpillRead::Loaded {
            applied,
            snapshot: data[at..].to_vec(),
        }
    }

    /// Quarantines a tenant's spill file by renaming it `*.corrupt` (falling back to
    /// deletion), so the next probe does not trip over it again while an operator can
    /// still inspect the bytes.
    fn quarantine_spill(&self, key: &TenantId) {
        let Some(path) = self.spill_path(key) else {
            return;
        };
        let mut target = path.clone().into_os_string();
        target.push(".corrupt");
        if std::fs::rename(&path, std::path::Path::new(&target)).is_err() {
            let _ = std::fs::remove_file(&path);
        }
        self.spill_quarantines.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes this tenant's spill file (after rehydration consumed it).
    fn remove_spill(&self, key: &TenantId) -> std::io::Result<()> {
        match self.spill_path(key) {
            Some(path) => std::fs::remove_file(path),
            None => Ok(()),
        }
    }

    /// Adds the tenant to the dispatch queue if it is not already there.  Called with the
    /// tenant lock held.
    fn mark_dispatched(&self, tenant: &Arc<Tenant>, inner: &mut TenantInner) {
        if !inner.dispatched && !inner.queue.is_empty() {
            inner.dispatched = true;
            lock_or_recover(&self.dispatch).push_back(tenant.key.clone());
            self.dispatch_cv.notify_one();
        }
    }

    fn worker_loop(&self) {
        loop {
            let key = {
                let mut queue = lock_or_recover(&self.dispatch);
                loop {
                    if let Some(key) = queue.pop_front() {
                        break key;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = self
                        .dispatch_cv
                        .wait(queue)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let tenant = {
                let guard = self.lock_shard(&self.shards[self.shard_of(&key)]);
                // Evicted (or already drained) while queued for dispatch: eviction applied
                // its backlog itself, so there is nothing left to do.
                match guard.tenants.get(&key) {
                    Some(resident) => Arc::clone(&resident.tenant),
                    None => continue,
                }
            };
            {
                let mut inner = self.lock_tenant(&tenant);
                inner.dispatched = false;
                self.apply_supervised(&tenant, &mut inner);
            }
            // The checkpoint trigger rides the worker loop: after a drain, if enough
            // journal has accumulated, one worker runs the checkpoint (the lock makes
            // the others skip past).
            if self
                .journal
                .as_ref()
                .is_some_and(Journal::should_checkpoint)
            {
                self.checkpoint();
            }
        }
    }

    /// Locks a shard, recovering (and counting) a poisoned lock: the shard holds
    /// membership maps whose invariants a panicking thread cannot break mid-operation.
    fn lock_shard<'a>(&self, shard: &'a Mutex<Shard>) -> MutexGuard<'a, Shard> {
        shard.lock().unwrap_or_else(|poisoned| {
            self.lock_poison_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// Locks a tenant, recovering a poisoned lock by flagging the tenant `suspect`: its
    /// session may be mid-mutation, so the next supervised apply rebuilds it from
    /// durable state (base snapshot + history) before trusting it again.
    fn lock_tenant<'a>(&self, tenant: &'a Tenant) -> MutexGuard<'a, TenantInner> {
        tenant.inner.lock().unwrap_or_else(|poisoned| {
            self.lock_poison_recoveries.fetch_add(1, Ordering::Relaxed);
            let mut inner = poisoned.into_inner();
            inner.suspect = true;
            inner
        })
    }

    #[cfg(any(test, feature = "faults"))]
    fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.journal
            .as_ref()
            .and_then(|j| j.options().faults.as_ref())
    }

    /// Applies every queued statement to the session, recording it into the history.
    /// Called with the tenant lock held (and, on the worker path, never the shard lock —
    /// mining is the slow part, and membership must stay available while it runs).
    ///
    /// The backlog goes through [`Session::push_stream_tagged`] — the trace-scale ingest
    /// path — so a large drain (an eviction replay of a long history, a burst behind a
    /// slow worker) mines in bounded chunks and repeated statements hit the session's
    /// parse cache instead of re-parsing; streaming is fold-identical to per-fragment
    /// pushes (property-tested), so rehydration stays byte-identical.
    fn apply_pending(&self, inner: &mut TenantInner) -> usize {
        let applied = inner.queue.len();
        if applied == 0 {
            return 0;
        }
        inner.replaying = inner.replaying.saturating_sub(applied);
        let start = inner.history.len();
        inner.history.reserve(applied);
        inner.history.extend(inner.queue.drain(..));
        inner.applied += applied as u64;
        #[cfg(any(test, feature = "faults"))]
        let plan = self.fault_plan();
        inner
            .session
            .push_stream_tagged(inner.history[start..].iter().map(|(d, t)| {
                #[cfg(any(test, feature = "faults"))]
                if let Some(plan) = plan {
                    plan.check_statement(t);
                }
                (*d, &**t)
            }));
        applied
    }

    /// The supervised apply: drains the queue under `catch_unwind`, so a statement that
    /// panics the miner takes down neither the worker nor the pool.  The unwind is
    /// caught *inside* the caller's lock scope — the tenant mutex is never poisoned by
    /// it — and the session, left in an unknown state by the unwind, is rebuilt from
    /// durable state with the offending statement quarantined.  Also the entry point
    /// that heals a `suspect` tenant (poisoned-lock recovery) before its session is
    /// used.  Returns how many statements left the queue.
    fn apply_supervised(&self, tenant: &Tenant, inner: &mut TenantInner) -> usize {
        if inner.suspect {
            self.rebuild_tenant(tenant, inner, "tenant lock was recovered from poison");
        }
        let pending = inner.queue.len();
        if pending == 0 {
            return 0;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| self.apply_pending(inner)));
        if let Err(payload) = outcome {
            self.worker_panics.fetch_add(1, Ordering::Relaxed);
            let message = panic_message(payload.as_ref());
            self.rebuild_tenant(tenant, inner, &message);
        }
        // Either way the queue was drained into the history (the drain precedes the
        // mining), so `pending` statements left the queue.
        self.queued_statements.fetch_sub(pending, Ordering::Relaxed);
        pending
    }

    /// Rebuilds a tenant's session from durable state: restore the base snapshot (or
    /// start fresh), then replay the history with each statement individually supervised
    /// — statements that panic even in isolation are quarantined (dropped from the
    /// history, counted, sampled) and the rebuild restarts without them, so one
    /// poisonous statement cannot wedge the tenant forever.
    fn rebuild_tenant(&self, tenant: &Tenant, inner: &mut TenantInner, reason: &str) {
        self.session_rebuilds.fetch_add(1, Ordering::Relaxed);
        // Fold any still-queued statements into the history so the rebuild covers them
        // (apply_pending drains before mining, so this is normally a no-op).
        let drained = inner.queue.len();
        if drained > 0 {
            inner.replaying = 0;
            inner.applied += drained as u64;
            inner.history.reserve(drained);
            while let Some(item) = inner.queue.pop_front() {
                inner.history.push(item);
            }
        }
        let opts = self.opts.session.clone();
        let base = inner.base.clone();
        let history = std::mem::take(&mut inner.history);
        #[cfg(any(test, feature = "faults"))]
        let plan = self.fault_plan().cloned();
        let outcome = Session::rebuild_quarantining(
            || match &base {
                Some(bytes) => Session::restore_with(&mut bytes.as_slice(), opts.clone())
                    .unwrap_or_else(|_| Session::new(opts.clone())),
                None => Session::new(opts.clone()),
            },
            &history,
            |session, dialect, text| {
                #[cfg(any(test, feature = "faults"))]
                if let Some(plan) = &plan {
                    plan.check_statement(text);
                }
                session.push_text_as(dialect, text);
            },
        );
        inner.session = outcome.session;
        if outcome.quarantined.is_empty() {
            inner.history = history;
            // The rebuild replayed cleanly (a transient panic, or a poisoned lock whose
            // damage never reached the session) — sample why it ran anyway.
            let mut samples = lock_or_recover(&self.quarantine_samples);
            if samples.len() < GAUGE_ERROR_SAMPLES {
                samples.push(format!(
                    "{}/{} session rebuilt: {reason}",
                    tenant.key.0, tenant.key.1
                ));
            }
        } else {
            self.quarantined_statements
                .fetch_add(outcome.quarantined.len() as u64, Ordering::Relaxed);
            let mut samples = lock_or_recover(&self.quarantine_samples);
            for (index, message) in &outcome.quarantined {
                if samples.len() >= GAUGE_ERROR_SAMPLES {
                    break;
                }
                let (dialect, text) = &history[*index];
                let text: String = text.chars().take(120).collect();
                samples.push(format!(
                    "{}/{} [{}] {:?}: {message}",
                    tenant.key.0,
                    tenant.key.1,
                    dialect.name(),
                    text,
                ));
            }
            drop(samples);
            inner.history = history
                .iter()
                .enumerate()
                .filter(|(i, _)| !outcome.quarantined.iter().any(|(q, _)| q == i))
                .map(|(_, item)| item.clone())
                .collect();
        }
        inner.suspect = false;
    }

    /// Startup recovery (runs on its own thread): for every tenant the journal scan
    /// surfaced, rehydrate its spill snapshot, queue the journal tail past the
    /// snapshot's applied watermark, and apply it through the supervised path.  Ingest
    /// is refused (`EnqueueError::Recovering`) until this completes, and `recovering`
    /// clears only on full completion — an aborted recovery must keep checkpoints (and
    /// their journal prunes) disabled.
    fn recover(&self, recovered: RecoveredLog) {
        let start = Instant::now();
        let mut tenants: Vec<_> = recovered.tenants.into_iter().collect();
        // Deterministic replay order (the per-tenant outcome is order-independent, but
        // determinism keeps counters and fault-injection hits reproducible).
        tenants.sort_by(|a, b| a.0.cmp(&b.0));
        for (key, tail) in tenants {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let mut guard = self.lock_shard(&self.shards[self.shard_of(&key)]);
            let tenant = self.resident(&mut guard, &key);
            let mut inner = self.lock_tenant(&tenant);
            // The snapshot covers sequences below `applied`; the journal tail must
            // continue contiguously from there.  A gap means a lost or pruned segment —
            // replaying past it would silently mis-state the session, so the remainder
            // is dropped (and counted).
            let mut expected = inner.applied.max(inner.acked);
            let mut pushed = 0usize;
            let mut dropped = 0u64;
            for statement in tail {
                if statement.seq < expected {
                    continue;
                }
                if statement.seq > expected {
                    dropped += 1;
                    continue;
                }
                inner
                    .queue
                    .push_back((self.dialect_by_name(&statement.dialect), statement.text));
                inner.replaying += 1;
                pushed += 1;
                expected += 1;
            }
            inner.acked = expected;
            drop(guard);
            self.queued_statements.fetch_add(pushed, Ordering::Relaxed);
            self.recovered_statements
                .fetch_add(pushed as u64, Ordering::Relaxed);
            self.recovery_dropped.fetch_add(dropped, Ordering::Relaxed);
            self.recovered_tenants.fetch_add(1, Ordering::Relaxed);
            self.apply_supervised(&tenant, &mut inner);
        }
        self.last_recovery_us
            .store(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.recovering.store(false, Ordering::Release);
    }

    /// Maps a journal dialect name back to a registered dialect; unknown names (a
    /// registry that shrank between processes) fall back to the unrecognized dialect,
    /// which parses nothing but counts and samples — the statement is preserved in the
    /// history rather than silently dropped.
    fn dialect_by_name(&self, name: &str) -> pi_ast::Dialect {
        self.known_dialects
            .iter()
            .copied()
            .find(|d| d.name() == name)
            .unwrap_or(crate::wire::UNRECOGNIZED_DIALECT)
    }

    /// Runs a checkpoint: seal the journal's active segments, persist every tenant's
    /// spill snapshot (with its applied watermark), and — only if *every* tenant is
    /// durably covered — prune the sealed segments.  Incomplete checkpoints leave the
    /// journal intact: recovery replays more than strictly necessary, never less.
    /// Returns whether the full checkpoint (including the prune) completed.
    pub fn checkpoint(&self) -> bool {
        let Some(journal) = &self.journal else {
            return false;
        };
        if self.recovering.load(Ordering::Acquire) {
            return false;
        }
        // One checkpoint at a time; a second caller's work is already being done.
        let Ok(_running) = self.checkpoint_lock.try_lock() else {
            return false;
        };
        if journal.rotate_all().is_err() {
            return false;
        }
        let mut all_durable = true;
        for shard in &self.shards {
            let (tenants, archived) = {
                let guard = self.lock_shard(shard);
                let tenants: Vec<Arc<Tenant>> = guard
                    .tenants
                    .values()
                    .map(|r| Arc::clone(&r.tenant))
                    .collect();
                // Archived tenants already spilled at eviction; re-spill only the ones
                // whose eviction-time write failed.
                let archived: Vec<(TenantId, Option<Vec<u8>>, u64)> = guard
                    .archive
                    .iter()
                    .filter(|(key, _)| !self.has_spill(key))
                    .map(|(key, entry)| (key.clone(), entry.snapshot.clone(), entry.applied))
                    .collect();
                (tenants, archived)
            };
            for (key, snapshot, applied) in archived {
                match snapshot {
                    Some(bytes) if self.write_spill(&key, &bytes, applied) => {}
                    _ => all_durable = false,
                }
            }
            for tenant in tenants {
                let mut inner = self.lock_tenant(&tenant);
                self.apply_supervised(&tenant, &mut inner);
                if inner.applied == 0 && inner.base.is_none() {
                    continue;
                }
                let start = Instant::now();
                let snapshot = inner.session.persist_to_vec().ok();
                self.persist_us
                    .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
                let applied = inner.applied;
                drop(inner);
                match snapshot {
                    Some(bytes) if self.write_spill(&tenant.key, &bytes, applied) => {}
                    _ => all_durable = false,
                }
            }
        }
        if all_durable {
            let pruned = journal.prune();
            self.pruned_segments.fetch_add(pruned, Ordering::Relaxed);
            self.checkpoints.fetch_add(1, Ordering::Relaxed);
        }
        all_durable
    }

    /// True while startup recovery is still replaying the journal.
    pub fn is_recovering(&self) -> bool {
        self.recovering.load(Ordering::Acquire)
    }

    /// Blocks until startup recovery has finished (immediately for a pool without
    /// durability, or once `close`/`simulate_crash` has begun shutting down).
    pub fn wait_ready(&self) {
        while self.recovering.load(Ordering::Acquire) && !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// `None` when the pool is ready for traffic; otherwise why it is not — still
    /// recovering, journal failed, or the apply backlog over the high-water mark.  The
    /// HTTP readiness endpoint turns `Some` into `503 + Retry-After`.
    pub fn readiness_blocker(&self) -> Option<String> {
        if self.recovering.load(Ordering::Acquire) {
            return Some("recovering: replaying the write-ahead journal".to_string());
        }
        if self.journal.as_ref().is_some_and(Journal::is_failed) {
            return Some("write-ahead journal failed; restart to recover".to_string());
        }
        if let Some(high_water) = self.opts.ready_high_water {
            let queued = self.queued_statements.load(Ordering::Relaxed);
            if queued >= high_water {
                return Some(format!(
                    "ingest backlog {queued} statements >= high water {high_water}"
                ));
            }
        }
        None
    }

    /// Whether the pool is ready for traffic; see [`SessionPool::readiness_blocker`].
    pub fn is_ready(&self) -> bool {
        self.readiness_blocker().is_none()
    }

    /// Simulates a process crash for the crash-recovery suite: the workers stop where
    /// they stand, in-memory state is abandoned (the caller drops the pool without
    /// `close`, so nothing spills), and the journal truncates to its durable watermark
    /// plus the fault plan's torn tail — exactly what a kill leaves on disk.  Reopen a
    /// pool over the same directory to exercise recovery.
    #[cfg(any(test, feature = "faults"))]
    pub fn simulate_crash(&self) -> std::io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        self.dispatch_cv.notify_all();
        let recovery = lock_or_recover(&self.recovery_thread).take();
        if let Some(handle) = recovery {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *lock_or_recover(&self.workers));
        for handle in handles {
            let _ = handle.join();
        }
        match &self.journal {
            Some(journal) => journal.simulate_crash(),
            None => Ok(()),
        }
    }
}

impl Drop for SessionPool {
    fn drop(&mut self) {
        // Workers hold an Arc each, so by the time the last Arc drops they have exited;
        // this path matters only for pools closed without `close()` — make it safe anyway.
        self.shutdown.store(true, Ordering::SeqCst);
        self.dispatch_cv.notify_all();
    }
}

impl std::fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPool")
            .field("shards", &self.shards.len())
            .field("capacity", &self.opts.capacity)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Dialect;

    fn pool(capacity: usize, shards: usize, queue_depth: usize) -> Arc<SessionPool> {
        SessionPool::new(PoolOptions {
            capacity,
            shards,
            queue_depth,
            workers: 2,
            ..PoolOptions::default()
        })
    }

    fn sql(i: usize) -> String {
        format!("SELECT a FROM t WHERE x = {i}")
    }

    #[test]
    fn enqueue_then_snapshot_reads_your_writes() {
        let pool = pool(8, 2, 64);
        for i in 0..4 {
            pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(i).as_str())])
                .unwrap();
        }
        let snap = pool.snapshot("ada", "t1").expect("tenant exists");
        assert_eq!(snap.version, 4);
        assert_eq!(snap.interface.widgets().len(), 1);
        assert!(pool.snapshot("ada", "missing").is_none());
        pool.close();
    }

    #[test]
    fn tenants_are_isolated() {
        let pool = pool(8, 4, 64);
        pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(1).as_str())])
            .unwrap();
        pool.enqueue_tagged(
            "ada",
            "t2",
            [
                (Dialect::SQL, sql(2).as_str()),
                (Dialect::SQL, sql(3).as_str()),
            ],
        )
        .unwrap();
        pool.enqueue_tagged(
            "bob",
            "t1",
            [(Dialect::FRAMES, "t.filter(x == 9).select(a)")],
        )
        .unwrap();
        assert_eq!(pool.snapshot("ada", "t1").unwrap().version, 1);
        assert_eq!(pool.snapshot("ada", "t2").unwrap().version, 2);
        let bob = pool.snapshot("bob", "t1").unwrap();
        assert_eq!(bob.version, 1);
        assert_eq!(bob.dialects, vec![Dialect::FRAMES]);
        pool.close();
    }

    #[test]
    fn full_queues_reject_whole_batches() {
        let pool = pool(4, 1, 3);
        // Stall application by never snapshotting and filling faster than workers drain:
        // use a tenant the workers cannot outpace deterministically — flush-free check on
        // the *bound*, not the race: a batch larger than the bound always rejects.
        let batch: Vec<(Dialect, String)> = (0..4).map(|i| (Dialect::SQL, sql(i))).collect();
        let err = pool
            .enqueue_tagged("ada", "t1", batch.iter().map(|(d, t)| (*d, t.as_str())))
            .unwrap_err();
        assert!(matches!(err, EnqueueError::QueueFull { depth: 3, .. }));
        assert_eq!(pool.gauge().rejected_batches, 1);
        // Smaller batches still flow.
        pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(0).as_str())])
            .unwrap();
        assert_eq!(pool.snapshot("ada", "t1").unwrap().version, 1);
        pool.close();
    }

    #[test]
    fn eviction_archives_and_rehydration_replays_byte_identically() {
        // Capacity 2, one shard: touching a third tenant evicts the LRU.
        let pool = pool(2, 1, 64);
        let texts: Vec<String> = (0..6).map(sql).collect();
        for text in &texts {
            pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, text.as_str())])
                .unwrap();
        }
        let before = pool.snapshot("ada", "t1").unwrap();
        // Bring in two more tenants; ada/t1 becomes LRU and is evicted.
        pool.enqueue_tagged("bob", "t1", [(Dialect::SQL, sql(0).as_str())])
            .unwrap();
        pool.flush("bob", "t1");
        pool.enqueue_tagged("cyd", "t1", [(Dialect::SQL, sql(1).as_str())])
            .unwrap();
        pool.flush("cyd", "t1");
        assert!(pool.gauge().evictions >= 1);
        // The returning tenant rehydrates to a byte-identical snapshot.
        let after = pool.snapshot("ada", "t1").unwrap();
        assert!(pool.gauge().rehydrations >= 1);
        assert_eq!(after.version, before.version);
        assert_eq!(after.graph, before.graph);
        assert_eq!(after.graph_stats, before.graph_stats);
        assert_eq!(after.dialects, before.dialects);
        assert_eq!(after.skipped, before.skipped);
        assert_eq!(after.interface.describe(), before.interface.describe());
        // …and keeps ingesting from where it left off.
        pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(7).as_str())])
            .unwrap();
        assert_eq!(
            pool.snapshot("ada", "t1").unwrap().version,
            before.version + 1
        );
        pool.close();
    }

    #[test]
    fn eviction_archives_a_snapshot_and_rehydration_restores_it() {
        let pool = pool(2, 1, 64);
        for i in 0..5 {
            pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(i).as_str())])
                .unwrap();
        }
        let before = pool.snapshot("ada", "t1").unwrap();
        // Force ada/t1 out of its seat.
        pool.enqueue_tagged("bob", "t1", [(Dialect::SQL, sql(0).as_str())])
            .unwrap();
        pool.flush("bob", "t1");
        pool.enqueue_tagged("cyd", "t1", [(Dialect::SQL, sql(1).as_str())])
            .unwrap();
        pool.flush("cyd", "t1");
        let evicted = pool.gauge();
        assert!(evicted.snapshot_archives >= 1, "eviction must persist");
        assert_eq!(evicted.replay_archives, 0);
        assert!(evicted.snapshot_bytes > 0, "archive holds snapshot bytes");
        assert!(evicted.persist_ms >= 0.0);
        // The return trip deserializes the snapshot — no replay.
        let after = pool.snapshot("ada", "t1").unwrap();
        assert_eq!(after.version, before.version);
        assert_eq!(after.graph, before.graph);
        assert_eq!(after.interface.describe(), before.interface.describe());
        let rehydrated = pool.gauge();
        assert!(rehydrated.snapshot_rehydrations >= 1);
        assert_eq!(rehydrated.replay_rehydrations, 0);
        // The consumed snapshot left the archive; its bytes are no longer held.
        assert!(rehydrated.snapshot_bytes < evicted.snapshot_bytes || evicted.snapshot_bytes == 0);
        pool.close();
    }

    #[test]
    fn spill_directory_rehydrates_across_pool_restarts() {
        let dir = std::env::temp_dir().join(format!(
            "pi-pool-spill-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = PoolOptions {
            capacity: 4,
            shards: 1,
            queue_depth: 64,
            workers: 1,
            ..PoolOptions::default()
        };
        // First process lifetime: ingest, then close (which spills residents).
        let first = SessionPool::with_spill(opts.clone(), Some(dir.clone()));
        for i in 0..4 {
            first
                .enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(i).as_str())])
                .unwrap();
        }
        let before = first.snapshot("ada", "t1").unwrap();
        first.close();
        drop(first);
        // Second lifetime over the same directory: the tenant's full state is back.
        let second = SessionPool::with_spill(opts.clone(), Some(dir.clone()));
        let after = second
            .snapshot("ada", "t1")
            .expect("spilled tenant is known after restart");
        assert_eq!(after.version, before.version);
        assert_eq!(after.graph, before.graph);
        assert_eq!(after.interface.describe(), before.interface.describe());
        assert!(second.gauge().snapshot_rehydrations >= 1);
        // …and keeps ingesting from where it left off.
        second
            .enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(9).as_str())])
            .unwrap();
        assert_eq!(
            second.snapshot("ada", "t1").unwrap().version,
            before.version + 1
        );
        second.close();
        // A pool without spill does not know the tenant.
        let cold = SessionPool::new(opts);
        assert!(cold.snapshot("ada", "t1").is_none());
        cold.close();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spill_files_fall_back_cleanly() {
        let dir = std::env::temp_dir().join(format!(
            "pi-pool-corrupt-spill-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = PoolOptions {
            capacity: 4,
            shards: 1,
            queue_depth: 64,
            workers: 1,
            ..PoolOptions::default()
        };
        let first = SessionPool::with_spill(opts.clone(), Some(dir.clone()));
        first
            .enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(1).as_str())])
            .unwrap();
        first.snapshot("ada", "t1").unwrap();
        first.close();
        drop(first);
        // Flip a byte in the middle of every spill file: the checksum must reject it and
        // the tenant reads as unknown (no state to fall back on across a restart), never
        // a panic or a silently wrong session.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&path, bytes).unwrap();
        }
        let second = SessionPool::with_spill(opts, Some(dir.clone()));
        // Restore fails integrity; with no archived history the pool treats the tenant as
        // new — a fresh, empty session (replay-kind rehydration).
        let snap = second.snapshot("ada", "t1").expect("spill file exists");
        assert_eq!(snap.version, 0);
        assert!(second.gauge().replay_rehydrations >= 1);
        second.close();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_statements_skip_and_count() {
        let pool = pool(4, 1, 64);
        pool.enqueue_tagged(
            "ada",
            "t1",
            [
                (Dialect::SQL, sql(1).as_str()),
                (Dialect::SQL, "THIS IS NOT SQL"),
                (crate::wire::UNRECOGNIZED_DIALECT, "SELECT ?s WHERE { }"),
            ],
        )
        .unwrap();
        let snap = pool.snapshot("ada", "t1").unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.skipped, 2);
        let gauge = pool.gauge();
        assert_eq!(gauge.skipped, 2);
        // The gauge carries what was skipped, not just how much: one sample per failure
        // here (both under the per-session cap), each naming its dialect.
        assert_eq!(gauge.parse_error_samples.len(), 2);
        assert!(gauge.parse_error_samples[0].contains("sql"));
        assert!(gauge.parse_error_samples[1].contains("unrecognized"));
        pool.close();
    }

    #[test]
    fn gauge_error_samples_stay_bounded_under_a_garbage_flood() {
        let pool = pool(4, 1, 1024);
        let garbage: Vec<(Dialect, String)> = (0..200)
            .map(|i| (Dialect::SQL, format!("%% not sql #{i} %%")))
            .collect();
        pool.enqueue_tagged("ada", "t1", garbage.iter().map(|(d, t)| (*d, t.as_str())))
            .unwrap();
        pool.flush("ada", "t1");
        let gauge = pool.gauge();
        assert_eq!(gauge.skipped, 200);
        assert!(!gauge.parse_error_samples.is_empty());
        assert!(gauge.parse_error_samples.len() <= GAUGE_ERROR_SAMPLES);
        pool.close();
    }

    #[test]
    fn gauge_tracks_occupancy_and_counters() {
        let pool = pool(8, 2, 64);
        pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(1).as_str())])
            .unwrap();
        pool.enqueue_tagged("bob", "t1", [(Dialect::SQL, sql(2).as_str())])
            .unwrap();
        pool.flush("ada", "t1");
        pool.flush("bob", "t1");
        let gauge = pool.gauge();
        assert_eq!(gauge.occupancy, 2);
        assert_eq!(gauge.accepted, 2);
        assert_eq!(gauge.queries, 2);
        assert_eq!(gauge.queued, 0);
        assert!(gauge.mining_ms >= 0.0);
        pool.close();
    }

    #[test]
    fn close_drains_queues_and_rejects_new_work() {
        let pool = pool(4, 1, 64);
        pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(1).as_str())])
            .unwrap();
        pool.close();
        assert_eq!(
            pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(2).as_str())]),
            Err(EnqueueError::ShuttingDown)
        );
        // The drained session kept the pre-shutdown statement.
        assert_eq!(pool.gauge().queries, 1);
        // close() is idempotent.
        pool.close();
    }

    #[test]
    fn workers_apply_in_the_background() {
        let pool = pool(4, 1, 1024);
        for i in 0..32 {
            pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(i).as_str())])
                .unwrap();
        }
        // Wait for the background workers (bounded, no sleep-forever).
        for _ in 0..200 {
            if pool.gauge().queued == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(pool.gauge().queued, 0);
        assert_eq!(pool.gauge().queries, 32);
        pool.close();
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pi-pool-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_pool(capacity: usize, durability: DurabilityOptions) -> Arc<SessionPool> {
        SessionPool::with_spill(
            PoolOptions {
                capacity,
                shards: 1,
                queue_depth: 256,
                workers: 1,
                durability: Some(durability),
                ..PoolOptions::default()
            },
            None,
        )
    }

    fn replay_sql(statements: &[String]) -> pi_core::GeneratedInterface {
        let mut session = Session::new(PiOptions::default());
        for text in statements {
            session.push_text_as(Dialect::SQL, text);
        }
        session.snapshot()
    }

    fn assert_same(pooled: &pi_core::GeneratedInterface, solo: &pi_core::GeneratedInterface) {
        assert_eq!(pooled.version, solo.version, "version");
        assert_eq!(pooled.skipped, solo.skipped, "skipped");
        assert_eq!(pooled.graph, solo.graph, "graph");
        assert_eq!(pooled.interface.describe(), solo.interface.describe());
    }

    #[test]
    fn journaled_restart_replays_every_acked_statement() {
        let dir = scratch("journal-restart");
        let first = durable_pool(4, DurabilityOptions::new(&dir));
        first.wait_ready();
        let script: Vec<String> = (0..7).map(sql).collect();
        for text in &script[..5] {
            first
                .enqueue_tagged("ada", "t1", [(Dialect::SQL, text.as_str())])
                .unwrap();
        }
        // Mix applied and never-applied statements: the first five reach the session via
        // this snapshot, the last two are acked (journaled) but die queued in memory.
        first.snapshot("ada", "t1").unwrap();
        for text in &script[5..] {
            first
                .enqueue_tagged("ada", "t1", [(Dialect::SQL, text.as_str())])
                .unwrap();
        }
        first.simulate_crash().unwrap();
        drop(first);
        let second = durable_pool(4, DurabilityOptions::new(&dir));
        second.wait_ready();
        let after = second
            .snapshot("ada", "t1")
            .expect("journaled tenant is known after a kill");
        assert_same(&after, &replay_sql(&script));
        let gauge = second.gauge();
        assert!(!gauge.recovering);
        assert!(gauge.recovered_tenants >= 1);
        assert!(gauge.recovered_statements >= 2, "the queued tail replays");
        second.close();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_prunes_journal_and_recovery_uses_the_snapshot() {
        let dir = scratch("checkpoint");
        let first = durable_pool(4, DurabilityOptions::new(&dir));
        first.wait_ready();
        let script: Vec<String> = (0..4).map(sql).collect();
        for text in &script {
            first
                .enqueue_tagged("ada", "t1", [(Dialect::SQL, text.as_str())])
                .unwrap();
        }
        assert!(first.checkpoint(), "explicit checkpoint completes");
        let gauge = first.gauge();
        assert!(gauge.checkpoints >= 1);
        assert!(gauge.pruned_segments >= 1, "sealed segments were pruned");
        first.simulate_crash().unwrap();
        drop(first);
        let second = durable_pool(4, DurabilityOptions::new(&dir));
        second.wait_ready();
        // Everything was checkpointed, so recovery restores the spill and replays nothing.
        assert_eq!(second.gauge().recovered_statements, 0);
        let after = second.snapshot("ada", "t1").unwrap();
        assert_same(&after, &replay_sql(&script));
        second.close();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_statement_is_quarantined_and_the_rest_survive() {
        let dir = scratch("quarantine");
        let mut durability = DurabilityOptions::new(&dir);
        durability.faults = Some(Arc::new(FaultPlan::new().with_panic_marker("POISON")));
        let pool = durable_pool(4, durability);
        pool.wait_ready();
        pool.enqueue_tagged(
            "ada",
            "t1",
            [
                (Dialect::SQL, sql(1).as_str()),
                (Dialect::SQL, "SELECT POISON FROM t"),
                (Dialect::SQL, sql(2).as_str()),
            ],
        )
        .unwrap();
        // The snapshot's inline apply panics on the marker; the supervisor catches it,
        // rebuilds the session and quarantines only the offender.
        let snap = pool.snapshot("ada", "t1").unwrap();
        assert_same(&snap, &replay_sql(&[sql(1), sql(2)]));
        let gauge = pool.gauge();
        assert!(gauge.worker_panics >= 1);
        assert!(gauge.session_rebuilds >= 1);
        assert_eq!(gauge.quarantined_statements, 1);
        assert!(
            gauge
                .quarantine_samples
                .iter()
                .any(|s| s.contains("POISON")),
            "sample names the offender: {:?}",
            gauge.quarantine_samples
        );
        // Later ingest keeps working on the rebuilt session.
        pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(3).as_str())])
            .unwrap();
        let snap = pool.snapshot("ada", "t1").unwrap();
        assert_same(&snap, &replay_sql(&[sql(1), sql(2), sql(3)]));
        pool.close();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spill_quarantines_and_falls_back_to_journal_replay() {
        let dir = scratch("spill-fallback");
        let first = durable_pool(1, DurabilityOptions::new(&dir));
        first.wait_ready();
        let script: Vec<String> = (0..3).map(sql).collect();
        for text in &script {
            first
                .enqueue_tagged("ada", "t1", [(Dialect::SQL, text.as_str())])
                .unwrap();
        }
        // Capacity one: a second tenant evicts ada, writing her spill snapshot.
        first
            .enqueue_tagged("bob", "t1", [(Dialect::SQL, sql(9).as_str())])
            .unwrap();
        first.simulate_crash().unwrap();
        drop(first);
        // Flip a byte inside every spill snapshot (journal segments stay intact).
        let mut flipped = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "pisnap") {
                let mut bytes = std::fs::read(&path).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x40;
                std::fs::write(&path, bytes).unwrap();
                flipped += 1;
            }
        }
        assert!(flipped >= 1, "eviction spilled at least one snapshot");
        let second = durable_pool(4, DurabilityOptions::new(&dir));
        second.wait_ready();
        // The corrupt snapshot was quarantined aside and the un-pruned journal replayed
        // the tenant's full history instead.
        let after = second.snapshot("ada", "t1").unwrap();
        assert_same(&after, &replay_sql(&script));
        let gauge = second.gauge();
        assert!(gauge.spill_quarantines >= 1);
        assert!(
            std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .any(|e| e.path().to_string_lossy().ends_with(".corrupt")),
            "the corrupt snapshot is preserved under .corrupt for forensics"
        );
        second.close();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_failure_stops_acks_and_readiness() {
        let dir = scratch("journal-fail");
        let mut durability = DurabilityOptions::new(&dir);
        durability.faults = Some(Arc::new(
            FaultPlan::new().with_io_error(FaultOp::JournalAppend, 2),
        ));
        let pool = durable_pool(4, durability);
        pool.wait_ready();
        assert!(pool.is_ready());
        pool.enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(1).as_str())])
            .unwrap();
        let err = pool
            .enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(2).as_str())])
            .unwrap_err();
        assert!(matches!(err, EnqueueError::Journal(_)), "{err}");
        // Fail-stop: the journal stays failed, later batches are refused and readiness
        // reports the blocker.
        let err = pool
            .enqueue_tagged("ada", "t1", [(Dialect::SQL, sql(3).as_str())])
            .unwrap_err();
        assert!(matches!(err, EnqueueError::Journal(_)), "{err}");
        let blocker = pool.readiness_blocker().expect("journal failure blocks");
        assert!(blocker.contains("journal"), "{blocker}");
        assert!(pool.gauge().journal.expect("journaled pool").failed);
        pool.close();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backlog_high_water_blocks_readiness() {
        // A zero high-water mark is always crossed: deterministic stand-in for "the apply
        // backlog outgrew the bound", without racing the worker's drain.
        let pool = SessionPool::new(PoolOptions {
            capacity: 4,
            shards: 1,
            queue_depth: 256,
            workers: 1,
            ready_high_water: Some(0),
            ..PoolOptions::default()
        });
        let blocker = pool.readiness_blocker().expect("zero mark always blocks");
        assert!(blocker.contains("high water"), "{blocker}");
        assert!(!pool.is_ready());
        pool.close();
        // And without the knob, an idle pool is simply ready.
        let plain = self::pool(4, 1, 64);
        assert!(plain.is_ready());
        assert_eq!(plain.readiness_blocker(), None);
        plain.close();
    }
}
