//! The ingest wire format: `LogItem` batches, as JSON.
//!
//! The shape follows the `LogItem { id, user_id, thread_id, log.queries[], created_at }`
//! layout production query-log pipelines ship (one item per user-visible interaction, each
//! carrying the queries that interaction ran), decoded with deliberate tolerance: unknown
//! keys are ignored, `queries` entries may be bare strings or objects, a missing `dialect`
//! falls back to the server's default, and `id`/`created_at` are accepted but unused —
//! ingest must absorb whatever an upstream logger emits, not negotiate a schema with it.
//! What it will *not* tolerate is an item without a tenant identity (`user_id` +
//! `thread_id`): those are counted as malformed and reported back, because silently filing
//! queries under a default tenant would corrupt another tenant's interface.

use pi_ast::Dialect;
use pi_ui::Json;
use std::sync::Arc;

/// One decoded ingest item: a tenant identity plus the tagged query texts it carries.
///
/// Statement text is held as `Arc<str>` from the moment it leaves the JSON decoder: the
/// pool's queue, the tenant history and an eviction replay all share the same allocation,
/// so a statement's bytes are copied out of the request body exactly once however many
/// times it is queued, archived and replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogItem {
    /// The tenant's user id.
    pub user_id: String,
    /// The tenant's thread id (one user can run many concurrent analysis threads).
    pub thread_id: String,
    /// The queries of this log item, in arrival order, each tagged with its dialect.
    pub queries: Vec<(Dialect, Arc<str>)>,
}

impl LogItem {
    /// Serialises the item to its wire JSON (the encoding the load generator and tests
    /// send; [`decode_batch`] reads it back).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("user_id".into(), Json::string(&self.user_id)),
            ("thread_id".into(), Json::string(&self.thread_id)),
            (
                "log".into(),
                Json::Object(vec![(
                    "queries".into(),
                    Json::Array(
                        self.queries
                            .iter()
                            .map(|(dialect, text)| {
                                Json::Object(vec![
                                    ("query".into(), Json::string(text)),
                                    ("dialect".into(), Json::string(dialect.name())),
                                ])
                            })
                            .collect(),
                    ),
                )]),
            ),
        ])
    }
}

/// Renders a batch of items as the `POST /logs` request body.
pub fn encode_batch(items: &[LogItem]) -> String {
    Json::Object(vec![(
        "logs".into(),
        Json::Array(items.iter().map(LogItem::to_json).collect()),
    )])
    .to_string()
}

/// The tag given to queries naming a dialect the server has no front-end for.  [`Dialect`]
/// wraps a `&'static str`, so arbitrary runtime names cannot become dialects (leaking one
/// per hostile request would be a memory hole); instead every unrecognised name collapses
/// to this sentinel, which no registry registers — the session then skips the query and
/// counts it, exactly like any other unregistered-dialect push.
pub const UNRECOGNIZED_DIALECT: Dialect = Dialect::new("unrecognized");

/// The outcome of decoding a batch body: the well-formed items plus how many entries were
/// dropped as malformed (no tenant identity, or a shape that is not an item at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedBatch {
    /// Items that carried a tenant identity and at least an empty query list.
    pub items: Vec<LogItem>,
    /// Entries dropped for missing/non-string `user_id` or `thread_id`.
    pub malformed: usize,
}

/// Decodes a `POST /logs` body that has already parsed as JSON.
///
/// Accepts `{"logs": [...]}`, a bare array, or a single item object.  Each item's
/// `log.queries` entries may be objects (`{"query": "...", "dialect": "sql"}`) or bare
/// strings; entries without usable query text are skipped (the session layer counts its
/// own parse skips — this only drops entries that aren't text at all).  `default_dialect`
/// tags entries that don't name one; names outside `known` (the server's registered
/// dialects) collapse to [`UNRECOGNIZED_DIALECT`].
pub fn decode_batch(body: &Json, default_dialect: Dialect, known: &[Dialect]) -> DecodedBatch {
    let entries: &[Json] = if let Some(list) = body.get("logs").and_then(Json::as_array) {
        list
    } else if let Some(list) = body.as_array() {
        list
    } else {
        std::slice::from_ref(body)
    };
    let mut items = Vec::new();
    let mut malformed = 0usize;
    for entry in entries {
        match decode_item(entry, default_dialect, known) {
            Some(item) => items.push(item),
            None => malformed += 1,
        }
    }
    DecodedBatch { items, malformed }
}

fn decode_item(entry: &Json, default_dialect: Dialect, known: &[Dialect]) -> Option<LogItem> {
    let user_id = entry.get("user_id")?.as_str()?;
    let thread_id = entry.get("thread_id")?.as_str()?;
    // `log.queries` preferred; a top-level `queries` is accepted too.  A missing list is a
    // valid (empty) item — e.g. a heartbeat entry from an upstream logger.
    let queries = entry
        .get("log")
        .and_then(|log| log.get("queries"))
        .or_else(|| entry.get("queries"))
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    let queries = queries
        .iter()
        .filter_map(|q| {
            let text = q.as_str().or_else(|| q.get("query")?.as_str())?;
            let dialect = match q.get("dialect").and_then(Json::as_str) {
                None => default_dialect,
                Some(name) => known
                    .iter()
                    .copied()
                    .find(|d| d.name() == name)
                    .unwrap_or(UNRECOGNIZED_DIALECT),
            };
            Some((dialect, Arc::from(text)))
        })
        .collect();
    Some(LogItem {
        user_id: user_id.to_string(),
        thread_id: thread_id.to_string(),
        queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const KNOWN: [Dialect; 2] = [Dialect::SQL, Dialect::FRAMES];

    fn item(user: &str, thread: &str, queries: &[(Dialect, &str)]) -> LogItem {
        LogItem {
            user_id: user.into(),
            thread_id: thread.into(),
            queries: queries.iter().map(|(d, t)| (*d, Arc::from(*t))).collect(),
        }
    }

    #[test]
    fn batches_round_trip_through_the_wire_encoding() {
        let items = vec![
            item(
                "u1",
                "t1",
                &[
                    (Dialect::SQL, "SELECT a FROM t WHERE x = 1"),
                    (Dialect::FRAMES, "t.filter(x == 2).select(a)"),
                ],
            ),
            item("u2", "t9", &[]),
        ];
        let body = Json::parse(&encode_batch(&items)).unwrap();
        let decoded = decode_batch(&body, Dialect::SQL, &KNOWN);
        assert_eq!(decoded.items, items);
        assert_eq!(decoded.malformed, 0);
    }

    #[test]
    fn decode_tolerates_oxy_style_items() {
        // The exemplar shape: extra keys, string timestamps, query objects with unrelated
        // metadata.  Everything unknown is ignored; the tenant identity and texts survive.
        let body = Json::parse(
            r#"{"logs": [{
                "id": "01J8",
                "user_id": "ada",
                "thread_id": "thread-7",
                "prompts": "show me delays",
                "log": {"queries": [
                    {"query": "SELECT a FROM t WHERE x = 1", "is_verified": true, "database": "dw"},
                    "SELECT a FROM t WHERE x = 2",
                    {"query": "t.filter(x == 3)", "dialect": "frames"},
                    {"no_query_text": 1}
                ]},
                "created_at": "2026-08-09T12:00:00Z"
            }]}"#,
        )
        .unwrap();
        let decoded = decode_batch(&body, Dialect::SQL, &KNOWN);
        assert_eq!(decoded.malformed, 0);
        assert_eq!(decoded.items.len(), 1);
        assert_eq!(
            decoded.items[0].queries,
            vec![
                (Dialect::SQL, Arc::from("SELECT a FROM t WHERE x = 1")),
                (Dialect::SQL, Arc::from("SELECT a FROM t WHERE x = 2")),
                (Dialect::FRAMES, Arc::from("t.filter(x == 3)")),
            ]
        );
    }

    #[test]
    fn bare_arrays_and_single_items_decode_too() {
        let single =
            Json::parse(r#"{"user_id": "u", "thread_id": "t", "queries": ["SELECT a FROM t"]}"#)
                .unwrap();
        assert_eq!(decode_batch(&single, Dialect::SQL, &KNOWN).items.len(), 1);
        let array = Json::parse(
            r#"[{"user_id": "u", "thread_id": "t"}, {"user_id": "v", "thread_id": "t"}]"#,
        )
        .unwrap();
        assert_eq!(decode_batch(&array, Dialect::SQL, &KNOWN).items.len(), 2);
    }

    #[test]
    fn items_without_a_tenant_identity_count_as_malformed() {
        let body = Json::parse(
            r#"{"logs": [
                {"thread_id": "t", "queries": ["SELECT a FROM t"]},
                {"user_id": "u", "queries": []},
                {"user_id": 7, "thread_id": "t"},
                "not an item",
                {"user_id": "ok", "thread_id": "t"}
            ]}"#,
        )
        .unwrap();
        let decoded = decode_batch(&body, Dialect::SQL, &KNOWN);
        assert_eq!(decoded.malformed, 4);
        assert_eq!(decoded.items.len(), 1);
        assert_eq!(decoded.items[0].user_id, "ok");
    }
}
