//! A dependency-free HTTP/1.1 front for the [`SessionPool`].
//!
//! One `TcpListener` shared by a small thread pool of acceptors; each thread runs a
//! keep-alive read → route → respond loop per connection.  The handlers only ever decode
//! JSON, enqueue into the pool, or snapshot — mining happens on the pool's workers — so
//! the acceptor threads stay available even while heavy tenants rebuild interfaces.
//!
//! ## Routes
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /logs` | Ingest a [`LogItem`](crate::wire::LogItem) batch.  `202` with accepted / rejected / malformed counts; a full tenant queue yields `429` + `Retry-After`; recovery or a failed journal yields `503` + `Retry-After`. |
//! | `GET /interfaces/{user}/{thread}` | The tenant's current versioned interface snapshot as JSON (widgets via the same spec the HTML compiler embeds). |
//! | `GET /healthz` · `GET /healthz/live` | Liveness: `200 {"status":"ok"}` whenever the process serves requests — even mid-recovery (restarting a recovering process would only restart its recovery). |
//! | `GET /readyz` · `GET /healthz/ready` | Readiness: `200` once startup recovery has finished, the journal is healthy and the apply backlog is under the high-water mark; otherwise `503` + `Retry-After` naming the blocker.  Load balancers gate traffic on this, not on liveness. |
//! | `GET /stats` | Pool gauge: occupancy, evictions, queue depths, accumulated stage timings, durability counters. |
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] flips the stop flag, wakes every acceptor blocked in `accept` with
//! a loopback dummy connection, joins the threads, then closes the pool — which drains all
//! pending queues and flushes a final snapshot per session.  In-flight requests finish;
//! new ones are refused.

use crate::pool::{EnqueueError, PoolOptions, SessionPool};
use crate::wire::{decode_batch, DecodedBatch};
use pi_ui::{interface_spec, EditorLayout, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Per-connection socket read timeout; a stalled client frees its acceptor thread.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Acceptor threads sharing the listener.
    pub http_threads: usize,
    /// The pool behind the routes.
    pub pool: PoolOptions,
    /// Directory for eviction-snapshot spill files.  When set, evicted tenants' mining
    /// state is mirrored to disk and a server restarted over the same directory restores
    /// returning tenants' full state (versions, graph, warm memo) instead of starting
    /// them empty.  `None` keeps snapshots in memory only.
    pub spill_dir: Option<std::path::PathBuf>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            http_threads: 4,
            pool: PoolOptions::default(),
            spill_dir: None,
        }
    }
}

/// A running multi-tenant interface service; see the module docs for the routes.
pub struct Server {
    addr: SocketAddr,
    pool: Arc<SessionPool>,
    stop: Arc<AtomicBool>,
    acceptors: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port — read it back from
    /// [`Server::addr`]) and starts the acceptor threads.
    pub fn bind<A: ToSocketAddrs>(addr: A, opts: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let listener = Arc::new(listener);
        let pool = SessionPool::with_spill(opts.pool, opts.spill_dir);
        let stop = Arc::new(AtomicBool::new(false));
        let acceptors = (0..opts.http_threads.max(1))
            .map(|i| {
                let listener = Arc::clone(&listener);
                let pool = Arc::clone(&pool);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("pi-http-{i}"))
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    if stop.load(Ordering::SeqCst) {
                                        break;
                                    }
                                    let _ = serve_connection(stream, &pool, &stop);
                                }
                                Err(_) => {
                                    if stop.load(Ordering::SeqCst) {
                                        break;
                                    }
                                }
                            }
                        }
                    })
                    .expect("spawn http acceptor")
            })
            .collect();
        Ok(Server {
            addr,
            pool,
            stop,
            acceptors: Mutex::new(acceptors),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The pool behind the routes (tests and embedded callers can bypass HTTP).
    pub fn pool(&self) -> &Arc<SessionPool> {
        &self.pool
    }

    /// Graceful shutdown: refuse new connections, join the acceptors, drain the pool's
    /// queues and flush final snapshots.  Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let handles = std::mem::take(&mut *self.acceptors.lock().unwrap());
        // Acceptors block in `accept`; poke each one awake with a throwaway connection.
        for _ in 0..handles.len() {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        }
        for handle in handles {
            let _ = handle.join();
        }
        self.pool.close();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// One parsed request.
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
}

/// Reads requests off one connection until the client closes, errors, times out, or sends
/// `Connection: close`.
fn serve_connection(
    stream: TcpStream,
    pool: &Arc<SessionPool>,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()), // clean close between requests
            Err(ReadError::Malformed(msg)) => {
                let body = error_json(&msg);
                write_response(&mut writer, 400, "Bad Request", &body, false, &[])?;
                return Ok(());
            }
            Err(ReadError::TooLarge) => {
                let body = error_json("request too large");
                write_response(&mut writer, 413, "Payload Too Large", &body, false, &[])?;
                return Ok(());
            }
            Err(ReadError::Io(e)) => return Err(e),
        };
        let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
        let (status, reason, body, extra) = route(&request, pool);
        write_response(&mut writer, status, reason, &body, keep_alive, &extra)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

enum ReadError {
    Malformed(String),
    TooLarge,
    Io(std::io::Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

/// Parses one request head + body.  `Ok(None)` means the client closed cleanly before
/// sending another request.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, ReadError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line without a path".into()))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    // HTTP/1.0 defaults to close, 1.1 to keep-alive; the Connection header overrides.
    let mut keep_alive = version.trim() != "HTTP/1.0";
    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(ReadError::Malformed("connection closed mid-headers".into()));
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge);
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue; // tolerate junk header lines
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ReadError::Malformed(format!("bad Content-Length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

fn write_response(
    writer: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        response.push_str(name);
        response.push_str(": ");
        response.push_str(value);
        response.push_str("\r\n");
    }
    response.push_str("\r\n");
    response.push_str(body);
    writer.write_all(response.as_bytes())
}

type Routed = (u16, &'static str, String, Vec<(&'static str, String)>);

fn route(request: &Request, pool: &Arc<SessionPool>) -> Routed {
    let path = request.path.split('?').next().unwrap_or(&request.path);
    match (request.method.as_str(), path) {
        ("POST", "/logs") => post_logs(&request.body, pool),
        ("GET", "/healthz" | "/healthz/live") => (
            200,
            "OK",
            Json::Object(vec![("status".into(), Json::string("ok"))]).to_string(),
            Vec::new(),
        ),
        ("GET", "/readyz" | "/healthz/ready") => match pool.readiness_blocker() {
            None => (
                200,
                "OK",
                Json::Object(vec![("status".into(), Json::string("ready"))]).to_string(),
                Vec::new(),
            ),
            Some(blocker) => (
                503,
                "Service Unavailable",
                Json::Object(vec![
                    ("status".into(), Json::string("unready")),
                    ("reason".into(), Json::string(&blocker)),
                ])
                .to_string(),
                vec![("Retry-After", "1".to_string())],
            ),
        },
        ("GET", "/stats") => (200, "OK", stats_json(pool).to_string(), Vec::new()),
        ("GET", _) if path.starts_with("/interfaces/") => get_interface(path, pool),
        _ => (404, "Not Found", error_json("no such route"), Vec::new()),
    }
}

fn post_logs(body: &[u8], pool: &Arc<SessionPool>) -> Routed {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => {
            return (
                400,
                "Bad Request",
                error_json("body is not UTF-8"),
                Vec::new(),
            )
        }
    };
    let parsed = match Json::parse(text) {
        Ok(parsed) => parsed,
        Err(e) => {
            return (
                400,
                "Bad Request",
                error_json(&format!("body is not JSON: {e}")),
                Vec::new(),
            )
        }
    };
    let DecodedBatch { items, malformed } =
        decode_batch(&parsed, pool.default_dialect(), pool.known_dialects());
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut queue_full = false;
    for item in &items {
        match pool.enqueue(item) {
            Ok(n) => accepted += n,
            Err(EnqueueError::QueueFull { .. }) => {
                rejected += item.queries.len();
                queue_full = true;
            }
            Err(EnqueueError::ShuttingDown) => {
                return (
                    503,
                    "Service Unavailable",
                    error_json("server is shutting down"),
                    Vec::new(),
                )
            }
            Err(EnqueueError::Recovering) => {
                // Startup recovery is replaying the journal; the batch would race the
                // replay's sequence numbers.  Come back when /readyz goes green.
                return (
                    503,
                    "Service Unavailable",
                    error_json("server is recovering; retry shortly"),
                    vec![("Retry-After", "1".to_string())],
                );
            }
            Err(EnqueueError::Journal(err)) => {
                // Fail-stop: nothing acks once the journal failed, so the client retries
                // against a restarted (recovered) process instead of losing the batch.
                return (
                    503,
                    "Service Unavailable",
                    error_json(&format!("write-ahead journal failed: {err}")),
                    vec![("Retry-After", "5".to_string())],
                );
            }
        }
    }
    let counts = Json::Object(vec![
        ("accepted".into(), Json::Number(accepted as f64)),
        ("rejected".into(), Json::Number(rejected as f64)),
        ("malformed".into(), Json::Number(malformed as f64)),
    ])
    .to_string();
    if queue_full {
        // Backpressure: the tenant's queue cannot take the batch right now.  Shed the load
        // explicitly and tell the client when to come back rather than blocking the
        // acceptor behind the pool's workers.
        (
            429,
            "Too Many Requests",
            counts,
            vec![("Retry-After", "1".to_string())],
        )
    } else {
        (202, "Accepted", counts, Vec::new())
    }
}

fn get_interface(path: &str, pool: &Arc<SessionPool>) -> Routed {
    // /interfaces/{user}/{thread}
    let rest = &path["/interfaces/".len()..];
    let Some((user, thread)) = rest.split_once('/') else {
        return (
            400,
            "Bad Request",
            error_json("expected /interfaces/{user}/{thread}"),
            Vec::new(),
        );
    };
    if user.is_empty() || thread.is_empty() || thread.contains('/') {
        return (
            400,
            "Bad Request",
            error_json("expected /interfaces/{user}/{thread}"),
            Vec::new(),
        );
    }
    let Some(snapshot) = pool.snapshot(user, thread) else {
        return (404, "Not Found", error_json("unknown tenant"), Vec::new());
    };
    let layout = EditorLayout::new(&snapshot.interface, 2);
    let spec = interface_spec(&snapshot.interface, &layout, &pi_core::standard_frontends());
    let body = Json::Object(vec![
        ("user_id".into(), Json::string(user)),
        ("thread_id".into(), Json::string(thread)),
        ("version".into(), Json::Number(snapshot.version as f64)),
        ("skipped".into(), Json::Number(snapshot.skipped as f64)),
        (
            "dialects".into(),
            Json::Array(
                snapshot
                    .dialects
                    .iter()
                    .map(|d| Json::string(d.name()))
                    .collect(),
            ),
        ),
        (
            "graph".into(),
            Json::Object(vec![
                (
                    "queries".into(),
                    Json::Number(snapshot.graph_stats.queries as f64),
                ),
                (
                    "edges".into(),
                    Json::Number(snapshot.graph_stats.edges as f64),
                ),
                (
                    "diff_records".into(),
                    Json::Number(snapshot.graph_stats.diff_records as f64),
                ),
                (
                    "distinct_paths".into(),
                    Json::Number(snapshot.graph_stats.distinct_paths as f64),
                ),
            ]),
        ),
        (
            "timings_ms".into(),
            Json::Object(vec![
                ("parse".into(), Json::Number(snapshot.timings.parse_ms)),
                ("mining".into(), Json::Number(snapshot.timings.mining_ms)),
                ("mapping".into(), Json::Number(snapshot.timings.mapping_ms)),
            ]),
        ),
        ("interface".into(), spec),
    ]);
    (200, "OK", body.to_string(), Vec::new())
}

fn stats_json(pool: &Arc<SessionPool>) -> Json {
    let gauge = pool.gauge();
    Json::Object(vec![
        ("occupancy".into(), Json::Number(gauge.occupancy as f64)),
        (
            "capacity".into(),
            Json::Number(pool.options().capacity as f64),
        ),
        ("archived".into(), Json::Number(gauge.archived as f64)),
        ("queued".into(), Json::Number(gauge.queued as f64)),
        ("queries".into(), Json::Number(gauge.queries as f64)),
        ("skipped".into(), Json::Number(gauge.skipped as f64)),
        ("evictions".into(), Json::Number(gauge.evictions as f64)),
        (
            "rehydrations".into(),
            Json::Number(gauge.rehydrations as f64),
        ),
        ("accepted".into(), Json::Number(gauge.accepted as f64)),
        (
            "rejected_batches".into(),
            Json::Number(gauge.rejected_batches as f64),
        ),
        (
            "timings_ms".into(),
            Json::Object(vec![
                ("parse".into(), Json::Number(gauge.parse_ms)),
                ("mining".into(), Json::Number(gauge.mining_ms)),
                ("mapping".into(), Json::Number(gauge.mapping_ms)),
            ]),
        ),
        (
            "persistence".into(),
            Json::Object(vec![
                (
                    "snapshot_bytes".into(),
                    Json::Number(gauge.snapshot_bytes as f64),
                ),
                (
                    "snapshot_archives".into(),
                    Json::Number(gauge.snapshot_archives as f64),
                ),
                (
                    "replay_archives".into(),
                    Json::Number(gauge.replay_archives as f64),
                ),
                (
                    "snapshot_rehydrations".into(),
                    Json::Number(gauge.snapshot_rehydrations as f64),
                ),
                (
                    "replay_rehydrations".into(),
                    Json::Number(gauge.replay_rehydrations as f64),
                ),
                ("persist_ms".into(), Json::Number(gauge.persist_ms)),
                ("restore_ms".into(), Json::Number(gauge.restore_ms)),
            ]),
        ),
        (
            "durability".into(),
            Json::Object(vec![
                ("recovering".into(), Json::Bool(gauge.recovering)),
                (
                    "journal".into(),
                    match &gauge.journal {
                        None => Json::Null,
                        Some(journal) => Json::Object(vec![
                            (
                                "appended_records".into(),
                                Json::Number(journal.appended_records as f64),
                            ),
                            (
                                "appended_bytes".into(),
                                Json::Number(journal.appended_bytes as f64),
                            ),
                            ("syncs".into(), Json::Number(journal.syncs as f64)),
                            (
                                "unchecked_bytes".into(),
                                Json::Number(journal.unchecked_bytes as f64),
                            ),
                            ("failed".into(), Json::Bool(journal.failed)),
                        ]),
                    },
                ),
                (
                    "worker_panics".into(),
                    Json::Number(gauge.worker_panics as f64),
                ),
                (
                    "session_rebuilds".into(),
                    Json::Number(gauge.session_rebuilds as f64),
                ),
                (
                    "quarantined_statements".into(),
                    Json::Number(gauge.quarantined_statements as f64),
                ),
                (
                    "lock_poison_recoveries".into(),
                    Json::Number(gauge.lock_poison_recoveries as f64),
                ),
                (
                    "spill_quarantines".into(),
                    Json::Number(gauge.spill_quarantines as f64),
                ),
                (
                    "recovered_tenants".into(),
                    Json::Number(gauge.recovered_tenants as f64),
                ),
                (
                    "recovered_statements".into(),
                    Json::Number(gauge.recovered_statements as f64),
                ),
                (
                    "recovery_dropped".into(),
                    Json::Number(gauge.recovery_dropped as f64),
                ),
                ("checkpoints".into(), Json::Number(gauge.checkpoints as f64)),
                (
                    "pruned_segments".into(),
                    Json::Number(gauge.pruned_segments as f64),
                ),
                (
                    "last_recovery_ms".into(),
                    Json::Number(gauge.last_recovery_ms),
                ),
            ]),
        ),
        (
            "parse_error_samples".into(),
            Json::Array(
                gauge
                    .parse_error_samples
                    .iter()
                    .map(|s| Json::string(s))
                    .collect(),
            ),
        ),
        (
            "quarantine_samples".into(),
            Json::Array(
                gauge
                    .quarantine_samples
                    .iter()
                    .map(|s| Json::string(s))
                    .collect(),
            ),
        ),
    ])
}

fn error_json(message: &str) -> String {
    Json::Object(vec![("error".into(), Json::string(message))]).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{http_request as raw_request, Connection, Response};
    use crate::pool::PoolOptions;

    fn test_server(pool: PoolOptions) -> Server {
        Server::bind(
            "127.0.0.1:0",
            ServerOptions {
                http_threads: 2,
                pool,
                spill_dir: None,
            },
        )
        .expect("bind ephemeral port")
    }

    fn http_request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Response {
        raw_request(addr, method, path, body).expect("request")
    }

    #[test]
    fn healthz_and_stats_respond() {
        let server = test_server(PoolOptions::default());
        let (status, _, body) = http_request(server.addr(), "GET", "/healthz", None);
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"status":"ok"}"#);
        let (status, _, body) = http_request(server.addr(), "GET", "/stats", None);
        assert_eq!(status, 200);
        let stats = Json::parse(&body).unwrap();
        assert_eq!(stats.get("occupancy").and_then(Json::as_f64), Some(0.0));
        // Empty pool, empty samples — but the field is always present for scrapers.
        assert_eq!(
            stats
                .get("parse_error_samples")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(0)
        );

        // A garbage statement surfaces in the sample list once ingested.
        let body = r#"{"logs": [{"user_id": "ada", "thread_id": "t1",
            "log": {"queries": ["THIS IS NOT SQL"]}}]}"#;
        let (status, _, _) = http_request(server.addr(), "POST", "/logs", Some(body));
        assert_eq!(status, 202);
        server.pool().flush("ada", "t1");
        let (_, _, body) = http_request(server.addr(), "GET", "/stats", None);
        let stats = Json::parse(&body).unwrap();
        let samples = stats
            .get("parse_error_samples")
            .and_then(Json::as_array)
            .expect("samples array");
        assert_eq!(samples.len(), 1);
        assert!(samples[0].as_str().unwrap().contains("sql"));
        server.shutdown();
    }

    #[test]
    fn liveness_and_readiness_are_separate_probes() {
        // An unready pool (readiness high-water mark of zero is always crossed) still
        // answers the liveness probes 200 — restarting it would not make it readier —
        // but readiness sheds the load balancer with 503 + Retry-After and a reason.
        let server = test_server(PoolOptions {
            ready_high_water: Some(0),
            ..PoolOptions::default()
        });
        for live in ["/healthz", "/healthz/live"] {
            let (status, _, body) = http_request(server.addr(), "GET", live, None);
            assert_eq!(status, 200, "{live}");
            assert_eq!(body, r#"{"status":"ok"}"#);
        }
        for ready in ["/readyz", "/healthz/ready"] {
            let (status, headers, body) = http_request(server.addr(), "GET", ready, None);
            assert_eq!(status, 503, "{ready}: {body}");
            assert!(
                headers
                    .iter()
                    .any(|(name, _)| name.eq_ignore_ascii_case("retry-after")),
                "{headers:?}"
            );
            let parsed = Json::parse(&body).unwrap();
            assert!(parsed
                .get("reason")
                .and_then(Json::as_str)
                .unwrap()
                .contains("high water"));
        }
        server.shutdown();

        // Without the knob the probes agree: both green.
        let server = test_server(PoolOptions::default());
        let (status, _, body) = http_request(server.addr(), "GET", "/readyz", None);
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, r#"{"status":"ready"}"#);
        server.shutdown();
    }

    #[test]
    fn stats_reports_durability_counters() {
        let server = test_server(PoolOptions::default());
        let (_, _, body) = http_request(server.addr(), "GET", "/stats", None);
        let stats = Json::parse(&body).unwrap();
        let durability = stats.get("durability").expect("durability object");
        assert_eq!(
            durability.get("recovering").and_then(Json::as_bool),
            Some(false)
        );
        // No journal configured: the field is present (scrapers see a stable schema) and
        // null.
        assert!(matches!(durability.get("journal"), Some(Json::Null)));
        assert_eq!(
            durability.get("worker_panics").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(
            stats
                .get("quarantine_samples")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(0)
        );
        server.shutdown();
    }

    #[test]
    fn ingest_then_fetch_interface() {
        let server = test_server(PoolOptions::default());
        let body = r#"{"logs": [{"user_id": "ada", "thread_id": "t1", "log": {"queries": [
            "SELECT a FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x = 2",
            {"query": "t.filter(x == 3).select(a)", "dialect": "frames"}
        ]}}]}"#;
        let (status, _, response) = http_request(server.addr(), "POST", "/logs", Some(body));
        assert_eq!(status, 202, "{response}");
        let counts = Json::parse(&response).unwrap();
        assert_eq!(counts.get("accepted").and_then(Json::as_f64), Some(3.0));
        assert_eq!(counts.get("malformed").and_then(Json::as_f64), Some(0.0));

        let (status, _, response) = http_request(server.addr(), "GET", "/interfaces/ada/t1", None);
        assert_eq!(status, 200);
        let interface = Json::parse(&response).unwrap();
        assert_eq!(interface.get("version").and_then(Json::as_f64), Some(3.0));
        let widgets = interface
            .get("interface")
            .and_then(|i| i.get("widgets"))
            .and_then(Json::as_array)
            .expect("widgets array");
        assert!(!widgets.is_empty());
        server.shutdown();
    }

    #[test]
    fn unknown_tenants_and_routes_are_404() {
        let server = test_server(PoolOptions::default());
        let (status, _, _) = http_request(server.addr(), "GET", "/interfaces/no/body", None);
        assert_eq!(status, 404);
        let (status, _, _) = http_request(server.addr(), "GET", "/nope", None);
        assert_eq!(status, 404);
        let (status, _, _) = http_request(server.addr(), "GET", "/interfaces/onlyuser", None);
        assert_eq!(status, 400);
        server.shutdown();
    }

    #[test]
    fn malformed_bodies_are_400_not_500() {
        let server = test_server(PoolOptions::default());
        let (status, _, body) = http_request(server.addr(), "POST", "/logs", Some("{not json"));
        assert_eq!(status, 400);
        assert!(body.contains("error"));
        let (status, _, _) = http_request(
            server.addr(),
            "POST",
            "/logs",
            Some(r#"{"logs": [{"thread_id": "t"}]}"#),
        );
        assert_eq!(status, 202); // malformed items are counted, not fatal
        server.shutdown();
    }

    #[test]
    fn full_queues_yield_429_with_retry_after() {
        let server = test_server(PoolOptions {
            queue_depth: 2,
            ..PoolOptions::default()
        });
        let batch = r#"{"logs": [{"user_id": "ada", "thread_id": "t1", "queries": [
            "SELECT a FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x = 2",
            "SELECT a FROM t WHERE x = 3"
        ]}]}"#;
        let (status, headers, body) = http_request(server.addr(), "POST", "/logs", Some(batch));
        assert_eq!(status, 429, "{body}");
        assert!(headers
            .iter()
            .any(|(name, value)| name.eq_ignore_ascii_case("retry-after") && value == "1"));
        let counts = Json::parse(&body).unwrap();
        assert_eq!(counts.get("rejected").and_then(Json::as_f64), Some(3.0));
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_many_requests_per_connection() {
        let server = test_server(PoolOptions::default());
        let mut conn = Connection::open(server.addr()).expect("connect");
        for _ in 0..3 {
            let (status, headers, _) = conn.request("GET", "/healthz", None).expect("request");
            assert_eq!(status, 200);
            assert!(headers
                .iter()
                .any(|(n, v)| n.eq_ignore_ascii_case("connection") && v == "keep-alive"));
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_and_refuses_new_connections() {
        let server = test_server(PoolOptions::default());
        let addr = server.addr();
        let body =
            r#"{"user_id": "ada", "thread_id": "t1", "queries": ["SELECT a FROM t WHERE x = 1"]}"#;
        let (status, _, _) = http_request(addr, "POST", "/logs", Some(body));
        assert_eq!(status, 202);
        server.shutdown();
        // The queued statement was applied before the pool dropped.
        assert_eq!(server.pool().gauge().queries, 1);
    }
}
