//! The write-ahead ingest journal: per-shard, segmented, group-committed.
//!
//! ## Why
//!
//! Spill snapshots are event-driven (eviction, shutdown, checkpoint) — on their own, a
//! crash between events silently loses every statement acknowledged since the last one.
//! The journal closes that window with the classic WAL discipline: each accepted batch is
//! appended as a checksummed, length-prefixed record (the [`pi_ast::codec`] record frame)
//! and **fsynced before the batch is acknowledged**, so an ACK means the bytes needed to
//! reconstruct the statement are on disk.
//!
//! ## Layout
//!
//! One append-only segment file per pool shard (`shardNNN-EEEEEEEEEE.wal`), so appends
//! contend only with their shard's other tenants, never globally.  Each record's payload
//! carries `(user, thread, base sequence number, statements)`; a tenant's records appear
//! in its per-shard file in sequence order because the append happens under the tenant
//! lock, atomically with sequence assignment.
//!
//! **Group commit**: the append (buffered write) and the fsync are split.  Appends from
//! many tenants accumulate while one committer holds the shard's sync lock inside
//! `sync_data`; when it finishes, it publishes the durable watermark and every batch at or
//! below it acknowledges without issuing its own fsync.  An optional
//! [`DurabilityOptions::group_window`] adds a fixed wait before each fsync to widen the
//! batch further on high-latency disks.
//!
//! **Checkpointing**: [`Journal::rotate_all`] seals the active segments (fsync, then new
//! epoch) and the pool persists every tenant's session snapshot; once *all* snapshots are
//! durable, [`Journal::prune`] deletes the sealed segments.  Snapshots record each
//! tenant's applied sequence number, so replaying an un-pruned segment over a newer
//! snapshot is idempotent — recovery skips records below the snapshot's watermark —
//! which is what makes the truncation crash-safe without a global LSN.
//!
//! **Recovery**: [`Journal::open`] scans every existing segment in epoch order through
//! the tolerant record scanner: torn or corrupt trailing records (a crash mid-append, a
//! partial sector flush) are detected by length + checksum validation and discarded —
//! never replayed — and everything before them is returned grouped per tenant, sorted by
//! sequence number, for the pool to replay through the normal ingest path.

use pi_ast::codec::{self, CodecError, RecordScanner};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[cfg(any(test, feature = "faults"))]
use crate::faults::{FaultOp, FaultPlan};

/// Configuration of the crash-safety layer (journal + checkpoints), carried by
/// `PoolOptions::durability`.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding journal segments and spill snapshots.  Created if missing.
    pub dir: PathBuf,
    /// Extra wait before each group-commit fsync, letting concurrent appenders pile onto
    /// the same sync.  Zero (the default) still group-commits — appends that arrive while
    /// a sync is in flight ride the next one — but adds no latency.
    pub group_window: Duration,
    /// Journal bytes accumulated since the last checkpoint that trigger the next one
    /// (bounding both recovery time and disk growth).
    pub checkpoint_bytes: u64,
    /// Whether to fsync journal appends before acknowledging (and spill files before
    /// pruning).  Disabling trades the zero-acked-loss guarantee for speed: an ACK then
    /// only means "written to the OS", and a machine-level crash may lose tail batches.
    pub fsync: bool,
    /// Deterministic fault injection for the crash-recovery suite.
    #[cfg(any(test, feature = "faults"))]
    pub faults: Option<Arc<FaultPlan>>,
}

impl DurabilityOptions {
    /// Durability rooted at `dir` with production defaults: fsync on, no extra group
    /// window, checkpoint every 8 MiB of journal.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityOptions {
        DurabilityOptions {
            dir: dir.into(),
            group_window: Duration::ZERO,
            checkpoint_bytes: 8 * 1024 * 1024,
            fsync: true,
            #[cfg(any(test, feature = "faults"))]
            faults: None,
        }
    }
}

/// A batch's position in the journal, returned by [`Journal::append`] and redeemed by
/// [`Journal::commit`] — the batch may be acknowledged once every byte up to `end` of
/// segment `epoch` is durable.
#[derive(Debug, Clone, Copy)]
pub struct Ticket {
    shard: usize,
    epoch: u64,
    end: u64,
}

/// One statement recovered from the journal tail.
#[derive(Debug, Clone)]
pub struct RecoveredStatement {
    /// The tenant-local sequence number (statements numbered from 0 in accept order).
    pub seq: u64,
    /// The dialect name the statement was tagged with at ingest.
    pub dialect: String,
    /// The statement text.
    pub text: Arc<str>,
}

/// Everything [`Journal::open`] salvaged from the previous process's journal.
#[derive(Debug, Default)]
pub struct RecoveredLog {
    /// Per-tenant replay tails, sorted by sequence number (duplicates — possible when a
    /// sealed segment outlived its checkpoint — keep the first instance).
    pub tenants: HashMap<(String, String), Vec<RecoveredStatement>>,
    /// Intact records scanned.
    pub records: u64,
    /// Statements carried by those records.
    pub statements: u64,
    /// Segments whose scan stopped at a torn or corrupt record.
    pub torn_tails: u64,
    /// Bytes discarded as torn/corrupt (trailing bytes past the last intact record).
    pub discarded_bytes: u64,
    /// Journal bytes scanned (counts toward the first checkpoint trigger).
    pub bytes: u64,
}

/// Point-in-time journal counters for `/stats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalStats {
    /// Records appended over the journal's lifetime.
    pub appended_records: u64,
    /// Bytes appended over the journal's lifetime.
    pub appended_bytes: u64,
    /// Fsyncs issued (group commit batches many records into each).
    pub syncs: u64,
    /// Bytes accumulated since the last checkpoint (drives the next trigger).
    pub unchecked_bytes: u64,
    /// True once a journal write or sync failed: the pool stops acknowledging new work
    /// (previously acked state stays durable) and readiness reports unready.
    pub failed: bool,
}

struct WalState {
    epoch: u64,
    file: Option<File>,
    path: Option<PathBuf>,
    /// Bytes written to the active segment (≥ the durable watermark).
    written: u64,
    /// Sealed (fsynced, rotated-out) segments awaiting a successful checkpoint's prune.
    sealed: Vec<PathBuf>,
}

/// The group-commit watermark: every byte of segment `epoch` up to `durable` is fsynced.
struct SyncState {
    epoch: u64,
    durable: u64,
}

struct ShardJournal {
    state: Mutex<WalState>,
    sync: Mutex<SyncState>,
}

/// The write-ahead journal; see the module docs.  Lock order within a shard is
/// `sync → state` (commit holds `sync` across the fsync while peeking `state` briefly);
/// `append` takes only `state`, so appends flow while a sync is in flight — that overlap
/// *is* the group commit.
pub struct Journal {
    opts: DurabilityOptions,
    shards: Vec<ShardJournal>,
    /// Segments inherited from the previous process, pruned at the next full checkpoint.
    recovered_files: Mutex<Vec<PathBuf>>,
    appended_records: AtomicU64,
    appended_bytes: AtomicU64,
    syncs: AtomicU64,
    unchecked_bytes: AtomicU64,
    failed: AtomicBool,
}

/// The record tag for an ingest batch (room for future record kinds).
const TAG_BATCH: u8 = 1;

fn segment_path(dir: &Path, shard: usize, epoch: u64) -> PathBuf {
    dir.join(format!("shard{shard:03}-{epoch:010}.wal"))
}

/// Parses `(shard, epoch)` out of a segment file name.
fn parse_segment_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("shard")?.strip_suffix(".wal")?;
    let (shard, epoch) = rest.split_once('-')?;
    Some((shard.parse().ok()?, epoch.parse().ok()?))
}

/// Encodes one batch record payload: tag, tenant key, base sequence number, statements.
pub(crate) fn encode_batch_record(
    user: &str,
    thread: &str,
    seq: u64,
    statements: &[(pi_ast::Dialect, Arc<str>)],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        32 + user.len()
            + thread.len()
            + statements
                .iter()
                .map(|(d, t)| d.name().len() + t.len() + 4)
                .sum::<usize>(),
    );
    let w = &mut buf;
    codec::put_u8(w, TAG_BATCH).expect("vec write");
    codec::put_str(w, user).expect("vec write");
    codec::put_str(w, thread).expect("vec write");
    codec::put_varint(w, seq).expect("vec write");
    codec::put_varint(w, statements.len() as u64).expect("vec write");
    for (dialect, text) in statements {
        codec::put_str(w, dialect.name()).expect("vec write");
        codec::put_str(w, text).expect("vec write");
    }
    buf
}

/// Decodes a batch record payload (the payload already passed the frame checksum, so a
/// failure here means a format break, not disk corruption — surfaced as `Corrupt`).
#[allow(clippy::type_complexity)]
fn decode_batch_record(
    payload: &[u8],
) -> Result<((String, String), u64, Vec<(String, Arc<str>)>), CodecError> {
    let r = &mut &*payload;
    let tag = codec::take_u8(r)?;
    if tag != TAG_BATCH {
        return Err(codec::corrupt(format!("unknown journal record tag {tag}")));
    }
    let user = codec::take_str(r)?;
    let thread = codec::take_str(r)?;
    let seq = codec::take_varint(r)?;
    let count = codec::take_count(r)?;
    let mut statements = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let dialect = codec::take_str(r)?;
        let text: Arc<str> = codec::take_str(r)?.into();
        statements.push((dialect, text));
    }
    Ok(((user, thread), seq, statements))
}

impl Journal {
    /// Opens (or creates) the journal under `opts.dir` with `shards` active segments,
    /// first scanning every segment left by a previous process into a [`RecoveredLog`].
    ///
    /// Scanned segments stay on disk — they are the durable source of truth until the
    /// first successful checkpoint prunes them — and new appends go to fresh segments at
    /// an epoch above every recovered one.
    pub fn open(opts: DurabilityOptions, shards: usize) -> io::Result<(Journal, RecoveredLog)> {
        fs::create_dir_all(&opts.dir)?;
        let mut segments: Vec<(usize, u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&opts.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some((shard, epoch)) = name.to_str().and_then(parse_segment_name) {
                segments.push((shard, epoch, entry.path()));
            }
        }
        // Deterministic scan order: epoch, then shard (per-tenant order is decided by the
        // sequence numbers inside the records; this only settles duplicate-seq ties).
        segments.sort_by_key(|a| (a.1, a.0));
        let mut recovered = RecoveredLog::default();
        for (_, _, path) in &segments {
            match fs::read(path) {
                Ok(bytes) => {
                    recovered.bytes += bytes.len() as u64;
                    let mut scan = RecordScanner::new(&bytes);
                    while let Some(payload) = scan.next_record() {
                        match decode_batch_record(payload) {
                            Ok((key, seq, statements)) => {
                                recovered.records += 1;
                                recovered.statements += statements.len() as u64;
                                let tail = recovered.tenants.entry(key).or_default();
                                for (i, (dialect, text)) in statements.into_iter().enumerate() {
                                    tail.push(RecoveredStatement {
                                        seq: seq + i as u64,
                                        dialect,
                                        text,
                                    });
                                }
                            }
                            Err(_) => {
                                // A verified frame that does not decode is a format break;
                                // skip the record, keep scanning the segment.
                                recovered.torn_tails += 1;
                            }
                        }
                    }
                    if scan.torn() {
                        recovered.torn_tails += 1;
                        recovered.discarded_bytes += scan.trailing_bytes() as u64;
                    }
                }
                Err(_) => {
                    // Unreadable segment: degrade to whatever the other segments hold.
                    recovered.torn_tails += 1;
                }
            }
        }
        for tail in recovered.tenants.values_mut() {
            tail.sort_by_key(|s| s.seq);
            tail.dedup_by_key(|s| s.seq);
        }
        let next_epoch = segments.iter().map(|s| s.1).max().map_or(0, |e| e + 1);
        let journal = Journal {
            shards: (0..shards.max(1))
                .map(|_| ShardJournal {
                    state: Mutex::new(WalState {
                        epoch: next_epoch,
                        file: None,
                        path: None,
                        written: 0,
                        sealed: Vec::new(),
                    }),
                    sync: Mutex::new(SyncState {
                        epoch: next_epoch,
                        durable: 0,
                    }),
                })
                .collect(),
            recovered_files: Mutex::new(segments.into_iter().map(|s| s.2).collect()),
            appended_records: AtomicU64::new(0),
            appended_bytes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            unchecked_bytes: AtomicU64::new(recovered.bytes),
            failed: AtomicBool::new(false),
            opts,
        };
        Ok((journal, recovered))
    }

    /// The options the journal runs with.
    pub fn options(&self) -> &DurabilityOptions {
        &self.opts
    }

    #[cfg(any(test, feature = "faults"))]
    fn fault(&self, op: FaultOp) -> io::Result<()> {
        match &self.opts.faults {
            Some(plan) => plan.hit(op),
            None => Ok(()),
        }
    }

    fn fail(&self, err: io::Error) -> io::Error {
        self.failed.store(true, Ordering::SeqCst);
        err
    }

    /// True once a journal write or sync has failed; the pool stops acknowledging.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::SeqCst)
    }

    /// Appends one record frame to a shard's active segment, returning the [`Ticket`] to
    /// [`commit`](Journal::commit) before acknowledging.
    ///
    /// Callers invoke this under the tenant lock, together with sequence assignment and
    /// queue insertion — that is what makes a tenant's file order equal its sequence
    /// order.  Only the buffered write happens here; the fsync is the commit's.
    ///
    /// Any failure marks the whole journal failed: a partial append leaves bytes a later
    /// append would follow, so continuing could make recovery discard *good* records
    /// behind a bad prefix.  Fail-stop is the safe degradation.
    pub fn append(&self, shard: usize, payload: &[u8]) -> io::Result<Ticket> {
        if self.is_failed() {
            return Err(io::Error::other("journal is failed"));
        }
        let frame = codec::record_frame(payload);
        let sj = &self.shards[shard % self.shards.len()];
        let mut st = sj.state.lock().unwrap_or_else(|p| p.into_inner());
        #[cfg(any(test, feature = "faults"))]
        self.fault(FaultOp::JournalAppend)
            .map_err(|e| self.fail(e))?;
        if st.file.is_none() {
            let path = segment_path(&self.opts.dir, shard % self.shards.len(), st.epoch);
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| self.fail(e))?;
            st.path = Some(path);
            st.file = Some(file);
        }
        let file = st.file.as_mut().expect("active segment");
        file.write_all(&frame).map_err(|e| self.fail(e))?;
        st.written += frame.len() as u64;
        let ticket = Ticket {
            shard: shard % self.shards.len(),
            epoch: st.epoch,
            end: st.written,
        };
        drop(st);
        self.appended_records.fetch_add(1, Ordering::Relaxed);
        self.appended_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.unchecked_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(ticket)
    }

    /// Makes a ticket's bytes durable (group commit): returns once the shard's durable
    /// watermark covers it, fsyncing at most once — a sync that was already in flight
    /// when the append landed covers it for free.
    pub fn commit(&self, ticket: Ticket) -> io::Result<()> {
        if !self.opts.fsync {
            return Ok(());
        }
        if self.is_failed() {
            return Err(io::Error::other("journal is failed"));
        }
        let sj = &self.shards[ticket.shard];
        let mut sync = sj.sync.lock().unwrap_or_else(|p| p.into_inner());
        if sync.epoch > ticket.epoch || (sync.epoch == ticket.epoch && sync.durable >= ticket.end) {
            return Ok(());
        }
        // Holding the sync lock through the window and the fsync is the group commit:
        // later committers block here while their records (already appended) accumulate
        // under this sync; when it publishes the watermark they return without syncing.
        if !self.opts.group_window.is_zero() {
            std::thread::sleep(self.opts.group_window);
        }
        let (file, written, epoch) = {
            let st = sj.state.lock().unwrap_or_else(|p| p.into_inner());
            if st.epoch > ticket.epoch {
                // The segment was sealed (rotation fsyncs before sealing): durable.
                if st.epoch > sync.epoch {
                    sync.epoch = st.epoch;
                    sync.durable = 0;
                }
                return Ok(());
            }
            let file = st
                .file
                .as_ref()
                .expect("ticket implies an active segment")
                .try_clone()
                .map_err(|e| self.fail(e))?;
            (file, st.written, st.epoch)
        };
        #[cfg(any(test, feature = "faults"))]
        self.fault(FaultOp::JournalSync).map_err(|e| self.fail(e))?;
        file.sync_data().map_err(|e| self.fail(e))?;
        self.syncs.fetch_add(1, Ordering::Relaxed);
        if epoch > sync.epoch {
            sync.epoch = epoch;
            sync.durable = written;
        } else {
            sync.durable = sync.durable.max(written);
        }
        Ok(())
    }

    /// Seals every shard's active segment (fsync, bump epoch) — step one of a
    /// checkpoint.  Sealed segments are deleted only by [`prune`](Journal::prune), after
    /// the checkpoint has made every tenant's snapshot durable.
    pub fn rotate_all(&self) -> io::Result<()> {
        for (shard, sj) in self.shards.iter().enumerate() {
            let mut st = sj.state.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(file) = &st.file {
                #[cfg(any(test, feature = "faults"))]
                self.fault(FaultOp::JournalSync).map_err(|e| self.fail(e))?;
                if self.opts.fsync {
                    file.sync_data().map_err(|e| self.fail(e))?;
                    self.syncs.fetch_add(1, Ordering::Relaxed);
                }
                st.file = None;
                if let Some(path) = st.path.take() {
                    st.sealed.push(path);
                }
                st.epoch += 1;
                st.written = 0;
            }
            let _ = shard;
        }
        Ok(())
    }

    /// Deletes every sealed and recovered segment — step three of a checkpoint, only
    /// after every tenant's snapshot is durable.  Returns how many files were removed.
    pub fn prune(&self) -> u64 {
        let mut pruned = 0u64;
        for sj in &self.shards {
            let mut st = sj.state.lock().unwrap_or_else(|p| p.into_inner());
            for path in st.sealed.drain(..) {
                if fs::remove_file(&path).is_ok() {
                    pruned += 1;
                }
            }
        }
        for path in self
            .recovered_files
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
        {
            if fs::remove_file(&path).is_ok() {
                pruned += 1;
            }
        }
        self.unchecked_bytes.store(0, Ordering::Relaxed);
        pruned
    }

    /// Whether the bytes accumulated since the last checkpoint warrant the next one.
    pub fn should_checkpoint(&self) -> bool {
        self.unchecked_bytes.load(Ordering::Relaxed) >= self.opts.checkpoint_bytes
    }

    /// Point-in-time counters for `/stats`.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appended_records: self.appended_records.load(Ordering::Relaxed),
            appended_bytes: self.appended_bytes.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            unchecked_bytes: self.unchecked_bytes.load(Ordering::Relaxed),
            failed: self.is_failed(),
        }
    }

    /// Simulates the on-disk aftermath of a process crash: every *unsynced* byte of each
    /// active segment vanishes (lost page cache), except for a deterministic torn tail of
    /// up to the plan's `torn_keep` bytes (a partial sector flush).  Sealed and recovered
    /// segments were fsynced, so they survive whole.  The journal is unusable afterwards;
    /// the harness reopens a fresh pool over the directory.
    #[cfg(any(test, feature = "faults"))]
    pub fn simulate_crash(&self) -> io::Result<()> {
        self.failed.store(true, Ordering::SeqCst);
        let torn = self.opts.faults.as_ref().map_or(0, |plan| plan.torn_keep());
        for sj in &self.shards {
            let sync = sj.sync.lock().unwrap_or_else(|p| p.into_inner());
            let mut st = sj.state.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(file) = &st.file {
                let durable = if self.opts.fsync && sync.epoch == st.epoch {
                    sync.durable
                } else if self.opts.fsync {
                    0
                } else {
                    // Without fsync nothing is guaranteed; model total page-cache loss.
                    0
                };
                let keep = durable + torn.min(st.written.saturating_sub(durable));
                file.set_len(keep)?;
                file.sync_data()?;
                st.written = keep;
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("dir", &self.opts.dir)
            .field("shards", &self.shards.len())
            .field("failed", &self.is_failed())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Dialect;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pi-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn batch(texts: &[&str]) -> Vec<(Dialect, Arc<str>)> {
        texts
            .iter()
            .map(|t| (Dialect::SQL, Arc::from(*t)))
            .collect()
    }

    #[test]
    fn append_commit_reopen_round_trips_records() {
        let dir = tmp_dir("roundtrip");
        let (journal, recovered) = Journal::open(DurabilityOptions::new(&dir), 2).unwrap();
        assert!(recovered.tenants.is_empty());
        let b1 = batch(&["SELECT a FROM t", "SELECT b FROM t"]);
        let b2 = batch(&["SELECT c FROM u"]);
        let t1 = journal
            .append(0, &encode_batch_record("ada", "t1", 0, &b1))
            .unwrap();
        let t2 = journal
            .append(1, &encode_batch_record("bob", "t1", 0, &b2))
            .unwrap();
        let t3 = journal
            .append(
                0,
                &encode_batch_record("ada", "t1", 2, &batch(&["SELECT d FROM t"])),
            )
            .unwrap();
        journal.commit(t1).unwrap();
        journal.commit(t2).unwrap();
        journal.commit(t3).unwrap();
        let stats = journal.stats();
        assert_eq!(stats.appended_records, 3);
        assert!(stats.syncs >= 1, "group commit still syncs at least once");
        drop(journal);

        let (journal, recovered) = Journal::open(DurabilityOptions::new(&dir), 4).unwrap();
        assert_eq!(recovered.records, 3);
        assert_eq!(recovered.statements, 4);
        assert_eq!(recovered.torn_tails, 0);
        let ada = &recovered.tenants[&("ada".to_string(), "t1".to_string())];
        assert_eq!(ada.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(&*ada[2].text, "SELECT d FROM t");
        assert_eq!(ada[0].dialect, "sql");
        let bob = &recovered.tenants[&("bob".to_string(), "t1".to_string())];
        assert_eq!(bob.len(), 1);
        drop(journal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tails_are_discarded_never_replayed() {
        let dir = tmp_dir("torn");
        let (journal, _) = Journal::open(DurabilityOptions::new(&dir), 1).unwrap();
        let t = journal
            .append(
                0,
                &encode_batch_record("ada", "t1", 0, &batch(&["SELECT a FROM t"])),
            )
            .unwrap();
        journal.commit(t).unwrap();
        let t = journal
            .append(
                0,
                &encode_batch_record("ada", "t1", 1, &batch(&["SELECT b FROM t"])),
            )
            .unwrap();
        journal.commit(t).unwrap();
        drop(journal);
        // Tear the tail: truncate the single segment mid-record.
        let seg = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "wal"))
            .unwrap();
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 5]).unwrap();
        let (_, recovered) = Journal::open(DurabilityOptions::new(&dir), 1).unwrap();
        assert_eq!(recovered.records, 1);
        assert_eq!(recovered.torn_tails, 1);
        assert!(recovered.discarded_bytes > 0);
        let ada = &recovered.tenants[&("ada".to_string(), "t1".to_string())];
        assert_eq!(ada.len(), 1);
        assert_eq!(&*ada[0].text, "SELECT a FROM t");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_segments_and_prune_deletes_them() {
        let dir = tmp_dir("rotate");
        let (journal, _) = Journal::open(DurabilityOptions::new(&dir), 1).unwrap();
        let t = journal
            .append(
                0,
                &encode_batch_record("ada", "t1", 0, &batch(&["SELECT a FROM t"])),
            )
            .unwrap();
        journal.commit(t).unwrap();
        journal.rotate_all().unwrap();
        // Post-rotation appends land in a fresh segment; the sealed one still exists.
        let t = journal
            .append(
                0,
                &encode_batch_record("ada", "t1", 1, &batch(&["SELECT b FROM t"])),
            )
            .unwrap();
        journal.commit(t).unwrap();
        let wal_files = || {
            fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .filter(|p| p.extension().is_some_and(|e| e == "wal"))
                .count()
        };
        assert_eq!(wal_files(), 2);
        assert_eq!(journal.prune(), 1);
        assert_eq!(wal_files(), 1);
        // Only the post-checkpoint record survives on disk.
        drop(journal);
        let (_, recovered) = Journal::open(DurabilityOptions::new(&dir), 1).unwrap();
        let ada = &recovered.tenants[&("ada".to_string(), "t1".to_string())];
        assert_eq!(ada.len(), 1);
        assert_eq!(ada[0].seq, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_fail_stop_the_journal() {
        let dir = tmp_dir("faults");
        let mut opts = DurabilityOptions::new(&dir);
        opts.faults = Some(Arc::new(
            FaultPlan::new().with_io_error(FaultOp::JournalSync, 1),
        ));
        let (journal, _) = Journal::open(opts, 1).unwrap();
        let t = journal
            .append(
                0,
                &encode_batch_record("ada", "t1", 0, &batch(&["SELECT a FROM t"])),
            )
            .unwrap();
        assert!(journal.commit(t).is_err());
        assert!(journal.is_failed());
        // Fail-stop: later appends are refused rather than risking a gapped log.
        assert!(journal
            .append(
                0,
                &encode_batch_record("ada", "t1", 1, &batch(&["SELECT b FROM t"]))
            )
            .is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_crash_drops_unsynced_bytes_but_keeps_a_torn_tail() {
        let dir = tmp_dir("crash");
        let mut opts = DurabilityOptions::new(&dir);
        opts.faults = Some(Arc::new(FaultPlan::new().with_torn_keep(7)));
        let (journal, _) = Journal::open(opts, 1).unwrap();
        let t = journal
            .append(
                0,
                &encode_batch_record("ada", "t1", 0, &batch(&["SELECT a FROM t"])),
            )
            .unwrap();
        journal.commit(t).unwrap();
        // Appended but never committed: not durable.
        journal
            .append(
                0,
                &encode_batch_record("ada", "t1", 1, &batch(&["SELECT b FROM t"])),
            )
            .unwrap();
        journal.simulate_crash().unwrap();
        let (_, recovered) = Journal::open(DurabilityOptions::new(&dir), 1).unwrap();
        let ada = &recovered.tenants[&("ada".to_string(), "t1".to_string())];
        assert_eq!(ada.len(), 1, "only the committed record survives");
        assert_eq!(recovered.torn_tails, 1, "the 7-byte torn tail is detected");
        assert_eq!(recovered.discarded_bytes, 7);
        let _ = fs::remove_dir_all(&dir);
    }
}
