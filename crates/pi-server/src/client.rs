//! A minimal blocking HTTP/1.1 client for loopback use: the crate's own tests, the
//! examples, and the serving benchmark's load generator.  It speaks exactly the subset the
//! server emits (`Content-Length` framing, keep-alive) — it is not a general HTTP client.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One response: status code, headers (name, value), body.
pub type Response = (u16, Vec<(String, String)>, String);

/// A keep-alive connection to the server, good for many sequential requests.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Connects to the server.
    pub fn open(addr: SocketAddr) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection { stream, reader })
    }

    /// Sends one request and reads its response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        send_request(&mut self.stream, method, path, body)?;
        read_response(&mut self.reader)
    }
}

/// One-shot request on a fresh connection.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Response> {
    Connection::open(addr)?.request(method, path, body)
}

/// Writes a request with `Content-Length` framing.
pub fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<()> {
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())
}

/// Reads one `Content-Length`-framed response.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<Response> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("missing status code"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_string();
            let value = value.trim().to_string();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| bad("bad Content-Length"))?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("response body is not UTF-8"))?;
    Ok((status, headers, body))
}
