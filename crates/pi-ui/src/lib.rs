//! # pi-ui — compiling interfaces into an editable layout and a web application
//!
//! After mapping (§5.3), "an editor interface renders the widgets in a grid.  The user can
//! optionally edit, add labels, or change the widget type for each widget … We then compile
//! the interface into a web application".  This crate provides both halves:
//!
//! * [`editor`] — an editable grid model: per-widget labels, positions, and widget-type
//!   overrides (validated against the widget rules),
//! * [`html`] — the compiler that emits a self-contained HTML + JavaScript page.  The page
//!   embeds the initial query AST and every widget's path/options as JSON (written by a small
//!   built-in writer, [`json`]); interacting with a widget swaps the corresponding subtree and
//!   re-renders the query string, mirroring Figure 2b's `interaction → exec(q2) → render()`
//!   loop (the `exec()` call is left as a hook for the hosting application).
//!
//! The compiler is front-end agnostic: fragments render through a
//! [`Frontends`](pi_ast::Frontends) registry keyed by each subtree's originating dialect,
//! so a mixed SQL + dataframe interface shows every option in its own language — no direct
//! dependency on any single parser crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod editor;
pub mod html;
pub mod json;

pub use editor::{EditorLayout, WidgetPlacement};
pub use html::{compile_html, compile_html_with, interface_spec};
pub use json::{Json, JsonError};
