//! A minimal JSON writer and reader (no third-party dependency).
//!
//! The writer embeds interface specifications inside the generated HTML page (with the
//! `<script>`-safe escaping the HTML compiler needs) and serialises the server's HTTP
//! responses; the reader ([`Json::parse`]) decodes ingest payloads.  The reader is
//! deliberately *tolerant* in the ways a log-ingest endpoint must be — unknown object keys
//! are simply carried through for the caller to ignore, trailing commas are accepted, and
//! any JSON value is allowed at the top level — while still rejecting structurally broken
//! text with a byte offset, so a malformed batch fails loudly instead of half-ingesting.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (always rendered as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn string(value: &str) -> Json {
        Json::String(value.to_string())
    }

    /// Parses JSON text into a value tree.
    ///
    /// Accepts standard JSON plus two ingest-friendly tolerances: trailing commas inside
    /// arrays and objects, and any value (not just an object or array) at the top level.
    /// Duplicate object keys are kept in arrival order ([`Json::get`] returns the first).
    /// Errors carry the byte offset where parsing stopped.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the top-level value"));
        }
        Ok(value)
    }

    /// Looks up a key in an object (first match wins); `None` for non-objects and missing
    /// keys — callers chain lookups without caring which of the two happened, which is
    /// exactly the tolerance ingest wants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity literals; emitting them produces text no
                    // parser accepts.  Follow the convention of serde_json and
                    // `JSON.stringify`: non-finite numbers serialise as null.
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::String(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        // `<` is escaped so the spec can be embedded raw inside a
                        // `<script>` block: a literal `</script>` (or `<!--`) in a SQL
                        // fragment or label would otherwise terminate the script element
                        // and inject markup into the page.
                        '<' => out.push_str("\\u003c"),
                        // U+2028/U+2029 are valid in JSON strings but are line
                        // terminators in JavaScript source; escape them for the same
                        // script-embedding reason.
                        '\u{2028}' => out.push_str("\\u2028"),
                        '\u{2029}' => out.push_str("\\u2029"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::String(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Serialises the value to compact JSON text.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// A parse failure: what went wrong and the byte offset where the parser stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting ceiling for the recursive-descent reader: ingest payloads are a couple of levels
/// deep, so anything past this is hostile input trying to overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("value nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                Some(b'"') => {
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1, // trailing comma before '}' is fine
                        Some(b'}') => {}
                        _ => return Err(self.error("expected ',' or '}' in object")),
                    }
                }
                _ => return Err(self.error("expected a string key or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                Some(_) => {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1, // trailing comma before ']' is fine
                        Some(b']') => {}
                        _ => return Err(self.error("expected ',' or ']' in array")),
                    }
                }
                None => return Err(self.error("unterminated array")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Number(n)),
            _ => {
                self.pos = start;
                Err(self.error("malformed number"))
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest escape-free run in one step; the input is valid UTF-8 (it
            // arrived as &str), so byte-wise scanning never splits a character.
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("UTF-8 input"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue; // unicode_escape leaves pos after the escape
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.error("unterminated string")),
                Some(_) => unreachable!("the scan above stops only at '\"' or '\\'"),
            }
        }
    }

    /// Decodes `XXXX` (pos is at the first hex digit), including a following low-surrogate
    /// escape for supplementary-plane characters; leaves pos after the consumed escape(s).
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // High surrogate: needs a \uXXXX low surrogate to form a scalar value.
            if !self.eat_literal("\\u") {
                return Err(self.error("unpaired surrogate escape"));
            }
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.error("invalid low surrogate"));
            }
            let scalar = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
            char::from_u32(scalar).ok_or_else(|| self.error("invalid surrogate pair"))
        } else {
            char::from_u32(high).ok_or_else(|| self.error("unpaired surrogate escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("expected four hex digits")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Number(3.0).to_string(), "3");
        assert_eq!(Json::Number(3.5).to_string(), "3.5");
        assert_eq!(Json::string("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::string("a\"b\\c\nd").to_string(),
            "\"a\\\"b\\\\c\\nd\""
        );
        assert_eq!(Json::String("\u{1}".into()).to_string(), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_serialise_as_null() {
        // Regression: these used to render as `NaN` / `inf`, which no JSON parser accepts.
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
        assert_eq!(Json::Number(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Number(f64::NEG_INFINITY).to_string(), "null");
        // Finite values are unaffected.
        assert_eq!(Json::Number(-2.5).to_string(), "-2.5");
        assert_eq!(
            Json::Array(vec![Json::Number(1.0), Json::Number(f64::NAN)]).to_string(),
            "[1,null]"
        );
    }

    #[test]
    fn escapes_script_terminators_for_html_embedding() {
        // Regression: a literal `</script>` inside a string used to pass through verbatim,
        // terminating the surrounding <script> block when the JSON is embedded in HTML.
        assert_eq!(
            Json::string("</script><script>alert(1)").to_string(),
            "\"\\u003c/script>\\u003cscript>alert(1)\""
        );
        assert_eq!(
            Json::string("a\u{2028}b\u{2029}c").to_string(),
            "\"a\\u2028b\\u2029c\""
        );
        // `>` needs no escaping; other text is untouched.
        assert_eq!(Json::string("1 > 0").to_string(), "\"1 > 0\"");
    }

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Number(-250.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::string("hi"));
        assert_eq!(
            Json::parse("[1, \"two\", [3]]").unwrap(),
            Json::Array(vec![
                Json::Number(1.0),
                Json::string("two"),
                Json::Array(vec![Json::Number(3.0)]),
            ])
        );
        assert_eq!(
            Json::parse("{\"a\": 1, \"b\": {\"c\": null}}").unwrap(),
            Json::Object(vec![
                ("a".into(), Json::Number(1.0)),
                ("b".into(), Json::Object(vec![("c".into(), Json::Null)])),
            ])
        );
    }

    #[test]
    fn parse_decodes_escapes_and_surrogate_pairs() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\ndAé""#).unwrap(),
            Json::string("a\"b\\c\ndAé")
        );
        // U+1F600 as a surrogate pair, and a real multibyte char raw.
        assert_eq!(
            Json::parse(r#""😀 café""#).unwrap(),
            Json::string("😀 café")
        );
        assert!(Json::parse(r#""\ud83d""#).is_err()); // unpaired high surrogate
        assert!(Json::parse(r#""\udc00""#).is_err()); // lone low surrogate
    }

    #[test]
    fn parse_round_trips_the_writer() {
        let value = Json::Object(vec![
            ("name".into(), Json::string("slider </script>\u{2028}")),
            (
                "options".into(),
                Json::Array(vec![Json::Number(1.0), Json::Null, Json::Bool(false)]),
            ),
        ]);
        assert_eq!(Json::parse(&value.to_string()).unwrap(), value);
    }

    #[test]
    fn parse_tolerates_trailing_commas_and_unknown_keys() {
        let parsed = Json::parse("{\"known\": 1, \"extra\": [2, 3,],}").unwrap();
        assert_eq!(parsed.get("known"), Some(&Json::Number(1.0)));
        assert_eq!(
            parsed.get("extra").and_then(Json::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(parsed.get("absent"), None);
    }

    #[test]
    fn parse_rejects_broken_text_with_an_offset() {
        for broken in [
            "",
            "{",
            "[1 2]",
            "{\"a\" 1}",
            "\"unterminated",
            "nul",
            "1.2.3",
            "{} trailing",
            "\"bad \\x escape\"",
        ] {
            let err = Json::parse(broken).unwrap_err();
            assert!(err.offset <= broken.len(), "offset out of range: {err}");
            assert!(!err.to_string().is_empty());
        }
        // The depth ceiling rejects stack-overflow bombs rather than crashing.
        let bomb = "[".repeat(4096) + &"]".repeat(4096);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn accessors_pick_fields_tolerantly() {
        let value = Json::parse("{\"s\": \"x\", \"n\": 7, \"b\": true, \"a\": []}").unwrap();
        assert_eq!(value.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(value.get("n").and_then(Json::as_f64), Some(7.0));
        assert_eq!(value.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(value.get("a").and_then(Json::as_array), Some(&[][..]));
        assert!(value.as_object().is_some());
        // Wrong-shape lookups answer None, never panic.
        assert_eq!(Json::Null.get("s"), None);
        assert_eq!(value.get("s").and_then(Json::as_f64), None);
    }

    #[test]
    fn serialises_nested_structures() {
        let value = Json::Object(vec![
            ("name".into(), Json::string("slider")),
            (
                "options".into(),
                Json::Array(vec![Json::Number(1.0), Json::Number(2.0)]),
            ),
            ("absent".into(), Json::Bool(false)),
        ]);
        assert_eq!(
            value.to_string(),
            "{\"name\":\"slider\",\"options\":[1,2],\"absent\":false}"
        );
    }
}
