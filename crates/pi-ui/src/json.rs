//! A minimal JSON writer (no third-party dependency) used to embed interface specifications
//! inside the generated HTML page.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (always rendered as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn string(value: &str) -> Json {
        Json::String(value.to_string())
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::String(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::String(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Serialises the value to compact JSON text.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Number(3.0).to_string(), "3");
        assert_eq!(Json::Number(3.5).to_string(), "3.5");
        assert_eq!(Json::string("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::string("a\"b\\c\nd").to_string(),
            "\"a\\\"b\\\\c\\nd\""
        );
        assert_eq!(Json::String("\u{1}".into()).to_string(), "\"\\u0001\"");
    }

    #[test]
    fn serialises_nested_structures() {
        let value = Json::Object(vec![
            ("name".into(), Json::string("slider")),
            (
                "options".into(),
                Json::Array(vec![Json::Number(1.0), Json::Number(2.0)]),
            ),
            ("absent".into(), Json::Bool(false)),
        ]);
        assert_eq!(
            value.to_string(),
            "{\"name\":\"slider\",\"options\":[1,2],\"absent\":false}"
        );
    }
}
