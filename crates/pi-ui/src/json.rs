//! A minimal JSON writer (no third-party dependency) used to embed interface specifications
//! inside the generated HTML page.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (always rendered as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn string(value: &str) -> Json {
        Json::String(value.to_string())
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity literals; emitting them produces text no
                    // parser accepts.  Follow the convention of serde_json and
                    // `JSON.stringify`: non-finite numbers serialise as null.
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::String(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        // `<` is escaped so the spec can be embedded raw inside a
                        // `<script>` block: a literal `</script>` (or `<!--`) in a SQL
                        // fragment or label would otherwise terminate the script element
                        // and inject markup into the page.
                        '<' => out.push_str("\\u003c"),
                        // U+2028/U+2029 are valid in JSON strings but are line
                        // terminators in JavaScript source; escape them for the same
                        // script-embedding reason.
                        '\u{2028}' => out.push_str("\\u2028"),
                        '\u{2029}' => out.push_str("\\u2029"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::String(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Serialises the value to compact JSON text.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Number(3.0).to_string(), "3");
        assert_eq!(Json::Number(3.5).to_string(), "3.5");
        assert_eq!(Json::string("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::string("a\"b\\c\nd").to_string(),
            "\"a\\\"b\\\\c\\nd\""
        );
        assert_eq!(Json::String("\u{1}".into()).to_string(), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_serialise_as_null() {
        // Regression: these used to render as `NaN` / `inf`, which no JSON parser accepts.
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
        assert_eq!(Json::Number(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Number(f64::NEG_INFINITY).to_string(), "null");
        // Finite values are unaffected.
        assert_eq!(Json::Number(-2.5).to_string(), "-2.5");
        assert_eq!(
            Json::Array(vec![Json::Number(1.0), Json::Number(f64::NAN)]).to_string(),
            "[1,null]"
        );
    }

    #[test]
    fn escapes_script_terminators_for_html_embedding() {
        // Regression: a literal `</script>` inside a string used to pass through verbatim,
        // terminating the surrounding <script> block when the JSON is embedded in HTML.
        assert_eq!(
            Json::string("</script><script>alert(1)").to_string(),
            "\"\\u003c/script>\\u003cscript>alert(1)\""
        );
        assert_eq!(
            Json::string("a\u{2028}b\u{2029}c").to_string(),
            "\"a\\u2028b\\u2029c\""
        );
        // `>` needs no escaping; other text is untouched.
        assert_eq!(Json::string("1 > 0").to_string(), "\"1 > 0\"");
    }

    #[test]
    fn serialises_nested_structures() {
        let value = Json::Object(vec![
            ("name".into(), Json::string("slider")),
            (
                "options".into(),
                Json::Array(vec![Json::Number(1.0), Json::Number(2.0)]),
            ),
            ("absent".into(), Json::Bool(false)),
        ]);
        assert_eq!(
            value.to_string(),
            "{\"name\":\"slider\",\"options\":[1,2],\"absent\":false}"
        );
    }
}
