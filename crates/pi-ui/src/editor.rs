//! The editable widget grid (§5.3).
//!
//! The generated widgets are laid out in a grid; the user can relabel them, move them, and
//! override the widget type (subject to the widget rules).  The layout is deliberately a plain
//! data structure so that a hosting application can persist or manipulate it.

use pi_core::Interface;
use pi_widgets::WidgetType;

/// The position and presentation of one widget in the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct WidgetPlacement {
    /// Index of the widget in the interface's widget list.
    pub widget: usize,
    /// Grid row (0-based).
    pub row: usize,
    /// Grid column (0-based).
    pub col: usize,
    /// The label shown next to the widget.
    pub label: String,
}

/// An editable grid layout over an interface's widgets.
#[derive(Debug, Clone)]
pub struct EditorLayout {
    placements: Vec<WidgetPlacement>,
    columns: usize,
}

impl EditorLayout {
    /// A default layout: widgets flow row-major into a grid with the given number of columns,
    /// labelled by their generated display labels.
    pub fn new(interface: &Interface, columns: usize) -> Self {
        let columns = columns.max(1);
        let placements = interface
            .widgets()
            .iter()
            .enumerate()
            .map(|(i, w)| WidgetPlacement {
                widget: i,
                row: i / columns,
                col: i % columns,
                label: w.display_label(),
            })
            .collect();
        EditorLayout {
            placements,
            columns,
        }
    }

    /// The grid width.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// The widget placements, row-major.
    pub fn placements(&self) -> &[WidgetPlacement] {
        &self.placements
    }

    /// Relabels one widget.
    pub fn set_label(&mut self, widget: usize, label: &str) {
        if let Some(p) = self.placements.iter_mut().find(|p| p.widget == widget) {
            p.label = label.to_string();
        }
    }

    /// Moves one widget to a new grid cell (no collision checking — later widgets simply
    /// render after earlier ones in the same cell).
    pub fn move_widget(&mut self, widget: usize, row: usize, col: usize) {
        if let Some(p) = self.placements.iter_mut().find(|p| p.widget == widget) {
            p.row = row;
            p.col = col;
        }
    }

    /// Overrides a widget's type in the interface, provided the new type's rule accepts the
    /// widget's domain (§5.3: the user "can … change the widget type for each widget").
    /// Returns whether the override was applied.
    pub fn override_widget_type(
        interface: &mut Interface,
        widget: usize,
        new_type: WidgetType,
    ) -> bool {
        let Some(w) = interface.widgets_mut().get_mut(widget) else {
            return false;
        };
        if !new_type.accepts(&w.domain) {
            return false;
        }
        w.cost = new_type.default_cost().eval(w.domain.size());
        w.ty = new_type;
        true
    }

    /// Number of grid rows currently used.
    pub fn rows(&self) -> usize {
        self.placements.iter().map(|p| p.row + 1).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::{PiOptions, PrecisionInterfaces};

    fn sample_interface() -> Interface {
        let log = "
            SELECT a FROM t WHERE x = 1 AND c = 'US';
            SELECT a FROM t WHERE x = 5 AND c = 'EU';
            SELECT a FROM t WHERE x = 9 AND c = 'CN';
            SELECT a FROM t WHERE x = 12 AND c = 'BR';
        ";
        PrecisionInterfaces::new(PiOptions::default())
            .from_sql_log(log)
            .unwrap()
            .interface
    }

    #[test]
    fn default_layout_flows_row_major() {
        let iface = sample_interface();
        let layout = EditorLayout::new(&iface, 2);
        assert_eq!(layout.placements().len(), iface.widgets().len());
        assert_eq!(layout.columns(), 2);
        for p in layout.placements() {
            assert_eq!(p.row, p.widget / 2);
            assert_eq!(p.col, p.widget % 2);
            assert!(!p.label.is_empty());
        }
        assert!(layout.rows() >= 1);
    }

    #[test]
    fn labels_and_positions_are_editable() {
        let iface = sample_interface();
        let mut layout = EditorLayout::new(&iface, 3);
        layout.set_label(0, "Threshold");
        layout.move_widget(0, 4, 2);
        let p = &layout.placements()[0];
        assert_eq!(p.label, "Threshold");
        assert_eq!((p.row, p.col), (4, 2));
        assert_eq!(layout.rows(), 5);
    }

    #[test]
    fn type_overrides_respect_widget_rules() {
        let mut iface = sample_interface();
        // Find the numeric widget and switch it to a textbox (always allowed for literals).
        let slider_idx = iface
            .widgets()
            .iter()
            .position(|w| w.ty == WidgetType::Slider)
            .expect("numeric widget");
        assert!(EditorLayout::override_widget_type(
            &mut iface,
            slider_idx,
            WidgetType::Textbox
        ));
        assert_eq!(iface.widgets()[slider_idx].ty, WidgetType::Textbox);
        // A slider cannot be forced onto a string-valued widget.
        let string_idx = iface
            .widgets()
            .iter()
            .position(|w| w.ty != WidgetType::Textbox)
            .expect("string widget");
        assert!(!EditorLayout::override_widget_type(
            &mut iface,
            string_idx,
            WidgetType::Slider
        ));
        // Out-of-range indices are rejected gracefully.
        assert!(!EditorLayout::override_widget_type(
            &mut iface,
            99,
            WidgetType::Textbox
        ));
    }
}
