//! Compiling an interface (plus its layout) into a self-contained HTML + JavaScript page.
//!
//! The page renders the widget grid; every interaction substitutes the chosen option's SQL
//! fragment into the current query at the widget's path and updates the displayed query,
//! mirroring Figure 2b.  Executing the query is delegated to a `window.exec` hook so the page
//! works both standalone (showing the query text) and embedded next to a real backend.

use crate::editor::EditorLayout;
use crate::json::Json;
use pi_core::Interface;
use pi_sql::render;
use pi_widgets::WidgetType;
use std::fmt::Write as _;

/// Compiles the interface into a single HTML document.
pub fn compile_html(interface: &Interface, layout: &EditorLayout, title: &str) -> String {
    let spec = interface_spec(interface, layout);
    let mut widgets_html = String::new();
    for placement in layout.placements() {
        let widget = &interface.widgets()[placement.widget];
        let _ = write!(
            widgets_html,
            "<div class=\"widget\" style=\"grid-row:{};grid-column:{}\" data-widget=\"{}\">\
             <label>{}</label>{}</div>",
            placement.row + 1,
            placement.col + 1,
            placement.widget,
            escape(&placement.label),
            widget_markup(placement.widget, widget)
        );
    }

    format!(
        r#"<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: sans-serif; margin: 1.5em; }}
.grid {{ display: grid; gap: 0.8em; max-width: 720px; }}
.widget {{ border: 1px solid #ccc; border-radius: 6px; padding: 0.6em; }}
.widget label {{ display: block; font-weight: bold; margin-bottom: 0.3em; }}
#query {{ margin-top: 1.2em; padding: 0.8em; background: #f4f4f4; font-family: monospace; white-space: pre-wrap; }}
</style>
</head>
<body>
<h1>{title}</h1>
<div class="grid">{widgets}</div>
<div id="query"></div>
<script>
const SPEC = {spec};
const state = SPEC.widgets.map(() => null);
function currentQuery() {{
  let sql = SPEC.initialQuery;
  SPEC.widgets.forEach((w, i) => {{
    const choice = state[i];
    if (choice === null || choice === undefined) return;
    if (choice.absent) {{
      sql = sql.split(w.currentFragment).join("");
    }} else if (w.currentFragment && choice.sql !== undefined) {{
      sql = sql.split(w.currentFragment).join(choice.sql);
    }}
  }});
  return sql;
}}
function refresh() {{
  const sql = currentQuery();
  document.getElementById("query").textContent = sql;
  if (window.exec) {{ window.exec(sql); }}
}}
document.querySelectorAll("[data-option]").forEach(el => {{
  el.addEventListener("change", () => {{
    const widget = parseInt(el.closest(".widget").dataset.widget, 10);
    const spec = SPEC.widgets[widget];
    const idx = parseInt(el.value, 10);
    state[widget] = isNaN(idx) ? {{ sql: el.value }} : spec.options[idx];
    refresh();
  }});
}});
refresh();
</script>
</body>
</html>
"#,
        title = escape(title),
        widgets = widgets_html,
        spec = spec,
    )
}

/// The JSON specification embedded in the page: the initial query plus, for every widget, its
/// type, path, option fragments and the fragment currently in the initial query.
fn interface_spec(interface: &Interface, layout: &EditorLayout) -> Json {
    let widgets = layout
        .placements()
        .iter()
        .map(|placement| {
            let widget = &interface.widgets()[placement.widget];
            let current_fragment = interface
                .initial_query()
                .get(&widget.path)
                .map(render)
                .unwrap_or_default();
            let options: Vec<Json> = widget
                .domain
                .subtrees()
                .iter()
                .map(|subtree| {
                    Json::Object(vec![
                        ("label".into(), Json::string(&subtree.label())),
                        ("sql".into(), Json::string(&render(subtree))),
                        ("absent".into(), Json::Bool(false)),
                    ])
                })
                .chain(widget.domain.includes_absent().then(|| {
                    Json::Object(vec![
                        ("label".into(), Json::string("(none)")),
                        ("absent".into(), Json::Bool(true)),
                    ])
                }))
                .collect();
            Json::Object(vec![
                ("label".into(), Json::string(&placement.label)),
                ("type".into(), Json::string(widget.ty.slug())),
                ("path".into(), Json::string(&widget.path.to_string())),
                ("currentFragment".into(), Json::string(&current_fragment)),
                ("options".into(), Json::Array(options)),
            ])
        })
        .collect();
    Json::Object(vec![
        (
            "initialQuery".into(),
            Json::string(&render(interface.initial_query())),
        ),
        ("widgets".into(), Json::Array(widgets)),
    ])
}

/// The HTML control for one widget, according to its type.
fn widget_markup(index: usize, widget: &pi_widgets::Widget) -> String {
    let options = widget.domain.option_labels();
    match widget.ty {
        WidgetType::Slider | WidgetType::RangeSlider => {
            let (lo, hi) = widget.domain.numeric_range().unwrap_or((0.0, 100.0));
            format!(
                "<input type=\"range\" min=\"{lo}\" max=\"{hi}\" step=\"any\" data-option=\"w{index}\">"
            )
        }
        WidgetType::Textbox => format!("<input type=\"text\" data-option=\"w{index}\">"),
        WidgetType::ToggleButton | WidgetType::Checkbox => {
            format!("<input type=\"checkbox\" data-option=\"w{index}\">")
        }
        WidgetType::RadioButton | WidgetType::CheckboxList => {
            let input_type = if widget.ty == WidgetType::RadioButton {
                "radio"
            } else {
                "checkbox"
            };
            options
                .iter()
                .enumerate()
                .map(|(i, label)| {
                    format!(
                        "<label><input type=\"{input_type}\" name=\"w{index}\" value=\"{i}\" data-option=\"w{index}\"> {}</label>",
                        escape(label)
                    )
                })
                .collect::<Vec<_>>()
                .join("<br>")
        }
        WidgetType::Dropdown | WidgetType::DragAndDrop => {
            let mut out = format!("<select data-option=\"w{index}\">");
            for (i, label) in options.iter().enumerate() {
                let _ = write!(out, "<option value=\"{i}\">{}</option>", escape(label));
            }
            out.push_str("</select>");
            out
        }
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::PrecisionInterfaces;

    fn sample() -> Interface {
        let log = "
            SELECT a FROM t WHERE x = 1 AND c = 'US';
            SELECT a FROM t WHERE x = 5 AND c = 'EU';
            SELECT a FROM t WHERE x = 9 AND c = 'CN';
            SELECT a FROM t WHERE x = 12 AND c = 'BR';
        ";
        PrecisionInterfaces::default()
            .from_sql_log(log)
            .unwrap()
            .interface
    }

    #[test]
    fn compiles_a_complete_page() {
        let iface = sample();
        let layout = EditorLayout::new(&iface, 2);
        let html = compile_html(&iface, &layout, "OnTime explorer");
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("OnTime explorer"));
        assert!(html.contains("const SPEC ="));
        assert!(html.contains("initialQuery"));
        // every widget appears in the grid
        for (i, _) in iface.widgets().iter().enumerate() {
            assert!(html.contains(&format!("data-widget=\"{i}\"")));
        }
        // a slider renders as a range input, a dropdown as a select
        assert!(html.contains("type=\"range\""));
        assert!(html.contains("<select") || html.contains("type=\"radio\""));
    }

    #[test]
    fn labels_are_escaped() {
        let iface = sample();
        let mut layout = EditorLayout::new(&iface, 1);
        layout.set_label(0, "a <b> & \"c\"");
        let html = compile_html(&iface, &layout, "t");
        assert!(html.contains("a &lt;b&gt; &amp; &quot;c&quot;"));
    }

    #[test]
    fn hostile_string_literal_cannot_break_out_of_the_script_block() {
        // Regression: the interface spec is embedded raw inside <script>.  A SQL string
        // literal containing `</script>` used to terminate the script element and inject
        // markup into the generated page.
        let log = "
            SELECT a FROM t WHERE c = '</script><script>alert(1)//';
            SELECT a FROM t WHERE c = 'EU';
            SELECT a FROM t WHERE c = 'CN';
        ";
        let iface = PrecisionInterfaces::default()
            .from_sql_log(log)
            .unwrap()
            .interface;
        let layout = EditorLayout::new(&iface, 1);
        let html = compile_html(&iface, &layout, "hostile");
        // The hostile fragment must appear nowhere verbatim...
        assert!(!html.contains("</script><script>alert(1)"));
        // ...so the document keeps exactly the one closing tag it was born with.
        assert_eq!(html.matches("</script>").count(), 1);
        // The spec still carries the literal, in escaped form.
        assert!(html.contains("\\u003c/script>"));
    }

    #[test]
    fn spec_embeds_every_option() {
        let iface = sample();
        let layout = EditorLayout::new(&iface, 2);
        let spec = interface_spec(&iface, &layout).to_string();
        for widget in iface.widgets() {
            for label in widget.domain.option_labels() {
                if label != "(none)" {
                    assert!(spec.contains(&label), "missing option {label}");
                }
            }
        }
    }
}
