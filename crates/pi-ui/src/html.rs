//! Compiling an interface (plus its layout) into a self-contained HTML + JavaScript page.
//!
//! The page renders the widget grid; every interaction substitutes the chosen option's text
//! fragment into the current query at the widget's path and updates the displayed query,
//! mirroring Figure 2b.  Executing the query is delegated to a `window.exec` hook so the page
//! works both standalone (showing the query text) and embedded next to a real backend.
//!
//! Rendering is front-end aware: the initial query and every widget option are rendered
//! through the front-end of the dialect they *originated* in (per-query tags threaded from
//! the mining session), so a mixed SQL + dataframe interface shows each fragment in its own
//! language.  [`compile_html`] uses the workspace's standard registry;
//! [`compile_html_with`] accepts a custom one.

use crate::editor::EditorLayout;
use crate::json::Json;
use pi_ast::Frontends;
use pi_core::Interface;
use pi_widgets::WidgetType;
use std::fmt::Write as _;

/// Compiles the interface into a single HTML document, rendering query fragments through
/// the standard front-end registry (SQL + frames).
pub fn compile_html(interface: &Interface, layout: &EditorLayout, title: &str) -> String {
    compile_html_with(interface, layout, title, &pi_core::standard_frontends())
}

/// Compiles the interface into a single HTML document, rendering the initial query and
/// every widget option through the front-end registered for its originating dialect.
pub fn compile_html_with(
    interface: &Interface,
    layout: &EditorLayout,
    title: &str,
    frontends: &Frontends,
) -> String {
    let spec = interface_spec(interface, layout, frontends);
    let mut widgets_html = String::new();
    for placement in layout.placements() {
        let widget = &interface.widgets()[placement.widget];
        let _ = write!(
            widgets_html,
            "<div class=\"widget\" style=\"grid-row:{};grid-column:{}\" data-widget=\"{}\">\
             <label>{}</label>{}</div>",
            placement.row + 1,
            placement.col + 1,
            placement.widget,
            escape(&placement.label),
            widget_markup(placement.widget, widget)
        );
    }

    format!(
        r#"<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: sans-serif; margin: 1.5em; }}
.grid {{ display: grid; gap: 0.8em; max-width: 720px; }}
.widget {{ border: 1px solid #ccc; border-radius: 6px; padding: 0.6em; }}
.widget label {{ display: block; font-weight: bold; margin-bottom: 0.3em; }}
#query {{ margin-top: 1.2em; padding: 0.8em; background: #f4f4f4; font-family: monospace; white-space: pre-wrap; }}
</style>
</head>
<body>
<h1>{title}</h1>
<div class="grid">{widgets}</div>
<div id="query"></div>
<script>
const SPEC = {spec};
const state = SPEC.widgets.map(() => null);
function currentQuery() {{
  let text = SPEC.initialQuery;
  SPEC.widgets.forEach((w, i) => {{
    const choice = state[i];
    if (choice === null || choice === undefined) return;
    if (choice.absent) {{
      text = text.split(w.currentFragment).join("");
    }} else if (w.currentFragment && choice.text !== undefined) {{
      text = text.split(w.currentFragment).join(choice.text);
    }}
  }});
  return text;
}}
function refresh() {{
  const text = currentQuery();
  document.getElementById("query").textContent = text;
  if (window.exec) {{ window.exec(text); }}
}}
document.querySelectorAll("[data-option]").forEach(el => {{
  el.addEventListener("change", () => {{
    const widget = parseInt(el.closest(".widget").dataset.widget, 10);
    const spec = SPEC.widgets[widget];
    if (el.dataset.freeform) {{
      // Sliders and textboxes carry the *value itself* (a numeric value must not be
      // mistaken for an option index).
      state[widget] = {{ text: el.value }};
    }} else {{
      const idx = parseInt(el.value, 10);
      state[widget] = Number.isInteger(idx) ? spec.options[idx] || null : null;
    }}
    refresh();
  }});
}});
refresh();
</script>
</body>
</html>
"#,
        title = escape(title),
        widgets = widgets_html,
        spec = spec,
    )
}

/// The JSON specification of an interface: the initial query plus, for every widget, its
/// type, path, option fragments and the fragment currently in the initial query.  Option
/// `text` (the splice fragment) is rendered in the initial query's dialect so substitution
/// stays well-formed; option `native` carries the originating dialect's rendering, tagged
/// with the dialect name.
///
/// This is the single serialisation of an interface the workspace has: the HTML compiler
/// embeds it in the generated page's `<script>` block, and `pi-server` serves it verbatim
/// as the `GET /interfaces/{user}/{thread}` response body — so a snapshot fetched over
/// HTTP and a compiled page always agree on what the interface contains.
pub fn interface_spec(interface: &Interface, layout: &EditorLayout, frontends: &Frontends) -> Json {
    let initial_dialect = interface.initial_dialect();
    let widgets = layout
        .placements()
        .iter()
        .map(|placement| {
            let widget = &interface.widgets()[placement.widget];
            // The fragment being substituted out of the initial query is part of the
            // initial query's text, so it renders in the initial query's dialect.
            let current_fragment = interface
                .initial_query()
                .get(&widget.path)
                .map(|subtree| frontends.render(initial_dialect, subtree))
                .unwrap_or_default();
            let options: Vec<Json> = widget
                .domain
                .tagged_subtrees()
                .map(|(subtree, dialect)| {
                    // `text` is spliced into the initial query by currentQuery(), so it
                    // must be in the initial query's dialect — substituting a frames
                    // fragment into SQL text would produce a chimera query no parser
                    // accepts.  For cross-dialect options, `native` additionally shows
                    // the fragment in its originating dialect (what the analyst actually
                    // typed); same-dialect options skip it rather than embed the same
                    // string twice.
                    let mut fields = vec![
                        ("label".into(), Json::string(&subtree.label())),
                        (
                            "text".into(),
                            Json::string(&frontends.render(initial_dialect, subtree)),
                        ),
                        ("dialect".into(), Json::string(dialect.name())),
                    ];
                    if dialect != initial_dialect {
                        fields.insert(
                            2,
                            (
                                "native".into(),
                                Json::string(&frontends.render(dialect, subtree)),
                            ),
                        );
                    }
                    fields.push(("absent".into(), Json::Bool(false)));
                    Json::Object(fields)
                })
                .chain(widget.domain.includes_absent().then(|| {
                    Json::Object(vec![
                        ("label".into(), Json::string("(none)")),
                        ("absent".into(), Json::Bool(true)),
                    ])
                }))
                .collect();
            Json::Object(vec![
                ("label".into(), Json::string(&placement.label)),
                ("type".into(), Json::string(widget.ty.slug())),
                ("path".into(), Json::string(&widget.path.to_string())),
                ("currentFragment".into(), Json::string(&current_fragment)),
                ("options".into(), Json::Array(options)),
            ])
        })
        .collect();
    Json::Object(vec![
        (
            "initialQuery".into(),
            Json::string(&frontends.render(initial_dialect, interface.initial_query())),
        ),
        (
            "initialDialect".into(),
            Json::string(initial_dialect.name()),
        ),
        ("widgets".into(), Json::Array(widgets)),
    ])
}

/// The HTML control for one widget, according to its type.
fn widget_markup(index: usize, widget: &pi_widgets::Widget) -> String {
    let options = widget.domain.option_labels();
    match widget.ty {
        WidgetType::Slider | WidgetType::RangeSlider => {
            let (lo, hi) = widget.domain.numeric_range().unwrap_or((0.0, 100.0));
            format!(
                "<input type=\"range\" min=\"{lo}\" max=\"{hi}\" step=\"any\" data-option=\"w{index}\" data-freeform=\"1\">"
            )
        }
        WidgetType::Textbox => {
            format!("<input type=\"text\" data-option=\"w{index}\" data-freeform=\"1\">")
        }
        WidgetType::ToggleButton | WidgetType::Checkbox => {
            format!("<input type=\"checkbox\" data-option=\"w{index}\">")
        }
        WidgetType::RadioButton | WidgetType::CheckboxList => {
            let input_type = if widget.ty == WidgetType::RadioButton {
                "radio"
            } else {
                "checkbox"
            };
            options
                .iter()
                .enumerate()
                .map(|(i, label)| {
                    format!(
                        "<label><input type=\"{input_type}\" name=\"w{index}\" value=\"{i}\" data-option=\"w{index}\"> {}</label>",
                        escape(label)
                    )
                })
                .collect::<Vec<_>>()
                .join("<br>")
        }
        WidgetType::Dropdown | WidgetType::DragAndDrop => {
            let mut out = format!("<select data-option=\"w{index}\">");
            for (i, label) in options.iter().enumerate() {
                let _ = write!(out, "<option value=\"{i}\">{}</option>", escape(label));
            }
            out.push_str("</select>");
            out
        }
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::PrecisionInterfaces;

    fn sample() -> Interface {
        let log = "
            SELECT a FROM t WHERE x = 1 AND c = 'US';
            SELECT a FROM t WHERE x = 5 AND c = 'EU';
            SELECT a FROM t WHERE x = 9 AND c = 'CN';
            SELECT a FROM t WHERE x = 12 AND c = 'BR';
        ";
        PrecisionInterfaces::default()
            .from_sql_log(log)
            .unwrap()
            .interface
    }

    #[test]
    fn compiles_a_complete_page() {
        let iface = sample();
        let layout = EditorLayout::new(&iface, 2);
        let html = compile_html(&iface, &layout, "OnTime explorer");
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("OnTime explorer"));
        assert!(html.contains("const SPEC ="));
        assert!(html.contains("initialQuery"));
        // every widget appears in the grid
        for (i, _) in iface.widgets().iter().enumerate() {
            assert!(html.contains(&format!("data-widget=\"{i}\"")));
        }
        // a slider renders as a range input, a dropdown as a select
        assert!(html.contains("type=\"range\""));
        assert!(html.contains("<select") || html.contains("type=\"radio\""));
    }

    #[test]
    fn labels_are_escaped() {
        let iface = sample();
        let mut layout = EditorLayout::new(&iface, 1);
        layout.set_label(0, "a <b> & \"c\"");
        let html = compile_html(&iface, &layout, "t");
        assert!(html.contains("a &lt;b&gt; &amp; &quot;c&quot;"));
    }

    #[test]
    fn hostile_string_literal_cannot_break_out_of_the_script_block() {
        // Regression: the interface spec is embedded raw inside <script>.  A SQL string
        // literal containing `</script>` used to terminate the script element and inject
        // markup into the generated page.
        let log = "
            SELECT a FROM t WHERE c = '</script><script>alert(1)//';
            SELECT a FROM t WHERE c = 'EU';
            SELECT a FROM t WHERE c = 'CN';
        ";
        let iface = PrecisionInterfaces::default()
            .from_sql_log(log)
            .unwrap()
            .interface;
        let layout = EditorLayout::new(&iface, 1);
        let html = compile_html(&iface, &layout, "hostile");
        // The hostile fragment must appear nowhere verbatim...
        assert!(!html.contains("</script><script>alert(1)"));
        // ...so the document keeps exactly the one closing tag it was born with.
        assert_eq!(html.matches("</script>").count(), 1);
        // The spec still carries the literal, in escaped form.
        assert!(html.contains("\\u003c/script>"));
    }

    #[test]
    fn spec_embeds_every_option() {
        let iface = sample();
        let layout = EditorLayout::new(&iface, 2);
        let spec = interface_spec(&iface, &layout, &pi_core::standard_frontends()).to_string();
        for widget in iface.widgets() {
            for label in widget.domain.option_labels() {
                if label != "(none)" {
                    assert!(spec.contains(&label), "missing option {label}");
                }
            }
        }
    }

    #[test]
    fn mixed_dialect_interfaces_render_each_option_in_its_own_language() {
        use pi_ast::Dialect;
        use pi_core::{PiOptions, Session};

        // The analyst toggles the subquery shape from both front-ends: the SQL queries
        // contribute tree-valued options that must render as SQL, the frames queries
        // options that must render as method chains.
        let mut session = Session::new(PiOptions::default());
        session.push_sql("SELECT * FROM T");
        session.push_text_as(Dialect::FRAMES, "(T.filter(b > 10).select(a)).select(*)");
        session.push_sql("SELECT * FROM (SELECT a FROM T WHERE b > 20)");
        session.push_text_as(Dialect::FRAMES, "(T.filter(b > 30).select(a)).select(*)");
        let snap = session.snapshot();
        assert_eq!(snap.dialects.len(), 4);

        let layout = EditorLayout::new(&snap.interface, 1);
        let spec =
            interface_spec(&snap.interface, &layout, &pi_core::standard_frontends()).to_string();
        // The initial query arrived as SQL.
        assert!(spec.contains("\"initialDialect\":\"sql\""), "{spec}");
        assert!(spec.contains("SELECT"), "{spec}");
        // Options exist from both dialects; `native` shows each in its own syntax...
        assert!(spec.contains("\"dialect\":\"sql\""), "{spec}");
        assert!(spec.contains("\"dialect\":\"frames\""), "{spec}");
        assert!(spec.contains(".filter(b > 10)"), "{spec}");
        // ...while the splice fragment `text` stays in the initial query's dialect (SQL
        // here), so substituting it into the page's query never makes a chimera.
        assert!(
            spec.contains("\"text\":\"(SELECT a FROM T WHERE b > 10)\""),
            "{spec}"
        );
        let html = compile_html(&snap.interface, &layout, "mixed");
        assert!(html.contains(".filter(b > 10)"));
    }
}
