//! Simulated widget interaction timing traces.
//!
//! The paper fits each widget type's cost function from human interaction timing traces
//! (§4.3).  We do not have those traces, so this module simulates them from simple
//! interaction models (a fixed acquisition time, a per-option scan time, a quadratic search
//! penalty for long lists, plus noise) whose parameters were chosen so that the published
//! drop-down/text-box constants of Example 4.4 are recovered by the fit.

use pi_widgets::fit::TracePoint;
use pi_widgets::WidgetType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The ground-truth interaction model a simulated user follows for one widget type.
#[derive(Debug, Clone, Copy)]
pub struct InteractionModel {
    /// Time to locate and activate the widget (ms).
    pub base_ms: f64,
    /// Time to scan / consider one option (ms).
    pub per_option_ms: f64,
    /// Quadratic search penalty for long option lists (ms per option²).
    pub search_ms: f64,
    /// Standard deviation of the observation noise (ms).
    pub noise_ms: f64,
}

impl InteractionModel {
    /// The model used for a widget type.  Drop-down and text box match Example 4.4.
    pub fn for_widget(ty: WidgetType) -> InteractionModel {
        let (base_ms, per_option_ms, search_ms) = match ty {
            WidgetType::Dropdown => (276.0, 125.0, 0.07),
            WidgetType::Textbox => (4790.0, 0.0, 0.0),
            WidgetType::ToggleButton => (320.0, 15.0, 0.0),
            WidgetType::Checkbox => (350.0, 20.0, 0.0),
            WidgetType::RadioButton => (200.0, 255.0, 2.0),
            WidgetType::Slider => (250.0, 30.0, 0.05),
            WidgetType::RangeSlider => (420.0, 35.0, 0.05),
            WidgetType::CheckboxList => (450.0, 260.0, 6.0),
            WidgetType::DragAndDrop => (2000.0, 260.0, 6.0),
        };
        InteractionModel {
            base_ms,
            per_option_ms,
            search_ms,
            noise_ms: 25.0,
        }
    }

    /// The expected interaction time for a domain of `n` options.
    pub fn expected_ms(&self, n: usize) -> f64 {
        let n = n as f64;
        self.base_ms + self.per_option_ms * n + self.search_ms * n * n
    }
}

/// Simulates a timing trace for one widget type: `repeats` interactions at each domain size
/// in `sizes`.
pub fn simulate_trace(
    ty: WidgetType,
    sizes: &[usize],
    repeats: usize,
    seed: u64,
) -> Vec<TracePoint> {
    let model = InteractionModel::for_widget(ty);
    let mut rng = StdRng::seed_from_u64(0x7ace_0000 ^ seed ^ ty.slug().len() as u64);
    let mut out = Vec::with_capacity(sizes.len() * repeats);
    for &n in sizes {
        for _ in 0..repeats {
            // Symmetric triangular noise around the expected time (cheap stand-in for a
            // Gaussian; mean-zero so the least-squares fit converges to the model).
            let noise =
                (rng.gen_range(-1.0..1.0f64) + rng.gen_range(-1.0..1.0f64)) * model.noise_ms;
            let millis = (model.expected_ms(n) + noise).max(1.0);
            out.push(TracePoint { n, millis });
        }
    }
    out
}

/// The default domain sizes at which traces are collected.
pub fn default_sizes() -> Vec<usize> {
    vec![1, 2, 3, 5, 8, 12, 20, 30, 50, 80]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_widgets::fit::fit_cost;

    #[test]
    fn fitted_dropdown_matches_the_paper_constants() {
        let trace = simulate_trace(WidgetType::Dropdown, &default_sizes(), 8, 1);
        let fitted = fit_cost(&trace);
        let paper = pi_widgets::CostFunction::paper_dropdown();
        for n in [2usize, 5, 20, 50] {
            let rel = (fitted.eval(n) - paper.eval(n)).abs() / paper.eval(n);
            assert!(
                rel < 0.12,
                "n={n}: fitted {} vs paper {}",
                fitted.eval(n),
                paper.eval(n)
            );
        }
    }

    #[test]
    fn fitted_textbox_is_roughly_constant() {
        let trace = simulate_trace(WidgetType::Textbox, &default_sizes(), 8, 2);
        let fitted = fit_cost(&trace);
        assert!((fitted.eval(1) - 4790.0).abs() < 300.0);
        assert!((fitted.eval(80) - 4790.0).abs() < 300.0);
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = simulate_trace(WidgetType::Slider, &[1, 5], 3, 7);
        let b = simulate_trace(WidgetType::Slider, &[1, 5], 3, 7);
        assert_eq!(a, b);
        let c = simulate_trace(WidgetType::Slider, &[1, 5], 3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn every_widget_type_has_a_model() {
        for ty in WidgetType::all() {
            let model = InteractionModel::for_widget(ty);
            assert!(model.expected_ms(1) > 0.0);
            assert!(model.expected_ms(50) >= model.expected_ms(1));
            assert!(!simulate_trace(ty, &[1, 2, 3], 2, 0).is_empty());
        }
    }
}
