//! The ad-hoc exploration log (§7, Listing 3).
//!
//! The paper's ad-hoc log comes from students exploring the OnTime dataset with Tableau;
//! "there is considerable variation in queries and changes in this log", and the generated
//! interfaces consequently fail to generalise (Figure 6c's flat red line).  The generator
//! below draws every query from a wide family of structurally different templates so that
//! consecutive queries rarely share a transformation.

use crate::QueryLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CARRIERS: &[&str] = &["AA", "UA", "DL", "WN", "B6", "AS"];
const STATES: &[&str] = &["CA", "NY", "TX", "WA", "IL", "GA"];
const MEASURES: &[&str] = &["flights", "distance", "arrdelay", "depdelay"];
const DIMENSIONS: &[&str] = &["carrier", "origin", "dest", "dayofweek", "deststate"];

/// Generates an ad-hoc exploration log of `n` queries.
pub fn exploration_log(seed: u64, n: usize) -> QueryLog {
    let mut rng = StdRng::seed_from_u64(0xadc0_0000 ^ seed);
    let sql: Vec<String> = (0..n).map(|_| next_query(&mut rng)).collect();
    QueryLog::from_sql(&format!("adhoc-{seed}"), sql)
}

fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

fn next_query(rng: &mut StdRng) -> String {
    let measure = pick(rng, MEASURES);
    let dim = pick(rng, DIMENSIONS);
    let dim2 = pick(rng, DIMENSIONS);
    let carrier = pick(rng, CARRIERS);
    let state = pick(rng, STATES);
    let threshold = rng.gen_range(10..2000);
    let bucket = [5, 10, 50, 100][rng.gen_range(0..4)];
    match rng.gen_range(0..8) {
        0 => format!("SELECT CAST({dim}) AS {dim} FROM ontime"),
        1 => format!(
            "SELECT SUM({measure}) FROM ontime WHERE cancelled = 1 HAVING SUM({measure}) > {threshold} AND SUM({measure}) < {}",
            threshold + rng.gen_range(100..2000)
        ),
        2 => format!(
            "SELECT (CASE {dim} WHEN '{carrier}' THEN '{carrier}' ELSE 'Other' END) AS {dim}, FLOOR({measure} / {bucket}) AS {measure} FROM ontime"
        ),
        3 => format!(
            "SELECT {dim}, {dim2}, AVG({measure}) FROM ontime WHERE deststate = '{state}' GROUP BY {dim}, {dim2} ORDER BY {dim}"
        ),
        4 => format!(
            "SELECT COUNT(DISTINCT {dim}) FROM ontime WHERE {measure} BETWEEN {threshold} AND {}",
            threshold + bucket
        ),
        5 => format!(
            "SELECT {dim} FROM (SELECT {dim}, SUM({measure}) AS total FROM ontime GROUP BY {dim}) WHERE total > {threshold}"
        ),
        6 => format!(
            "SELECT TOP {bucket} {dim}, MAX({measure}) FROM ontime WHERE carrier = '{carrier}' GROUP BY {dim}"
        ),
        _ => format!(
            "SELECT {dim}, COUNT({measure}) FROM ontime WHERE dayofweek IN (1, 7) AND deststate = '{state}' GROUP BY {dim}"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_has_high_structural_variety() {
        let log = exploration_log(1, 60);
        assert_eq!(log.len(), 60);
        // Most consecutive pairs differ by several subtrees (unlike the SDSS/OLAP logs).
        let big_changes = log
            .queries
            .windows(2)
            .filter(|pair| {
                pi_diff::leaf_changes(&pair[0], &pair[1]).len() >= 2
                    || !pair[0].same_label(&pair[1])
            })
            .count();
        assert!(
            big_changes as f64 / 59.0 > 0.6,
            "only {big_changes}/59 pairs changed substantially"
        );
    }

    #[test]
    fn every_template_family_appears() {
        let log = exploration_log(2, 200);
        let has = |needle: &str| log.text.iter().any(|q| q.contains(needle));
        assert!(has("CASE"));
        assert!(has("CAST"));
        assert!(has("HAVING"));
        assert!(has("BETWEEN"));
        assert!(has("TOP"));
        assert!(has("FLOOR"));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(exploration_log(1, 20).text, exploration_log(2, 20).text);
    }
}
