//! SDSS-style per-client logs.
//!
//! The paper's SDSS sample contains 127,461 queries from 286 clients; within a client the
//! queries are "considerably different, but the changes between a given user's queries are
//! very similar and highly structured" (Listing 1).  We reproduce that structure with a small
//! set of client *archetypes*, each a template whose parameters change from query to query.

use crate::QueryLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The analysis archetype a synthetic SDSS client follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientArchetype {
    /// Listing 1: look up an object by id, switching between the spectro tables and
    /// occasionally between id attributes.
    ObjectLookup,
    /// Listing 6: a UDF cone search whose TOP clause is toggled and whose limit changes.
    ConeSearchTop,
    /// A red-shift range scan whose bounds keep moving (slider-friendly numeric changes).
    RedshiftRange,
    /// A photometric filter analysis: the filtered magnitude column and threshold change.
    MagnitudeFilter,
}

impl ClientArchetype {
    /// All archetypes, used to spread clients across analysis styles.
    pub fn all() -> [ClientArchetype; 4] {
        [
            ClientArchetype::ObjectLookup,
            ClientArchetype::ConeSearchTop,
            ClientArchetype::RedshiftRange,
            ClientArchetype::MagnitudeFilter,
        ]
    }

    /// The archetype assigned to the `i`-th client.
    pub fn for_client(i: usize) -> ClientArchetype {
        Self::all()[i % Self::all().len()]
    }
}

/// Generates one client's log: `n` queries following the client's archetype, seeded
/// deterministically.
pub fn client_log(archetype: ClientArchetype, seed: u64, n: usize) -> QueryLog {
    let mut rng = StdRng::seed_from_u64(0x5d55_0000 ^ seed);
    let sql: Vec<String> = (0..n).map(|_| next_query(archetype, &mut rng)).collect();
    QueryLog::from_sql(&format!("sdss-client-{seed}-{archetype:?}"), sql)
}

/// Generates `clients` separate client logs of `per_client` queries each, mirroring the
/// paper's per-client partitioning of the SDSS log.
pub fn client_logs(clients: usize, per_client: usize) -> Vec<QueryLog> {
    (0..clients)
        .map(|i| client_log(ClientArchetype::for_client(i), i as u64, per_client))
        .collect()
}

/// The tables/columns referenced by the SDSS-style generators, as (table, columns) pairs.
/// The precision experiment builds its schema from this (Appendix D used "a small subset of
/// the SDSS database schema").
pub fn schema() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("SpecLineIndex", vec!["specObjId", "plateId", "z", "ew"]),
        ("XCRedshift", vec!["specObjId", "tempNo", "z"]),
        ("SpecObj", vec!["specObjId", "z", "ra", "dec"]),
        (
            "Galaxy",
            vec!["objID", "ra", "dec", "r", "g", "u", "petroRad_r"],
        ),
        (
            "PhotoObj",
            vec!["objID", "ra", "dec", "u", "g", "r", "i", "modelMag_r"],
        ),
    ]
}

fn next_query(archetype: ClientArchetype, rng: &mut StdRng) -> String {
    match archetype {
        ClientArchetype::ObjectLookup => {
            let table = ["SpecLineIndex", "XCRedshift", "SpecObj"][rng.gen_range(0..3)];
            let attr = if rng.gen_bool(0.85) {
                "specObjId"
            } else {
                "plateId"
            };
            let id: i64 = rng.gen_range(0x100..0x4000);
            format!("SELECT * FROM {table} WHERE {attr} = 0x{id:x}")
        }
        ClientArchetype::ConeSearchTop => {
            let ra = 5.0 + rng.gen_range(0..200) as f64 / 100.0;
            let dec = rng.gen_range(0..100) as f64 / 100.0;
            let radius = 1.0 + rng.gen_range(0..30) as f64 / 10.0;
            let top = if rng.gen_bool(0.6) {
                format!("TOP {} ", [1, 5, 10, 50, 100][rng.gen_range(0..5)])
            } else {
                String::new()
            };
            format!(
                "SELECT {top}g.objID FROM Galaxy AS g, dbo.fGetNearbyObjEq({ra:.2}, {dec:.2}, {radius:.1}) AS d WHERE d.objID = g.objID"
            )
        }
        ClientArchetype::RedshiftRange => {
            let lo = rng.gen_range(0..40) as f64 / 100.0;
            let hi = lo + rng.gen_range(1..30) as f64 / 100.0;
            format!("SELECT z, ra, dec FROM SpecObj WHERE z > {lo:.2} AND z < {hi:.2}")
        }
        ClientArchetype::MagnitudeFilter => {
            let column = ["u", "g", "r", "i"][rng.gen_range(0..4)];
            let threshold = 14.0 + rng.gen_range(0..80) as f64 / 10.0;
            format!(
                "SELECT objID, ra, dec FROM PhotoObj WHERE {column} < {threshold:.1} AND modelMag_r > 10"
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::NodeKind;

    #[test]
    fn per_client_changes_are_structured() {
        // Within one client, consecutive queries differ in only a small number of subtrees.
        for archetype in ClientArchetype::all() {
            let log = client_log(archetype, 1, 30);
            assert_eq!(log.len(), 30);
            let mut max_changes = 0;
            for pair in log.queries.windows(2) {
                let changes = pi_diff::leaf_changes(&pair[0], &pair[1]).len();
                max_changes = max_changes.max(changes);
            }
            assert!(
                max_changes <= 4,
                "{archetype:?} produced {max_changes} simultaneous changes"
            );
        }
    }

    #[test]
    fn clients_are_heterogeneous_across_archetypes() {
        let a = client_log(ClientArchetype::ObjectLookup, 1, 5);
        let b = client_log(ClientArchetype::ConeSearchTop, 1, 5);
        let changes = pi_diff::leaf_changes(&a.queries[0], &b.queries[0]);
        assert!(!changes.is_empty());
    }

    #[test]
    fn cone_search_logs_toggle_the_top_clause() {
        let log = client_log(ClientArchetype::ConeSearchTop, 3, 40);
        let with_top = log
            .queries
            .iter()
            .filter(|q| q.children().iter().any(|c| c.kind() == NodeKind::Limit))
            .count();
        assert!(
            with_top > 5 && with_top < 40,
            "top clause should toggle: {with_top}"
        );
    }

    #[test]
    fn client_logs_assigns_archetypes_round_robin() {
        let logs = client_logs(8, 10);
        assert_eq!(logs.len(), 8);
        assert!(logs.iter().all(|l| l.len() == 10));
        // Clients 0 and 4 share an archetype but have different seeds.
        assert_ne!(logs[0].text, logs[4].text);
    }

    #[test]
    fn schema_covers_every_generated_table_and_column() {
        use std::collections::BTreeSet;
        let schema = schema();
        let tables: BTreeSet<&str> = schema.iter().map(|(t, _)| *t).collect();
        for archetype in ClientArchetype::all() {
            let log = client_log(archetype, 9, 20);
            for q in &log.queries {
                q.visit(&mut |n| {
                    if n.kind_ref() == &NodeKind::TableRef {
                        let name = n.attr_str("name").unwrap();
                        assert!(tables.contains(name), "unknown table {name}");
                    }
                });
            }
        }
    }
}
