//! Multi-client log composition: interleaving and train/hold-out splits (§7.2.3, §7.2.4).

use crate::QueryLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Interleaves several client logs into one heterogeneous log, preserving each client's
/// internal order (the multi-client experiment randomly interleaves M client logs).
pub fn interleave(logs: &[QueryLog], seed: u64) -> QueryLog {
    let mut rng = StdRng::seed_from_u64(0x2417_0000 ^ seed);
    let mut cursors = vec![0usize; logs.len()];
    let total: usize = logs.iter().map(QueryLog::len).sum();
    let mut mixed = QueryLog {
        label: format!("interleaved-{}-clients", logs.len()),
        ..QueryLog::default()
    };
    while mixed.len() < total {
        // Pick a client that still has queries, weighted by how many remain.
        let remaining: Vec<usize> = logs
            .iter()
            .enumerate()
            .filter(|(i, log)| cursors[*i] < log.len())
            .map(|(i, _)| i)
            .collect();
        let client = remaining[rng.gen_range(0..remaining.len())];
        let cursor = cursors[client];
        mixed.queries.push(logs[client].queries[cursor].clone());
        mixed.text.push(logs[client].text[cursor].clone());
        mixed.dialects.push(logs[client].dialects[cursor]);
        cursors[client] += 1;
    }
    mixed
}

/// Takes the first `per_client` queries of each client and interleaves them — the
/// "training queries per client" axis of Figure 7b.
pub fn interleave_prefixes(logs: &[QueryLog], per_client: usize, seed: u64) -> QueryLog {
    let truncated: Vec<QueryLog> = logs.iter().map(|l| l.truncated(per_client)).collect();
    interleave(&truncated, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdss;

    #[test]
    fn interleaving_preserves_every_query_and_per_client_order() {
        let logs = sdss::client_logs(3, 20);
        let mixed = interleave(&logs, 1);
        assert_eq!(mixed.len(), 60);
        // Per-client order is preserved: each client's queries appear as a subsequence.
        for log in &logs {
            let mut cursor = 0;
            for text in &mixed.text {
                if cursor < log.text.len() && text == &log.text[cursor] {
                    cursor += 1;
                }
            }
            assert_eq!(
                cursor,
                log.text.len(),
                "client {} not a subsequence",
                log.label
            );
        }
    }

    #[test]
    fn interleave_is_deterministic_and_seed_sensitive() {
        let logs = sdss::client_logs(2, 15);
        assert_eq!(interleave(&logs, 5).text, interleave(&logs, 5).text);
        assert_ne!(interleave(&logs, 5).text, interleave(&logs, 6).text);
    }

    #[test]
    fn prefix_interleaving_limits_each_client() {
        let logs = sdss::client_logs(4, 30);
        let mixed = interleave_prefixes(&logs, 10, 2);
        assert_eq!(mixed.len(), 40);
    }
}
