//! Trace-scale synthetic ingest streams (10⁵–10⁶ lines), generated lazily.
//!
//! The in-memory [`QueryLog`](crate::QueryLog) generators materialise text and parsed trees
//! for the whole log, which is exactly what a trace-scale ingest benchmark must *not* do —
//! the point of `Session::push_stream` is bounded memory however long the stream.  This
//! module generates a realistic million-line stream as an iterator: state held is the pool
//! of distinct query shapes (`O(shapes)`), each `next()` renders one line, and nothing
//! retains the emitted prefix.
//!
//! The stream's shape mirrors what the trace studies report for real query logs:
//!
//! * a pool of `shapes` distinct analyses, drawn from the same OLAP random walk the other
//!   generators use (so shapes differ by a filter literal, a dimension, an aggregate —
//!   paper Listing 2);
//! * positions revisit already-seen shapes **Zipf-style** (weight `1/(r+1)` for the shape
//!   introduced `r` pool-steps ago), with new shapes front-loaded into a warm-up prefix
//!   (the pool drains over the first `~n/16` lines) so the remaining stream is
//!   *stationary*: the full shape mix circulates, the duplicate-heavy `d ≪ n` profile
//!   mining's dedup layers exploit holds steady, and a bounded-memory checkpoint taken
//!   after warm-up sees every distinct tree the trace will ever produce;
//! * each line is rendered in **SQL or the frames dialect** by coin flip — the same
//!   analysis arrives through different front-ends, as in a mixed production log;
//! * a configurable fraction of lines is unparseable **garbage**, exercising the
//!   skip-and-count path.
//!
//! (Not to be confused with [`traces`](crate::traces), the widget interaction *timing*
//! traces used to fit widget cost functions.)

use crate::olap::{walk_states, OlapState};
use pi_ast::Dialect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A lazy, deterministic stream of `(dialect, line)` pairs; see [`zipf_trace`].
#[derive(Debug, Clone)]
pub struct ZipfTrace {
    sql: Vec<String>,
    frames: Vec<String>,
    rng: StdRng,
    n: usize,
    /// New shapes are introduced within the first `horizon` lines (the warm-up prefix);
    /// past it the stream only revisits.
    horizon: usize,
    emitted: usize,
    seen: usize,
    /// Cumulative Zipf weights over the `seen` shapes (`cum[r] = H(r + 1)`), rebuilt only
    /// when an introduction grows `seen` — the per-line draw is a binary search, not an
    /// `O(seen)` harmonic scan (at trace scale the generator shares the consumer's loop,
    /// so its per-line cost shows up in every throughput number).
    cum: Vec<f64>,
    garbage_rate: f64,
    garbage: usize,
}

/// A stream of `n` query-log lines over `≈ shapes` distinct analyses revisited Zipf-style,
/// mixed SQL + frames, with a `garbage_rate` fraction of unparseable lines.
///
/// Deterministic for a given `(n, shapes, garbage_rate, seed)`.  Memory is `O(shapes)`:
/// the distinct pool is rendered up front, each emitted line is a fresh `String` (as it
/// would be arriving off a socket), and the stream holds nothing else — feed it straight
/// to `Session::push_stream_tagged`.
///
/// `shapes` is clamped to `1..=n`; `garbage_rate` must be in `[0, 1]`.  (`≈` because the
/// underlying walk occasionally no-ops, so the pool itself can contain a few repeats.)
pub fn zipf_trace(n: usize, shapes: usize, garbage_rate: f64, seed: u64) -> ZipfTrace {
    assert!(
        (0.0..=1.0).contains(&garbage_rate),
        "garbage_rate must be within [0, 1], got {garbage_rate}"
    );
    let pool = walk_states(seed, shapes.clamp(1, n.max(1)));
    // Warm-up prefix: long enough to introduce the whole pool even with garbage
    // interleaved, short enough that >90% of the stream runs at the stationary mix.
    let horizon = (n / 16).max(2 * pool.len()).min(n);
    ZipfTrace {
        sql: pool.iter().map(OlapState::to_sql).collect(),
        frames: pool.iter().map(OlapState::to_frames).collect(),
        rng: StdRng::seed_from_u64(0x7a1f_0000 ^ seed),
        n,
        horizon,
        emitted: 0,
        seen: 0,
        cum: Vec::new(),
        garbage_rate,
        garbage: 0,
    }
}

impl ZipfTrace {
    /// Number of distinct shapes in the pool (≥ the distinct trees a consumer will see,
    /// since the walk occasionally repeats a state).
    pub fn pool_size(&self) -> usize {
        self.sql.len()
    }

    /// Garbage lines emitted so far.
    pub fn garbage_emitted(&self) -> usize {
        self.garbage
    }
}

impl Iterator for ZipfTrace {
    type Item = (Dialect, String);

    fn next(&mut self) -> Option<(Dialect, String)> {
        if self.emitted >= self.n {
            return None;
        }
        let position = self.emitted;
        self.emitted += 1;
        if self.garbage_rate > 0.0 && self.rng.gen_bool(self.garbage_rate) {
            self.garbage += 1;
            // Unparseable in both dialects; varied so a parse cache cannot help.
            return Some((Dialect::SQL, format!("%% trace garbage #{position} %%")));
        }
        let remaining_new = self.sql.len() - self.seen;
        // Introductions are spread over what is left of the warm-up prefix; if garbage
        // lines ate too many slots the probability saturates at 1 and the stragglers are
        // introduced back-to-back, so the pool is always fully drained by (shortly after)
        // the horizon.
        let left_in_horizon = self.horizon.saturating_sub(position).max(remaining_new);
        let p_new = remaining_new as f64 / left_in_horizon.max(1) as f64;
        let idx = if self.seen == 0 || (remaining_new > 0 && self.rng.gen_bool(p_new)) {
            self.seen += 1;
            let h = self.cum.last().copied().unwrap_or(0.0);
            self.cum.push(h + 1.0 / self.seen as f64);
            self.seen - 1
        } else {
            // Zipf draw over the seen shapes, most recently introduced first: pick the
            // first rank whose cumulative weight covers `u` (weight of rank `r` is
            // `1/(r + 1)`).
            let total = self.cum[self.seen - 1];
            let u = self.rng.gen_range(0.0..total);
            let rank = self.cum.partition_point(|&c| c <= u).min(self.seen - 1);
            self.seen - 1 - rank
        };
        Some(if self.rng.gen_bool(0.5) {
            (Dialect::FRAMES, self.frames[idx].clone())
        } else {
            (Dialect::SQL, self.sql[idx].clone())
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.n - self.emitted;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ZipfTrace {}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;
    use std::collections::HashSet;

    #[test]
    fn traces_are_deterministic_and_sized() {
        let a: Vec<_> = zipf_trace(500, 40, 0.02, 9).collect();
        let b: Vec<_> = zipf_trace(500, 40, 0.02, 9).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert_eq!(zipf_trace(500, 40, 0.02, 9).len(), 500);
        let c: Vec<_> = zipf_trace(500, 40, 0.02, 10).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn non_garbage_lines_parse_in_their_dialect_and_mix_dialects() {
        let mut dialects = HashSet::new();
        let mut garbage = 0usize;
        for (dialect, line) in zipf_trace(400, 24, 0.05, 3) {
            if line.starts_with("%%") {
                garbage += 1;
                assert!(pi_sql::SqlFrontend.parse_one(&line).is_err());
                assert!(pi_frames::FramesFrontend.parse_one(&line).is_err());
                continue;
            }
            dialects.insert(dialect);
            match dialect {
                Dialect::SQL => assert!(pi_sql::SqlFrontend.parse_one(&line).is_ok(), "{line}"),
                Dialect::FRAMES => {
                    assert!(pi_frames::FramesFrontend.parse_one(&line).is_ok(), "{line}")
                }
                other => panic!("unexpected dialect {other}"),
            }
        }
        assert!(dialects.contains(&Dialect::SQL) && dialects.contains(&Dialect::FRAMES));
        // 5% of 400 → expect a handful; the exact count is pinned by determinism anyway.
        assert!(garbage > 0 && garbage < 80, "{garbage} garbage lines");
    }

    #[test]
    fn distinct_text_is_bounded_by_the_pool_and_zipf_skews_repeats() {
        let trace = zipf_trace(2000, 32, 0.0, 7);
        let pool = trace.pool_size();
        let mut counts: std::collections::HashMap<String, usize> = Default::default();
        for (_, line) in trace {
            *counts.entry(line).or_default() += 1;
        }
        // SQL and frames renderings double the distinct *text* bound.
        assert!(counts.len() <= 2 * pool, "{} distinct texts", counts.len());
        // Zipf-ish skew: the most-visited text dominates the least-visited one.  (The coin
        // flip splits each shape's visits across two renderings, flattening the histogram
        // relative to the underlying shape distribution — only the skew's presence is
        // asserted, not its exponent.)
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        assert!(freq[0] >= 3 * freq[freq.len() - 1], "{freq:?}");
    }

    #[test]
    fn garbage_rate_zero_and_one_are_honoured() {
        assert!(zipf_trace(200, 10, 0.0, 1).all(|(_, l)| !l.starts_with("%%")));
        let mut all_garbage = zipf_trace(200, 10, 1.0, 1);
        assert!(all_garbage.all(|(_, l)| l.starts_with("%%")));
        assert_eq!(all_garbage.garbage_emitted(), 200);
    }
}
