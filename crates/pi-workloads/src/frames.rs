//! Dataframe-dialect and mixed-dialect query logs.
//!
//! Real query logs are heterogeneous across query languages (the Archive Query Log study
//! counts hundreds), and the paper's tree model was designed so that front-ends beyond SQL
//! target it.  These generators exercise exactly that: they re-render the OLAP random walk
//! of [`crate::olap`] in the `pi-frames` method-chain dialect —
//!
//! ```text
//! ontime.filter(Month == 9 & Day == 3).groupby(DestState).agg(COUNT(Delay))
//! ```
//!
//! — and interleave the two spellings into one mixed log.  Because both front-ends
//! canonicalise to the same tree shapes, [`dataframe_walk`] is *structurally identical*
//! query-for-query to [`crate::olap::random_walk`] with the same seed, and a mixed log
//! mines into the same interaction graph as either pure log: the cross-dialect workload
//! class the multi-front-end refactor opens up.

use crate::olap::{repetitive_states, walk_states, OlapState};
use crate::QueryLog;
use pi_ast::{Dialect, Frontends};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The registry covering both dialects the generators emit.
fn both_frontends() -> Frontends {
    Frontends::new()
        .with(pi_sql::SqlFrontend)
        .with(pi_frames::FramesFrontend)
}

/// The OLAP random walk of [`crate::olap::random_walk`], rendered in the frames dialect:
/// same seed ⇒ the same walk ⇒ structurally identical queries, different surface language.
pub fn dataframe_walk(seed: u64, n: usize) -> QueryLog {
    QueryLog::from_text(
        &pi_frames::FramesFrontend,
        &format!("frames-walk-{seed}"),
        walk_states(seed, n).iter().map(OlapState::to_frames),
    )
}

/// The same walk with every query independently written in SQL or frames (a fair coin per
/// entry, deterministic in the seed): the analyst who mixes a SQL console with a notebook.
pub fn mixed_walk(seed: u64, n: usize) -> QueryLog {
    let mut rng = StdRng::seed_from_u64(0x31a9_0000 ^ seed);
    let entries: Vec<(Dialect, String)> = walk_states(seed, n)
        .iter()
        .map(|state| {
            if rng.gen_bool(0.5) {
                (Dialect::FRAMES, state.to_frames())
            } else {
                (Dialect::SQL, state.to_sql())
            }
        })
        .collect();
    QueryLog::from_tagged(&both_frontends(), &format!("mixed-walk-{seed}"), entries)
}

/// The duplicate-heavy walk of [`crate::olap::repetitive_walk`], rendered in the frames
/// dialect: same seed ⇒ the same Zipf-revisited state sequence ⇒ structurally identical
/// queries, different surface language.
pub fn repetitive_dataframe_walk(seed: u64, n: usize, distinct: usize) -> QueryLog {
    QueryLog::from_text(
        &pi_frames::FramesFrontend,
        &format!("frames-repetitive-{seed}"),
        repetitive_states(seed, n, distinct)
            .iter()
            .map(OlapState::to_frames),
    )
}

/// The duplicate-heavy walk with every query independently written in SQL or frames (a fair
/// coin per entry, deterministic in the seed): a repetitive analyst who mixes a SQL console
/// with a notebook — the workload the duplicate-collapsing property tests replay.
pub fn repetitive_mixed_walk(seed: u64, n: usize, distinct: usize) -> QueryLog {
    let mut rng = StdRng::seed_from_u64(0x3e9e_0000 ^ seed);
    let entries: Vec<(Dialect, String)> = repetitive_states(seed, n, distinct)
        .iter()
        .map(|state| {
            if rng.gen_bool(0.5) {
                (Dialect::FRAMES, state.to_frames())
            } else {
                (Dialect::SQL, state.to_sql())
            }
        })
        .collect();
    QueryLog::from_tagged(
        &both_frontends(),
        &format!("mixed-repetitive-{seed}"),
        entries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::olap;

    #[test]
    fn frames_walk_is_structurally_identical_to_the_sql_walk() {
        let sql = olap::random_walk(3, 60);
        let frames = dataframe_walk(3, 60);
        assert_eq!(sql.len(), frames.len());
        assert_eq!(sql.queries, frames.queries);
        // Same trees, different surface text and tags.
        assert_ne!(sql.text, frames.text);
        assert!(frames.dialects.iter().all(|&d| d == Dialect::FRAMES));
        assert!(sql.dialects.iter().all(|&d| d == Dialect::SQL));
    }

    #[test]
    fn mixed_walk_interleaves_both_dialects_over_the_same_analysis() {
        let mixed = mixed_walk(7, 80);
        assert_eq!(mixed.len(), 80);
        let frames_count = mixed
            .dialects
            .iter()
            .filter(|&&d| d == Dialect::FRAMES)
            .count();
        assert!(frames_count > 10 && frames_count < 70, "{frames_count}");
        // Whichever dialect each entry drew, the tree is the walk's tree.
        assert_eq!(mixed.queries, olap::random_walk(7, 80).queries);
        // Text matches the dialect tag.
        for (text, dialect) in mixed.text.iter().zip(&mixed.dialects) {
            match *dialect {
                Dialect::SQL => assert!(text.starts_with("SELECT"), "{text}"),
                d if d == Dialect::FRAMES => assert!(text.starts_with("ontime"), "{text}"),
                other => panic!("unexpected dialect {other}"),
            }
        }
    }

    #[test]
    fn generators_are_deterministic_and_seed_sensitive() {
        assert_eq!(dataframe_walk(1, 30).text, dataframe_walk(1, 30).text);
        assert_eq!(mixed_walk(1, 30).text, mixed_walk(1, 30).text);
        assert_ne!(mixed_walk(1, 30).text, mixed_walk(2, 30).text);
        assert_eq!(
            repetitive_dataframe_walk(1, 30, 8).text,
            repetitive_dataframe_walk(1, 30, 8).text
        );
        assert_eq!(
            repetitive_mixed_walk(1, 30, 8).text,
            repetitive_mixed_walk(1, 30, 8).text
        );
    }

    #[test]
    fn repetitive_variants_render_the_same_duplicate_heavy_sequence() {
        let sql = olap::repetitive_walk(5, 96, 16);
        let frames = repetitive_dataframe_walk(5, 96, 16);
        let mixed = repetitive_mixed_walk(5, 96, 16);
        // All three spell the same tree sequence, duplicate structure included.
        assert_eq!(sql.queries, frames.queries);
        assert_eq!(sql.queries, mixed.queries);
        assert!(frames.dialects.iter().all(|&d| d == Dialect::FRAMES));
        let frames_count = mixed
            .dialects
            .iter()
            .filter(|&&d| d == Dialect::FRAMES)
            .count();
        assert!(frames_count > 10 && frames_count < 86, "{frames_count}");
        // And the sequence really is duplicate-heavy.
        let distinct: std::collections::BTreeSet<u64> = sql
            .queries
            .iter()
            .map(pi_ast::Node::structural_hash)
            .collect();
        assert!(distinct.len() <= 16, "{}", distinct.len());
    }

    #[test]
    fn tagged_queries_pairs_dialects_with_trees() {
        let mixed = mixed_walk(2, 10);
        let pairs: Vec<_> = mixed.tagged_queries().collect();
        assert_eq!(pairs.len(), 10);
        for (i, (dialect, query)) in pairs.iter().enumerate() {
            assert_eq!(*dialect, mixed.dialects[i]);
            assert_eq!(query, &mixed.queries[i]);
        }
    }
}
