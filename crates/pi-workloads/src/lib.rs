//! # pi-workloads — synthetic query logs standing in for the paper's datasets
//!
//! The paper evaluates on three query logs we cannot redistribute: a sample of the Sloan
//! Digital Sky Survey (SDSS) SkyServer log, a synthetic OLAP random-walk log over the OnTime
//! flight-delay dataset, and ad-hoc logs exported from students' Tableau sessions.  This crate
//! generates statistically similar stand-ins:
//!
//! * [`sdss`] — per-client logs built from client *archetypes* distilled from the paper's own
//!   SDSS examples (Listing 1, Listing 6): object lookups that change only the table / id
//!   attribute / literal, TOP-clause toggles over UDF joins, spectro range scans.  Within a
//!   client the transformations are highly structured and recurring; across clients they are
//!   heterogeneous — exactly the properties the recall/precision/runtime experiments rely on.
//! * [`olap`] — the random walk of §7 (Listing 2): each step adds, removes, or modifies a
//!   random dimension, aggregate, or filter of an OnTime OLAP query.
//! * [`adhoc`] — open-ended exploration with little recurring structure (Listing 3), used to
//!   show when Precision Interfaces does *not* generalise.
//! * [`traces`] — simulated widget interaction timing traces used to fit the widget cost
//!   functions (§4.3, Example 4.4).
//! * [`mix`] — multi-client interleaving and train/hold-out splitting utilities used by the
//!   multi-client and cross-client experiments (§7.2.3, §7.2.4).
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adhoc;
pub mod mix;
pub mod olap;
pub mod sdss;
pub mod traces;

use pi_ast::Node;

/// A generated query log: parsed queries in log order, plus the SQL text they came from.
#[derive(Debug, Clone, Default)]
pub struct QueryLog {
    /// Parsed queries in log order.
    pub queries: Vec<Node>,
    /// The SQL text of each query (same order).
    pub sql: Vec<String>,
    /// A label describing the log (client id, generator name…).
    pub label: String,
}

impl QueryLog {
    /// Creates a log from SQL strings, parsing each one (panics on generator bugs — the
    /// generators only emit SQL the `pi-sql` dialect supports).
    pub fn from_sql<I: IntoIterator<Item = String>>(label: &str, sql: I) -> Self {
        let sql: Vec<String> = sql.into_iter().collect();
        let queries = sql
            .iter()
            .map(|q| {
                pi_sql::parse(q).unwrap_or_else(|e| panic!("generator produced bad SQL `{q}`: {e}"))
            })
            .collect();
        QueryLog {
            queries,
            sql,
            label: label.to_string(),
        }
    }

    /// Number of queries in the log.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The log truncated to its first `n` queries.
    pub fn truncated(&self, n: usize) -> QueryLog {
        QueryLog {
            queries: self.queries.iter().take(n).cloned().collect(),
            sql: self.sql.iter().take(n).cloned().collect(),
            label: self.label.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sql_parses_and_preserves_order() {
        let log = QueryLog::from_sql(
            "demo",
            ["SELECT a FROM t".to_string(), "SELECT b FROM t".to_string()],
        );
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        assert_eq!(log.sql[0], "SELECT a FROM t");
        assert_eq!(log.truncated(1).len(), 1);
        assert_eq!(log.truncated(10).len(), 2);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = sdss::client_log(sdss::ClientArchetype::ObjectLookup, 7, 40);
        let b = sdss::client_log(sdss::ClientArchetype::ObjectLookup, 7, 40);
        assert_eq!(a.sql, b.sql);
        let a = olap::random_walk(3, 30);
        let b = olap::random_walk(3, 30);
        assert_eq!(a.sql, b.sql);
        let a = adhoc::exploration_log(11, 25);
        let b = adhoc::exploration_log(11, 25);
        assert_eq!(a.sql, b.sql);
    }
}
