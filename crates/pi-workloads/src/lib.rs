//! # pi-workloads — synthetic query logs standing in for the paper's datasets
//!
//! The paper evaluates on three query logs we cannot redistribute: a sample of the Sloan
//! Digital Sky Survey (SDSS) SkyServer log, a synthetic OLAP random-walk log over the OnTime
//! flight-delay dataset, and ad-hoc logs exported from students' Tableau sessions.  This crate
//! generates statistically similar stand-ins:
//!
//! * [`sdss`] — per-client logs built from client *archetypes* distilled from the paper's own
//!   SDSS examples (Listing 1, Listing 6): object lookups that change only the table / id
//!   attribute / literal, TOP-clause toggles over UDF joins, spectro range scans.  Within a
//!   client the transformations are highly structured and recurring; across clients they are
//!   heterogeneous — exactly the properties the recall/precision/runtime experiments rely on.
//! * [`olap`] — the random walk of §7 (Listing 2): each step adds, removes, or modifies a
//!   random dimension, aggregate, or filter of an OnTime OLAP query; plus
//!   [`olap::repetitive_walk`], which revisits a small pool of walk states Zipf-style — the
//!   duplicate-heavy log shape real query logs overwhelmingly have, and the workload the
//!   mining dedup memo is benchmarked on.
//! * [`adhoc`] — open-ended exploration with little recurring structure (Listing 3), used to
//!   show when Precision Interfaces does *not* generalise.
//! * [`frames`] — the OLAP walk re-rendered in the `pi-frames` dataframe dialect, plus a
//!   mixed SQL + frames interleaving of the same walk: the cross-dialect workload class the
//!   multi-front-end refactor opens up (real logs span many query languages).
//! * [`trace`] — *lazy* trace-scale ingest streams (10⁵–10⁶ lines): Zipf-revisited shape
//!   pools, mixed SQL + frames, configurable garbage — the streaming-ingest benchmark's
//!   workload, generated in `O(shapes)` memory.
//! * [`traces`] — simulated widget interaction timing traces used to fit the widget cost
//!   functions (§4.3, Example 4.4).
//! * [`mix`] — multi-client interleaving and train/hold-out splitting utilities used by the
//!   multi-client and cross-client experiments (§7.2.3, §7.2.4).
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adhoc;
pub mod frames;
pub mod mix;
pub mod olap;
pub mod sdss;
pub mod trace;
pub mod traces;

use pi_ast::{Dialect, Frontend, Node};

/// A generated query log: parsed queries in log order, plus the text they came from and
/// the dialect each entry was written in.
///
/// A log can be single-dialect (the SQL generators, [`frames::dataframe_walk`]) or mixed
/// ([`frames::mixed_walk`]) — the per-entry `dialects` vector is what a
/// [`Session`](https://docs.rs/pi-core) push needs to tag queries with their originating
/// front-end.
#[derive(Debug, Clone, Default)]
pub struct QueryLog {
    /// Parsed queries in log order.
    pub queries: Vec<Node>,
    /// The source text of each query (same order).
    pub text: Vec<String>,
    /// The dialect each query was written in (same order).
    pub dialects: Vec<Dialect>,
    /// A label describing the log (client id, generator name…).
    pub label: String,
}

impl QueryLog {
    /// Creates a log from SQL strings; see [`QueryLog::from_text`].
    pub fn from_sql<I: IntoIterator<Item = String>>(label: &str, sql: I) -> Self {
        Self::from_text(&pi_sql::SqlFrontend, label, sql)
    }

    /// Creates a log by parsing each string with the given front-end (panics on generator
    /// bugs — the generators only emit text their front-end's dialect supports).
    ///
    /// Parses are **interned by text**: a repeated statement (query logs are overwhelmingly
    /// repetitive) is parsed once, and its later occurrences share the same `Node`
    /// allocation — a refcount bump instead of a re-parse, exactly what a production
    /// ingest's parse cache would do.  Sharing is unobservable downstream (property-tested
    /// by the shared-vs-fresh mining tests) but lets structural dedup confirm duplicates by
    /// pointer identity.
    pub fn from_text<F, I>(frontend: &F, label: &str, texts: I) -> Self
    where
        F: Frontend,
        I: IntoIterator<Item = String>,
    {
        let text: Vec<String> = texts.into_iter().collect();
        let dialect = frontend.dialect();
        let queries = {
            let mut interned: std::collections::HashMap<&str, Node> =
                std::collections::HashMap::new();
            text.iter()
                .map(|q| {
                    interned
                        .entry(q)
                        .or_insert_with(|| {
                            frontend.parse_one(q).unwrap_or_else(|e| {
                                panic!("generator produced bad {dialect} `{q}`: {e}")
                            })
                        })
                        .clone()
                })
                .collect()
        };
        QueryLog {
            dialects: vec![dialect; text.len()],
            queries,
            text,
            label: label.to_string(),
        }
    }

    /// Creates a mixed-dialect log: each entry is parsed by the front-end its dialect
    /// names in `frontends` (panics on generator bugs or unregistered dialects).
    ///
    /// Parses are interned by `(dialect, text)`, like [`QueryLog::from_text`] — but the
    /// intern map stores *row indices* into the log under a 64-bit key (verified by exact
    /// text + dialect comparison), so a duplicate-heavy trace never clones statement text
    /// just to use it as a map key.
    pub fn from_tagged<I>(frontends: &pi_ast::Frontends, label: &str, entries: I) -> Self
    where
        I: IntoIterator<Item = (Dialect, String)>,
    {
        use std::hash::{Hash, Hasher};
        let mut log = QueryLog {
            label: label.to_string(),
            ..QueryLog::default()
        };
        // hash(dialect, text) → first log rows with that hash; text lives in the log only.
        let mut interned: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (dialect, text) in entries {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            dialect.name().hash(&mut h);
            text.hash(&mut h);
            let bucket = interned.entry(h.finish()).or_default();
            let hit = bucket
                .iter()
                .copied()
                .find(|&i| log.dialects[i] == dialect && log.text[i] == text);
            let query = match hit {
                Some(i) => log.queries[i].clone(),
                None => {
                    bucket.push(log.queries.len());
                    let frontend = frontends
                        .get(dialect)
                        .unwrap_or_else(|| panic!("no front-end registered for dialect {dialect}"));
                    frontend.parse_one(&text).unwrap_or_else(|e| {
                        panic!("generator produced bad {dialect} `{text}`: {e}")
                    })
                }
            };
            log.queries.push(query);
            log.text.push(text);
            log.dialects.push(dialect);
        }
        log
    }

    /// Number of queries in the log.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The queries paired with their dialect tags, in log order — the shape a
    /// mixed-front-end session ingests (`push_all_tagged`).
    pub fn tagged_queries(&self) -> impl Iterator<Item = (Dialect, Node)> + '_ {
        self.dialects
            .iter()
            .copied()
            .zip(self.queries.iter().cloned())
    }

    /// The log truncated to its first `n` queries.
    pub fn truncated(&self, n: usize) -> QueryLog {
        QueryLog {
            queries: self.queries.iter().take(n).cloned().collect(),
            text: self.text.iter().take(n).cloned().collect(),
            dialects: self.dialects.iter().take(n).copied().collect(),
            label: self.label.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sql_parses_and_preserves_order() {
        let log = QueryLog::from_sql(
            "demo",
            ["SELECT a FROM t".to_string(), "SELECT b FROM t".to_string()],
        );
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        assert_eq!(log.text[0], "SELECT a FROM t");
        assert_eq!(log.truncated(1).len(), 1);
        assert_eq!(log.truncated(10).len(), 2);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = sdss::client_log(sdss::ClientArchetype::ObjectLookup, 7, 40);
        let b = sdss::client_log(sdss::ClientArchetype::ObjectLookup, 7, 40);
        assert_eq!(a.text, b.text);
        let a = olap::random_walk(3, 30);
        let b = olap::random_walk(3, 30);
        assert_eq!(a.text, b.text);
        let a = adhoc::exploration_log(11, 25);
        let b = adhoc::exploration_log(11, 25);
        assert_eq!(a.text, b.text);
    }
}
