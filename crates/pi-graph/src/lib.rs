//! # pi-graph — the interaction graph
//!
//! The interaction graph `G = (V, E)` (paper §4.2) has one vertex per query in the log and a
//! directed labelled edge `(q_i, q_j, t_k)` for every pair of compared queries, where the label
//! `t_k` is an *interaction*: the set of diff records sufficient to transform `q_i` into `q_j`.
//!
//! Building the graph is the most expensive step of the pipeline, so the builder implements
//! the paper's two optimisations:
//!
//! * **sliding-window pair enumeration** (§6.1) — only queries within a window of size
//!   `n_win` are compared, reducing the number of tree alignments from `O(|Q|²)` to
//!   `O(|Q|·n_win)`;
//! * **LCA pruning** (§6.2) — forwarded to `pi-diff`, it keeps the number of materialised
//!   ancestor records (and therefore the mapper's input size) small.
//!
//! Beyond the paper, the builder exploits how *repetitive* real logs are (a handful of
//! distinct query shapes dominates most logs): at ingest every query is collapsed to a
//! distinct-tree id ([`DedupTable`]), and the expensive alignment runs once per distinct
//! ordered pair of shapes ([`DiffMemo`]) — `O(d²)` alignments for `d` distinct shapes
//! instead of `O(n²)` under `AllPairs` — while a cheap per-pair step re-wraps the memoized
//! change lists into records carrying the original log indices.  Memoization is on by
//! default and *invisible*: graphs are byte-identical with it on or off
//! ([`GraphBuilder::memoize`] exists for A/B measurement).
//!
//! Pairwise diffing is embarrassingly parallel; the builder fans it out over a deque-based
//! **work-stealing scheduler**: a batch's pairs are packed into blocks of comparable
//! *estimated alignment cost* (cached node counts through `pi_diff::align_cost_model`, so
//! the triangular `AllPairs` load balances by work, not row count), each worker owns a
//! local deque of blocks and steals from a victim's when dry, and every block writes its
//! result into a slot indexed by the deterministic global block order.  **Block order, not
//! steal order, defines the output** — the merged graph is byte-identical to the serial
//! fold for every worker count and every steal interleaving (property-tested under seeded
//! schedule perturbation).  The fan-out engages only when the estimated work would
//! amortise the thread overhead, so small batches and single-query extends stay serial;
//! worker counts resolve from [`GraphBuilder::threads`], the `PI_THREADS` environment
//! variable, or the available cores, in that order.
//!
//! Construction is *incremental at heart*: [`GraphBuilder::extend`] appends one query to a
//! [`GraphAccumulator`], diffing it only against the predecessors the window strategy admits,
//! and [`GraphBuilder::build`] is defined as the fold of that step over the whole log.  A
//! streaming session therefore produces graphs byte-identical to batch builds of the same
//! prefix — the invariant `pi-core::Session` relies on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
pub mod codec;
mod dedup;
mod graph;
mod steal;

pub use builder::{GraphAccumulator, GraphBuilder, WindowStrategy};
pub use dedup::{DedupTable, DiffMemo};
pub use graph::{Edge, GraphStats, InteractionGraph, IntoQueryLog, QueryLog};

#[cfg(test)]
mod tests {
    use super::*;
    use pi_ast::Frontend as _;
    use pi_diff::AncestorPolicy;

    fn parse(sql: &str) -> Result<pi_ast::Node, pi_ast::FrontendError> {
        pi_sql::SqlFrontend.parse_one(sql)
    }

    fn olap_log() -> Vec<pi_ast::Node> {
        // Listing 2 with one extra step.
        [
            "SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 AND Day = 3 GROUP BY DestState",
            "SELECT DestState FROM ontime WHERE Month = 9 AND Day = 3 GROUP BY DestState",
            "SELECT DestState FROM ontime WHERE Month = 8 AND Day = 3 GROUP BY DestState",
            "SELECT DestState FROM ontime WHERE Month = 8 AND Day = 5 GROUP BY DestState",
        ]
        .iter()
        .map(|q| parse(q).unwrap())
        .collect()
    }

    #[test]
    fn all_pairs_graph_has_quadratic_edges() {
        let log = olap_log();
        let g = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .build(&log);
        assert_eq!(g.queries().len(), 4);
        // 4 choose 2 pairs, all of which differ
        assert_eq!(g.edges().len(), 6);
        assert!(g.stats().diff_records > 0);
    }

    #[test]
    fn sliding_window_reduces_comparisons_but_keeps_connectivity() {
        let log = olap_log();
        let all = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .build(&log);
        let windowed = GraphBuilder::new()
            .window(WindowStrategy::Sliding(2))
            .build(&log);
        assert!(windowed.edges().len() < all.edges().len());
        assert_eq!(windowed.edges().len(), 3); // consecutive pairs only
        assert!(windowed.is_connected());
    }

    #[test]
    fn parallel_and_serial_builds_agree() {
        let log = olap_log();
        let serial = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .parallel(false)
            .build(&log);
        let parallel = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .parallel(true)
            .build(&log);
        assert_eq!(serial.edges().len(), parallel.edges().len());
        assert_eq!(serial.store().len(), parallel.store().len());
        for (a, b) in serial.edges().iter().zip(parallel.edges().iter()) {
            assert_eq!((a.from, a.to), (b.from, b.to));
            assert_eq!(a.diffs.len(), b.diffs.len());
        }
    }

    #[test]
    fn lca_pruning_shrinks_the_store_without_losing_edges() {
        let log = olap_log();
        let full = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .policy(AncestorPolicy::Full)
            .build(&log);
        let pruned = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .policy(AncestorPolicy::LcaPruned)
            .build(&log);
        assert_eq!(full.edges().len(), pruned.edges().len());
        assert!(pruned.store().len() < full.store().len());
    }

    #[test]
    fn duplicate_queries_produce_no_edge() {
        let q = parse("SELECT a FROM t").unwrap();
        let g = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .build(&[q.clone(), q]);
        assert_eq!(g.edges().len(), 0);
        // Identical queries need no edge to be mutually expressible.
        assert!(g.is_connected());
    }
}
