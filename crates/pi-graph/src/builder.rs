//! Graph construction: pair enumeration strategies and (optionally parallel) pairwise diffing.

use crate::graph::{Edge, InteractionGraph};
use parking_lot::Mutex;
use pi_ast::Node;
use pi_diff::{extract_diffs, AncestorPolicy, DiffRecord, DiffStore};

/// Which query pairs are compared when building the interaction graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowStrategy {
    /// Compare every pair of queries (`O(|Q|²)` alignments) — the unoptimised baseline.
    AllPairs,
    /// Compare only queries within a sliding window of the given size over the log order
    /// (§6.1).  A window of 2 compares consecutive queries only.
    Sliding(usize),
}

impl WindowStrategy {
    /// Enumerates the `(i, j)` pairs (with `i < j`) this strategy compares for a log of
    /// `n` queries.
    pub fn pairs(&self, n: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        match *self {
            WindowStrategy::AllPairs => {
                for i in 0..n {
                    for j in (i + 1)..n {
                        out.push((i, j));
                    }
                }
            }
            WindowStrategy::Sliding(w) => {
                let w = w.max(2);
                for i in 0..n {
                    for j in (i + 1)..n.min(i + w) {
                        out.push((i, j));
                    }
                }
            }
        }
        out
    }
}

/// Builds [`InteractionGraph`]s from parsed query logs.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    window: WindowStrategy,
    policy: AncestorPolicy,
    parallel: bool,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder {
            window: WindowStrategy::Sliding(2),
            policy: AncestorPolicy::LcaPruned,
            parallel: false,
        }
    }
}

impl GraphBuilder {
    /// A builder with the paper's recommended defaults (window = 2, LCA pruning on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pair enumeration strategy.
    pub fn window(mut self, window: WindowStrategy) -> Self {
        self.window = window;
        self
    }

    /// Sets the ancestor materialisation policy.
    pub fn policy(mut self, policy: AncestorPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables multi-threaded pairwise diffing.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Builds the interaction graph for a log of parsed queries.
    pub fn build(&self, queries: &[Node]) -> InteractionGraph {
        let pairs = self.window.pairs(queries.len());
        let per_pair = if self.parallel && pairs.len() > 32 {
            self.diff_pairs_parallel(queries, &pairs)
        } else {
            pairs
                .iter()
                .map(|&(i, j)| (i, j, extract_diffs(&queries[i], &queries[j], i, j, self.policy)))
                .collect()
        };

        let mut store = DiffStore::new();
        let mut edges = Vec::new();
        for (i, j, records) in per_pair {
            if records.is_empty() {
                continue;
            }
            let (leaves, ancestors): (Vec<DiffRecord>, Vec<DiffRecord>) =
                records.into_iter().partition(|r| r.is_leaf);
            let leaf_ids = store.extend(leaves);
            store.extend(ancestors);
            edges.push(Edge {
                from: i,
                to: j,
                diffs: leaf_ids,
            });
        }

        InteractionGraph {
            queries: queries.to_vec(),
            store,
            edges,
        }
    }

    /// Fans pairwise diffing out over the available cores.  Results are re-ordered by pair
    /// index so the resulting graph is identical to a serial build.
    fn diff_pairs_parallel(
        &self,
        queries: &[Node],
        pairs: &[(usize, usize)],
    ) -> Vec<(usize, usize, Vec<DiffRecord>)> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(pairs.len().max(1));
        let results: Mutex<Vec<(usize, usize, usize, Vec<DiffRecord>)>> =
            Mutex::new(Vec::with_capacity(pairs.len()));
        let policy = self.policy;

        crossbeam::scope(|scope| {
            let chunk = pairs.len().div_ceil(threads);
            for (t, slice) in pairs.chunks(chunk).enumerate() {
                let results = &results;
                scope.spawn(move |_| {
                    let base = t * chunk;
                    let mut local = Vec::with_capacity(slice.len());
                    for (k, &(i, j)) in slice.iter().enumerate() {
                        let records = extract_diffs(&queries[i], &queries[j], i, j, policy);
                        local.push((base + k, i, j, records));
                    }
                    results.lock().extend(local);
                });
            }
        })
        .expect("diff worker panicked");

        let mut collected = results.into_inner();
        collected.sort_by_key(|(order, _, _, _)| *order);
        collected
            .into_iter()
            .map(|(_, i, j, records)| (i, j, records))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_sql::parse;

    #[test]
    fn pair_enumeration_counts() {
        assert_eq!(WindowStrategy::AllPairs.pairs(4).len(), 6);
        assert_eq!(WindowStrategy::Sliding(2).pairs(4).len(), 3);
        assert_eq!(WindowStrategy::Sliding(3).pairs(4).len(), 5);
        // degenerate windows are clamped to 2
        assert_eq!(WindowStrategy::Sliding(0).pairs(4).len(), 3);
        assert_eq!(WindowStrategy::AllPairs.pairs(0).len(), 0);
        assert_eq!(WindowStrategy::AllPairs.pairs(1).len(), 0);
    }

    #[test]
    fn sliding_window_pairs_stay_within_window() {
        for (i, j) in WindowStrategy::Sliding(3).pairs(10) {
            assert!(j > i && j - i < 3);
        }
    }

    #[test]
    fn builder_skips_identical_pairs() {
        let q = parse("SELECT a FROM t").unwrap();
        let r = parse("SELECT b FROM t").unwrap();
        let g = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .build(&[q.clone(), q, r]);
        // (0,1) identical -> skipped; (0,2) and (1,2) differ.
        assert_eq!(g.edges.len(), 2);
    }

    #[test]
    fn parallel_threshold_does_not_change_small_builds() {
        let log: Vec<Node> = (0..5)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {i}")).unwrap())
            .collect();
        let a = GraphBuilder::new().parallel(true).build(&log);
        let b = GraphBuilder::new().parallel(false).build(&log);
        assert_eq!(a.edges.len(), b.edges.len());
    }

    #[test]
    fn parallel_large_build_matches_serial() {
        let log: Vec<Node> = (0..40)
            .map(|i| parse(&format!("SELECT a FROM t WHERE x = {}", i % 7)).unwrap())
            .collect();
        let a = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .parallel(true)
            .build(&log);
        let b = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .parallel(false)
            .build(&log);
        assert_eq!(a.edges.len(), b.edges.len());
        assert_eq!(a.store.len(), b.store.len());
        for (ea, eb) in a.edges.iter().zip(b.edges.iter()) {
            assert_eq!((ea.from, ea.to), (eb.from, eb.to));
        }
    }

    #[test]
    fn edge_diffs_reference_leaf_records_only() {
        let log: Vec<Node> = vec![
            parse("SELECT sales FROM t WHERE cty = 'USA'").unwrap(),
            parse("SELECT costs FROM t WHERE cty = 'EUR'").unwrap(),
        ];
        let g = GraphBuilder::new()
            .window(WindowStrategy::AllPairs)
            .policy(AncestorPolicy::Full)
            .build(&log);
        assert_eq!(g.edges.len(), 1);
        for id in &g.edges[0].diffs {
            assert!(g.store.get(*id).is_leaf);
        }
        // Ancestor records are still in the store for the mapper to consider.
        assert!(g.store.iter().any(|(_, r)| !r.is_leaf));
    }
}
